//! End-to-end pipeline latency: what a deployed system pays per frame.
//!
//! * steering CNN forward pass (the base workload),
//! * full novelty score (VBP → autoencoder → SSIM) for the paper's
//!   pipeline and the raw+MSE baseline,
//! * autoencoder training step cost under MSE vs SSIM objectives.
//!
//! The detector is trained very briefly — latency does not depend on
//! weight quality.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ndtensor::{set_thread_config, ThreadConfig};
use novelty::{ClassifierConfig, NoveltyDetectorBuilder, ReconstructionObjective};
use simdrive::DatasetConfig;
use std::hint::black_box;

fn pipeline_throughput(c: &mut Criterion) {
    let data = DatasetConfig::outdoor().with_len(40).generate(1);
    let quick_ae = |objective| ClassifierConfig {
        epochs: 1,
        warmup_epochs: 0,
        objective,
        ..ClassifierConfig::paper()
    };
    let paper = NoveltyDetectorBuilder::paper()
        .cnn_epochs(1)
        .classifier_config(quick_ae(ReconstructionObjective::paper_ssim()))
        .seed(1)
        .train(&data)
        .expect("training succeeds");
    let baseline = NoveltyDetectorBuilder::richter_roy()
        .classifier_config(quick_ae(ReconstructionObjective::Mse))
        .seed(1)
        .train(&data)
        .expect("training succeeds");
    let frame = data.frames()[0].image.clone();

    let mut group = c.benchmark_group("pipeline_per_frame_60x160");
    group.bench_function("steering_cnn_forward", |b| {
        b.iter(|| paper.predict_steering(black_box(&frame)).unwrap())
    });
    group.bench_function("score_vbp_ssim", |b| {
        b.iter(|| paper.score(black_box(&frame)).unwrap())
    });
    group.bench_function("score_raw_mse", |b| {
        b.iter(|| baseline.score(black_box(&frame)).unwrap())
    });
    group.bench_function("classify_vbp_ssim", |b| {
        b.iter(|| paper.classify(black_box(&frame)).unwrap())
    });
    group.finish();
}

/// Batch scoring under pinned thread counts: the headline number for the
/// parallel execution layer. `score_batch` fans 64 frames out over the
/// pool; outputs are bit-identical across thread counts, so the only
/// difference is wall time.
fn batch_scoring_thread_scaling(c: &mut Criterion) {
    let data = DatasetConfig::outdoor().with_len(64).generate(2);
    let paper = NoveltyDetectorBuilder::paper()
        .cnn_epochs(1)
        .classifier_config(ClassifierConfig {
            epochs: 1,
            warmup_epochs: 0,
            objective: ReconstructionObjective::paper_ssim(),
            ..ClassifierConfig::paper()
        })
        .seed(2)
        .train(&data)
        .expect("training succeeds");
    let batch: Vec<_> = data.frames().iter().map(|f| f.image.clone()).collect();

    let mut group = c.benchmark_group("score_batch_64x60x160");
    group.sample_size(5).throughput(Throughput::Elements(64));
    for threads in [1usize, 2, 4] {
        set_thread_config(ThreadConfig::new(threads));
        group.bench_function(&format!("score_vbp_ssim_t{threads}"), |b| {
            b.iter(|| paper.score_batch(black_box(&batch)).unwrap())
        });
    }
    group.finish();

    // Direct speedup read-out (mean of 3 runs each), for the acceptance
    // criterion "≥2× at 4 threads vs 1 on a 64-image batch".
    let time_with = |threads: usize| {
        set_thread_config(ThreadConfig::new(threads));
        let start = std::time::Instant::now();
        for _ in 0..3 {
            black_box(paper.score_batch(black_box(&batch)).unwrap());
        }
        start.elapsed() / 3
    };
    let t1 = time_with(1);
    let t4 = time_with(4);
    println!(
        "score_batch 64 frames: threads=1 {t1:?}  threads=4 {t4:?}  speedup {:.2}x",
        t1.as_secs_f64() / t4.as_secs_f64()
    );
    set_thread_config(ThreadConfig::from_env());
}

criterion_group!(benches, pipeline_throughput, batch_scoring_thread_scaling);
criterion_main!(benches);
