//! End-to-end pipeline latency: what a deployed system pays per frame.
//!
//! * steering CNN forward pass (the base workload),
//! * full novelty score (VBP → autoencoder → SSIM) for the paper's
//!   pipeline and the raw+MSE baseline,
//! * autoencoder training step cost under MSE vs SSIM objectives.
//!
//! The detector is trained very briefly — latency does not depend on
//! weight quality.

use criterion::{criterion_group, criterion_main, Criterion};
use novelty::{ClassifierConfig, NoveltyDetectorBuilder, ReconstructionObjective};
use simdrive::DatasetConfig;
use std::hint::black_box;

fn pipeline_throughput(c: &mut Criterion) {
    let data = DatasetConfig::outdoor().with_len(40).generate(1);
    let quick_ae = |objective| ClassifierConfig {
        epochs: 1,
        warmup_epochs: 0,
        objective,
        ..ClassifierConfig::paper()
    };
    let paper = NoveltyDetectorBuilder::paper()
        .cnn_epochs(1)
        .classifier_config(quick_ae(ReconstructionObjective::paper_ssim()))
        .seed(1)
        .train(&data)
        .expect("training succeeds");
    let baseline = NoveltyDetectorBuilder::richter_roy()
        .classifier_config(quick_ae(ReconstructionObjective::Mse))
        .seed(1)
        .train(&data)
        .expect("training succeeds");
    let frame = data.frames()[0].image.clone();

    let mut group = c.benchmark_group("pipeline_per_frame_60x160");
    group.bench_function("steering_cnn_forward", |b| {
        b.iter(|| paper.predict_steering(black_box(&frame)).unwrap())
    });
    group.bench_function("score_vbp_ssim", |b| {
        b.iter(|| paper.score(black_box(&frame)).unwrap())
    });
    group.bench_function("score_raw_mse", |b| {
        b.iter(|| baseline.score(black_box(&frame)).unwrap())
    });
    group.bench_function("classify_vbp_ssim", |b| {
        b.iter(|| paper.classify(black_box(&frame)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, pipeline_throughput);
criterion_main!(benches);
