//! Experiment E7 — the paper's §III.B claim: VisualBackProp is an order
//! of magnitude faster than LRP while producing comparable masks.
//!
//! Measures per-image mask latency of VBP, ε-LRP, vanilla gradient
//! saliency and (coarse) occlusion probing on the compact PilotNet at the
//! paper's 60×160 input. Weights are random — saliency latency does not
//! depend on training.

use criterion::{criterion_group, criterion_main, Criterion};
use neural::models::{pilotnet, PilotNetConfig};
use saliency::{
    gradient_saliency, lrp, occlusion_saliency, visual_backprop, LrpConfig, OcclusionConfig,
};
use std::hint::black_box;
use vision::Image;

fn bench_image() -> Image {
    Image::from_fn(60, 160, |y, x| ((y * 7 + x * 3) % 23) as f32 / 22.0)
        .expect("non-zero dimensions")
}

fn saliency_speed(c: &mut Criterion) {
    let net = pilotnet(&PilotNetConfig::compact(), 1).expect("valid config");
    let mut net_mut = pilotnet(&PilotNetConfig::compact(), 1).expect("valid config");
    let img = bench_image();

    let mut group = c.benchmark_group("saliency_per_image_60x160");
    group.bench_function("vbp", |b| {
        b.iter(|| visual_backprop(black_box(&net), black_box(&img)).unwrap())
    });
    group.bench_function("lrp_eps", |b| {
        b.iter(|| lrp(black_box(&net), black_box(&img), &LrpConfig::default()).unwrap())
    });
    group.bench_function("gradient", |b| {
        b.iter(|| gradient_saliency(black_box(&mut net_mut), black_box(&img)).unwrap())
    });
    group.sample_size(10);
    group.bench_function("occlusion_w16_s16", |b| {
        b.iter(|| {
            occlusion_saliency(
                black_box(&net),
                black_box(&img),
                &OcclusionConfig {
                    window: 16,
                    stride: 16,
                    fill: 0.5,
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, saliency_speed);
criterion_main!(benches);
