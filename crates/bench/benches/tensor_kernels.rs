//! Throughput of the numeric substrate: GEMM and im2col convolution at
//! the sizes the pipeline actually runs (autoencoder dense layers,
//! PilotNet conv layers).

use criterion::{criterion_group, criterion_main, Criterion};
use ndtensor::{conv2d, matmul, set_thread_config, Conv2dSpec, Tensor, ThreadConfig};
use std::hint::black_box;

fn pseudo(shape: impl Into<ndtensor::Shape>, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(shape.into(), |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

fn tensor_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_kernels");

    // Autoencoder encoder layer: batch 32 × (9600 → 64).
    let x = pseudo([32, 9600], 1);
    let w = pseudo([9600, 64], 2);
    group.bench_function("gemm_32x9600x64", |b| {
        b.iter(|| matmul(black_box(&x), black_box(&w)).unwrap())
    });

    // Square GEMM reference point.
    let a = pseudo([256, 256], 3);
    let bm = pseudo([256, 256], 4);
    group.bench_function("gemm_256^3", |b| {
        b.iter(|| matmul(black_box(&a), black_box(&bm)).unwrap())
    });

    // First PilotNet conv on one frame: 1×60×160, 8 filters 5×5 stride 2.
    let frame = pseudo([1, 1, 60, 160], 5);
    let kernel = pseudo([8, 1, 5, 5], 6);
    let spec = Conv2dSpec::new((2, 2), (0, 0));
    group.bench_function("conv5x5s2_60x160_8f", |b| {
        b.iter(|| conv2d(black_box(&frame), black_box(&kernel), None, spec).unwrap())
    });

    // Mid-stack conv: 12×28×78 → 16 filters 5×5 stride 2.
    let mid = pseudo([1, 8, 28, 78], 7);
    let kernel2 = pseudo([12, 8, 5, 5], 8);
    group.bench_function("conv5x5s2_28x78_8to12f", |b| {
        b.iter(|| conv2d(black_box(&mid), black_box(&kernel2), None, spec).unwrap())
    });

    group.finish();
}

/// The same kernels under pinned thread counts, to expose the scaling of
/// the parallel execution layer (results are bit-identical by design; only
/// the timing differs).
fn tensor_kernels_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_kernels_threads");

    let a = pseudo([256, 256], 3);
    let bm = pseudo([256, 256], 4);
    // Batched first-layer conv: 64 frames of 60×160.
    let batch = pseudo([64, 1, 60, 160], 9);
    let kernel = pseudo([8, 1, 5, 5], 6);
    let spec = Conv2dSpec::new((2, 2), (0, 0));

    for threads in [1usize, 2, 4] {
        set_thread_config(ThreadConfig::new(threads));
        group.bench_function(&format!("gemm_256^3_t{threads}"), |b| {
            b.iter(|| matmul(black_box(&a), black_box(&bm)).unwrap())
        });
        group.bench_function(&format!("conv5x5s2_60x160_batch64_t{threads}"), |b| {
            b.iter(|| conv2d(black_box(&batch), black_box(&kernel), None, spec).unwrap())
        });
    }
    set_thread_config(ThreadConfig::from_env());

    group.finish();
}

criterion_group!(benches, tensor_kernels, tensor_kernels_thread_scaling);
criterion_main!(benches);
