//! Rasterisation primitives used by the synthetic scene renderer.
//!
//! These are deliberately simple software-rendering routines: filled convex
//! polygons (scanline), thick anti-alias-free line segments, axis-aligned
//! rectangles and disks. They operate on [`RgbImage`] because the renderer
//! paints in colour before the pipeline grayscales.

use crate::RgbImage;

/// A 2-D point in pixel coordinates (`x` right, `y` down). Fractional
/// positions are supported; rasterisation rounds per primitive.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in pixels.
    pub x: f32,
    /// Vertical coordinate in pixels.
    pub y: f32,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f32, y: f32) -> Self {
        Point { x, y }
    }
}

impl From<(f32, f32)> for Point {
    fn from((x, y): (f32, f32)) -> Self {
        Point { x, y }
    }
}

/// Fills the axis-aligned rectangle `[x0, x1) × [y0, y1)` (clipped to the
/// image) with a constant colour.
pub fn fill_rect(img: &mut RgbImage, x0: i64, y0: i64, x1: i64, y1: i64, rgb: [f32; 3]) {
    let (h, w) = (img.height() as i64, img.width() as i64);
    let xa = x0.clamp(0, w);
    let xb = x1.clamp(0, w);
    let ya = y0.clamp(0, h);
    let yb = y1.clamp(0, h);
    for y in ya..yb {
        for x in xa..xb {
            img.put(y as usize, x as usize, rgb);
        }
    }
}

/// Fills a polygon given by its vertices (in order, convex or mildly
/// concave) using even-odd scanline filling. Degenerate polygons (< 3
/// vertices) are ignored.
pub fn fill_polygon(img: &mut RgbImage, vertices: &[Point], rgb: [f32; 3]) {
    if vertices.len() < 3 {
        return;
    }
    let h = img.height();
    let w = img.width();
    let min_y = vertices.iter().map(|p| p.y).fold(f32::INFINITY, f32::min);
    let max_y = vertices
        .iter()
        .map(|p| p.y)
        .fold(f32::NEG_INFINITY, f32::max);
    let y_start = min_y.floor().max(0.0) as usize;
    let y_end = (max_y.ceil() as i64).clamp(0, h as i64) as usize;
    let mut crossings: Vec<f32> = Vec::with_capacity(8);
    for y in y_start..y_end {
        let scan = y as f32 + 0.5;
        crossings.clear();
        for i in 0..vertices.len() {
            let a = vertices[i];
            let b = vertices[(i + 1) % vertices.len()];
            if (a.y <= scan && b.y > scan) || (b.y <= scan && a.y > scan) {
                let t = (scan - a.y) / (b.y - a.y);
                crossings.push(a.x + t * (b.x - a.x));
            }
        }
        crossings.sort_by(|p, q| p.partial_cmp(q).expect("crossings are finite"));
        for pair in crossings.chunks(2) {
            if pair.len() < 2 {
                continue;
            }
            let xa = pair[0].round().max(0.0) as i64;
            let xb = (pair[1].round() as i64).min(w as i64);
            for x in xa..xb {
                img.put(y, x as usize, rgb);
            }
        }
    }
}

/// Draws a line segment of the given thickness (in pixels) by stamping
/// disks along the segment.
pub fn draw_line(img: &mut RgbImage, a: Point, b: Point, thickness: f32, rgb: [f32; 3]) {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len = (dx * dx + dy * dy).sqrt();
    let steps = (len.ceil() as usize).max(1) * 2;
    for s in 0..=steps {
        let t = s as f32 / steps as f32;
        fill_disk(
            img,
            Point::new(a.x + t * dx, a.y + t * dy),
            thickness / 2.0,
            rgb,
        );
    }
}

/// Fills a disk of the given radius centred at `c` (clipped to the image).
/// Radii below 0.5 paint the single nearest pixel.
pub fn fill_disk(img: &mut RgbImage, c: Point, radius: f32, rgb: [f32; 3]) {
    let (h, w) = (img.height() as i64, img.width() as i64);
    if radius < 0.5 {
        let x = c.x.round() as i64;
        let y = c.y.round() as i64;
        if x >= 0 && x < w && y >= 0 && y < h {
            img.put(y as usize, x as usize, rgb);
        }
        return;
    }
    let r2 = radius * radius;
    let y0 = ((c.y - radius).floor() as i64).clamp(0, h);
    let y1 = ((c.y + radius).ceil() as i64).clamp(0, h);
    let x0 = ((c.x - radius).floor() as i64).clamp(0, w);
    let x1 = ((c.x + radius).ceil() as i64).clamp(0, w);
    for y in y0..y1 {
        for x in x0..x1 {
            let ddx = x as f32 - c.x;
            let ddy = y as f32 - c.y;
            if ddx * ddx + ddy * ddy <= r2 {
                img.put(y as usize, x as usize, rgb);
            }
        }
    }
}

/// Fills the whole image with a vertical linear gradient from `top` (row 0)
/// to `bottom` (last row).
pub fn vertical_gradient(img: &mut RgbImage, top: [f32; 3], bottom: [f32; 3]) {
    let h = img.height();
    let w = img.width();
    for y in 0..h {
        let t = if h > 1 {
            y as f32 / (h - 1) as f32
        } else {
            0.0
        };
        let rgb = [
            top[0] + t * (bottom[0] - top[0]),
            top[1] + t * (bottom[1] - top[1]),
            top[2] + t * (bottom[2] - top[2]),
        ];
        for x in 0..w {
            img.put(y, x, rgb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RED: [f32; 3] = [1.0, 0.0, 0.0];

    fn count_red(img: &RgbImage) -> usize {
        let mut n = 0;
        for y in 0..img.height() {
            for x in 0..img.width() {
                if img.get(y, x) == RED {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn rect_fills_expected_area() {
        let mut img = RgbImage::new(10, 10).unwrap();
        fill_rect(&mut img, 2, 3, 5, 7, RED);
        assert_eq!(count_red(&img), 3 * 4);
        assert_eq!(img.get(3, 2), RED);
        assert_eq!(img.get(2, 2), [0.0; 3]); // y<y0 untouched? (y0=3) — yes
    }

    #[test]
    fn rect_clips_to_image() {
        let mut img = RgbImage::new(4, 4).unwrap();
        fill_rect(&mut img, -10, -10, 100, 100, RED);
        assert_eq!(count_red(&img), 16);
        // Fully outside: no panic, no paint.
        let mut img2 = RgbImage::new(4, 4).unwrap();
        fill_rect(&mut img2, 10, 10, 20, 20, RED);
        assert_eq!(count_red(&img2), 0);
    }

    #[test]
    fn polygon_fills_square() {
        let mut img = RgbImage::new(10, 10).unwrap();
        let square = [
            Point::new(2.0, 2.0),
            Point::new(8.0, 2.0),
            Point::new(8.0, 8.0),
            Point::new(2.0, 8.0),
        ];
        fill_polygon(&mut img, &square, RED);
        let n = count_red(&img);
        assert!((30..=42).contains(&n), "filled {n} pixels");
        assert_eq!(img.get(5, 5), RED);
        assert_eq!(img.get(0, 0), [0.0; 3]);
    }

    #[test]
    fn polygon_triangle_covers_interior_only() {
        let mut img = RgbImage::new(12, 12).unwrap();
        let tri = [
            Point::new(6.0, 1.0),
            Point::new(11.0, 11.0),
            Point::new(1.0, 11.0),
        ];
        fill_polygon(&mut img, &tri, RED);
        assert_eq!(img.get(8, 6), RED); // deep inside
        assert_eq!(img.get(2, 1), [0.0; 3]); // outside top-left
    }

    #[test]
    fn degenerate_polygon_is_noop() {
        let mut img = RgbImage::new(4, 4).unwrap();
        fill_polygon(&mut img, &[Point::new(1.0, 1.0), Point::new(2.0, 2.0)], RED);
        assert_eq!(count_red(&img), 0);
    }

    #[test]
    fn line_connects_endpoints() {
        let mut img = RgbImage::new(10, 10).unwrap();
        draw_line(
            &mut img,
            Point::new(1.0, 1.0),
            Point::new(8.0, 8.0),
            1.0,
            RED,
        );
        assert_eq!(img.get(1, 1), RED);
        assert_eq!(img.get(8, 8), RED);
        assert_eq!(img.get(4, 4), RED); // diagonal midpoint painted
        assert_eq!(img.get(1, 8), [0.0; 3]);
    }

    #[test]
    fn thick_line_is_wider() {
        let mut thin = RgbImage::new(20, 20).unwrap();
        let mut thick = RgbImage::new(20, 20).unwrap();
        let (a, b) = (Point::new(2.0, 10.0), Point::new(18.0, 10.0));
        draw_line(&mut thin, a, b, 1.0, RED);
        draw_line(&mut thick, a, b, 5.0, RED);
        assert!(count_red(&thick) > 2 * count_red(&thin));
    }

    #[test]
    fn disk_paints_center_and_respects_radius() {
        let mut img = RgbImage::new(20, 20).unwrap();
        fill_disk(&mut img, Point::new(10.0, 10.0), 4.0, RED);
        assert_eq!(img.get(10, 10), RED);
        assert_eq!(img.get(10, 17), [0.0; 3]);
        let n = count_red(&img) as f32;
        let area = std::f32::consts::PI * 16.0;
        assert!((n - area).abs() / area < 0.35, "disk area {n} vs {area}");
    }

    #[test]
    fn tiny_disk_paints_one_pixel() {
        let mut img = RgbImage::new(5, 5).unwrap();
        fill_disk(&mut img, Point::new(2.2, 2.7), 0.3, RED);
        assert_eq!(count_red(&img), 1);
        assert_eq!(img.get(3, 2), RED);
    }

    #[test]
    fn disk_outside_image_is_noop() {
        let mut img = RgbImage::new(5, 5).unwrap();
        fill_disk(&mut img, Point::new(-10.0, -10.0), 2.0, RED);
        assert_eq!(count_red(&img), 0);
    }

    #[test]
    fn gradient_interpolates_vertically() {
        let mut img = RgbImage::new(3, 2).unwrap();
        vertical_gradient(&mut img, [0.0; 3], [1.0, 0.0, 0.0]);
        assert_eq!(img.get(0, 0), [0.0; 3]);
        assert_eq!(img.get(2, 1), [1.0, 0.0, 0.0]);
        assert!((img.get(1, 0)[0] - 0.5).abs() < 1e-6);
    }
}
