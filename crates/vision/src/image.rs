use ndtensor::{resize_bilinear, Tensor};

use crate::{Result, VisionError};

/// A single-channel (grayscale) image with `f32` pixels, nominally in
/// `[0, 1]`, stored row-major as a rank-2 tensor `[height, width]`.
///
/// This is the unit of data flowing through the paper's pipeline: camera
/// frames are grayscaled into `Image`s, VisualBackProp masks are `Image`s,
/// and the autoencoder consumes flattened `Image`s.
///
/// # Example
///
/// ```
/// use vision::Image;
///
/// # fn main() -> Result<(), vision::VisionError> {
/// let mut img = Image::new(60, 160)?;
/// img.put(10, 20, 0.5);
/// assert_eq!(img.get(10, 20), 0.5);
/// assert_eq!(img.len(), 9600);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    data: Tensor,
}

impl Image {
    /// Creates a black image of the given size.
    ///
    /// # Errors
    ///
    /// Fails when either dimension is zero.
    pub fn new(height: usize, width: usize) -> Result<Self> {
        if height == 0 || width == 0 {
            return Err(VisionError::invalid(
                "Image::new",
                "dimensions must be non-zero",
            ));
        }
        Ok(Image {
            data: Tensor::zeros([height, width]),
        })
    }

    /// Creates an image filled with a constant intensity.
    ///
    /// # Errors
    ///
    /// Fails when either dimension is zero.
    pub fn filled(height: usize, width: usize, value: f32) -> Result<Self> {
        let mut img = Self::new(height, width)?;
        img.data.map_inplace(|_| value);
        Ok(img)
    }

    /// Wraps a rank-2 tensor as an image.
    ///
    /// # Errors
    ///
    /// Fails when the tensor is not rank 2 or has a zero dimension.
    pub fn from_tensor(data: Tensor) -> Result<Self> {
        if data.rank() != 2 {
            return Err(VisionError::invalid(
                "Image::from_tensor",
                format!("expected rank-2 tensor, got shape {}", data.shape()),
            ));
        }
        if data.is_empty() {
            return Err(VisionError::invalid(
                "Image::from_tensor",
                "dimensions must be non-zero",
            ));
        }
        Ok(Image { data })
    }

    /// Creates an image by evaluating `f(y, x)` at every pixel.
    ///
    /// # Errors
    ///
    /// Fails when either dimension is zero.
    pub fn from_fn(height: usize, width: usize, f: impl Fn(usize, usize) -> f32) -> Result<Self> {
        if height == 0 || width == 0 {
            return Err(VisionError::invalid(
                "Image::from_fn",
                "dimensions must be non-zero",
            ));
        }
        Ok(Image {
            data: Tensor::from_fn([height, width], |idx| f(idx[0], idx[1])),
        })
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.data.shape().dims()[0]
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.data.shape().dims()[1]
    }

    /// Total number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: images are validated non-empty at construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reads the pixel at `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (images are dense and bounds are the
    /// caller's responsibility in inner loops; use [`Image::get_checked`]
    /// at trust boundaries).
    pub fn get(&self, y: usize, x: usize) -> f32 {
        self.data.as_slice()[y * self.width() + x]
    }

    /// Reads the pixel at `(y, x)`, or `None` when out of bounds.
    pub fn get_checked(&self, y: usize, x: usize) -> Option<f32> {
        if y < self.height() && x < self.width() {
            Some(self.get(y, x))
        } else {
            None
        }
    }

    /// Writes the pixel at `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn put(&mut self, y: usize, x: usize, value: f32) {
        let w = self.width();
        self.data.as_mut_slice()[y * w + x] = value;
    }

    /// Immutable view of the underlying tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.data
    }

    /// Consumes the image and returns the underlying tensor.
    pub fn into_tensor(self) -> Tensor {
        self.data
    }

    /// Immutable view of the row-major pixel buffer.
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable view of the row-major pixel buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }

    /// Applies `f` to every pixel, producing a new image.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Image {
        Image {
            data: self.data.map(f),
        }
    }

    /// Clamps all pixels into `[0, 1]`.
    pub fn clamp_unit(&self) -> Image {
        self.map(|v| v.clamp(0.0, 1.0))
    }

    /// Linearly rescales pixels so min → 0 and max → 1 (constant images
    /// map to black).
    pub fn normalize_minmax(&self) -> Image {
        Image {
            data: self.data.normalize_minmax(),
        }
    }

    /// Mean intensity.
    pub fn mean(&self) -> f32 {
        self.data.mean()
    }

    /// Bilinearly resizes to `out_h × out_w`.
    ///
    /// # Errors
    ///
    /// Fails when either target dimension is zero.
    pub fn resize_bilinear(&self, out_h: usize, out_w: usize) -> Result<Image> {
        Ok(Image {
            data: resize_bilinear(&self.data, out_h, out_w)?,
        })
    }
}

/// A three-channel colour image stored planar as `[3, height, width]`
/// (channel order R, G, B), pixels nominally in `[0, 1]`.
///
/// The synthetic driving-scene renderer paints `RgbImage`s; the pipeline
/// converts them to grayscale with [`RgbImage::to_grayscale`] as the paper
/// does before feeding its autoencoder.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbImage {
    data: Tensor,
}

/// Index of the red channel plane.
pub const CH_R: usize = 0;
/// Index of the green channel plane.
pub const CH_G: usize = 1;
/// Index of the blue channel plane.
pub const CH_B: usize = 2;

impl RgbImage {
    /// Creates a black colour image.
    ///
    /// # Errors
    ///
    /// Fails when either dimension is zero.
    pub fn new(height: usize, width: usize) -> Result<Self> {
        if height == 0 || width == 0 {
            return Err(VisionError::invalid(
                "RgbImage::new",
                "dimensions must be non-zero",
            ));
        }
        Ok(RgbImage {
            data: Tensor::zeros([3, height, width]),
        })
    }

    /// Creates a colour image filled with a constant colour.
    ///
    /// # Errors
    ///
    /// Fails when either dimension is zero.
    pub fn filled(height: usize, width: usize, rgb: [f32; 3]) -> Result<Self> {
        let mut img = Self::new(height, width)?;
        for (c, &v) in rgb.iter().enumerate() {
            let plane = img.plane_mut(c);
            for p in plane {
                *p = v;
            }
        }
        Ok(img)
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.data.shape().dims()[1]
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.data.shape().dims()[2]
    }

    /// Reads the `(r, g, b)` pixel at `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, y: usize, x: usize) -> [f32; 3] {
        let (h, w) = (self.height(), self.width());
        let d = self.data.as_slice();
        [d[y * w + x], d[h * w + y * w + x], d[2 * h * w + y * w + x]]
    }

    /// Writes the `(r, g, b)` pixel at `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn put(&mut self, y: usize, x: usize, rgb: [f32; 3]) {
        let (h, w) = (self.height(), self.width());
        let d = self.data.as_mut_slice();
        d[y * w + x] = rgb[0];
        d[h * w + y * w + x] = rgb[1];
        d[2 * h * w + y * w + x] = rgb[2];
    }

    /// Immutable view of channel plane `c` (use [`CH_R`]/[`CH_G`]/[`CH_B`]).
    ///
    /// # Panics
    ///
    /// Panics when `c >= 3`.
    pub fn plane(&self, c: usize) -> &[f32] {
        assert!(c < 3, "channel index {c} out of range");
        let hw = self.height() * self.width();
        &self.data.as_slice()[c * hw..(c + 1) * hw]
    }

    /// Mutable view of channel plane `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= 3`.
    pub fn plane_mut(&mut self, c: usize) -> &mut [f32] {
        assert!(c < 3, "channel index {c} out of range");
        let hw = self.height() * self.width();
        &mut self.data.as_mut_slice()[c * hw..(c + 1) * hw]
    }

    /// Immutable view of the underlying `[3, H, W]` tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.data
    }

    /// Converts to grayscale with the ITU-R BT.601 luma weights
    /// (0.299 R + 0.587 G + 0.114 B), as conventional for driving-camera
    /// preprocessing.
    pub fn to_grayscale(&self) -> Image {
        let (h, w) = (self.height(), self.width());
        let hw = h * w;
        let d = self.data.as_slice();
        let mut out = Vec::with_capacity(hw);
        for i in 0..hw {
            out.push(0.299 * d[i] + 0.587 * d[hw + i] + 0.114 * d[2 * hw + i]);
        }
        Image {
            data: Tensor::from_vec([h, w], out).expect("length matches by construction"),
        }
    }

    /// Clamps all channels into `[0, 1]`.
    pub fn clamp_unit(&self) -> RgbImage {
        RgbImage {
            data: self.data.clamp_values(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions() {
        assert!(Image::new(0, 5).is_err());
        assert!(Image::new(5, 0).is_err());
        assert!(RgbImage::new(0, 1).is_err());
        assert!(Image::from_tensor(Tensor::zeros([3])).is_err());
        assert!(Image::from_tensor(Tensor::zeros([0, 4])).is_err());
        assert!(Image::from_fn(0, 1, |_, _| 0.0).is_err());
    }

    #[test]
    fn pixel_roundtrip() {
        let mut img = Image::new(4, 6).unwrap();
        img.put(3, 5, 0.25);
        assert_eq!(img.get(3, 5), 0.25);
        assert_eq!(img.get_checked(3, 5), Some(0.25));
        assert_eq!(img.get_checked(4, 0), None);
        assert_eq!(img.get_checked(0, 6), None);
    }

    #[test]
    fn filled_and_mean() {
        let img = Image::filled(2, 3, 0.5).unwrap();
        assert_eq!(img.mean(), 0.5);
        assert_eq!(img.len(), 6);
    }

    #[test]
    fn from_fn_addresses_y_then_x() {
        let img = Image::from_fn(2, 3, |y, x| (y * 10 + x) as f32).unwrap();
        assert_eq!(img.get(1, 2), 12.0);
        assert_eq!(img.as_slice(), &[0., 1., 2., 10., 11., 12.]);
    }

    #[test]
    fn clamp_and_normalize() {
        let img = Image::from_fn(1, 3, |_, x| x as f32 - 1.0).unwrap(); // [-1, 0, 1]
        assert_eq!(img.clamp_unit().as_slice(), &[0., 0., 1.]);
        assert_eq!(img.normalize_minmax().as_slice(), &[0., 0.5, 1.]);
    }

    #[test]
    fn resize_changes_dimensions() {
        let img = Image::from_fn(4, 8, |y, x| (y + x) as f32 / 12.0).unwrap();
        let small = img.resize_bilinear(2, 4).unwrap();
        assert_eq!((small.height(), small.width()), (2, 4));
        assert!(small.resize_bilinear(0, 4).is_err());
    }

    #[test]
    fn rgb_pixel_roundtrip_and_planes() {
        let mut img = RgbImage::new(2, 2).unwrap();
        img.put(1, 0, [0.1, 0.2, 0.3]);
        assert_eq!(img.get(1, 0), [0.1, 0.2, 0.3]);
        assert_eq!(img.plane(CH_R)[2], 0.1);
        assert_eq!(img.plane(CH_G)[2], 0.2);
        assert_eq!(img.plane(CH_B)[2], 0.3);
    }

    #[test]
    fn grayscale_uses_luma_weights() {
        let mut img = RgbImage::new(1, 3).unwrap();
        img.put(0, 0, [1.0, 0.0, 0.0]);
        img.put(0, 1, [0.0, 1.0, 0.0]);
        img.put(0, 2, [0.0, 0.0, 1.0]);
        let g = img.to_grayscale();
        assert!((g.get(0, 0) - 0.299).abs() < 1e-6);
        assert!((g.get(0, 1) - 0.587).abs() < 1e-6);
        assert!((g.get(0, 2) - 0.114).abs() < 1e-6);
    }

    #[test]
    fn grayscale_of_gray_pixel_is_identity() {
        let img = RgbImage::filled(3, 3, [0.4, 0.4, 0.4]).unwrap();
        let g = img.to_grayscale();
        for &v in g.as_slice() {
            assert!((v - 0.4).abs() < 1e-6);
        }
    }

    #[test]
    fn rgb_clamp() {
        let mut img = RgbImage::new(1, 1).unwrap();
        img.put(0, 0, [-0.5, 0.5, 1.5]);
        assert_eq!(img.clamp_unit().get(0, 0), [0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "channel index")]
    fn plane_bounds_checked() {
        let img = RgbImage::new(1, 1).unwrap();
        let _ = img.plane(3);
    }
}
