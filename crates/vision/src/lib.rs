#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! Image representation and processing for the `saliency-novelty` workspace.
//!
//! Provides the grayscale [`Image`] and colour [`RgbImage`] containers used
//! by the synthetic driving-scene renderer (`simdrive`), the saliency
//! methods (`saliency`), and the novelty pipeline (`novelty`), together
//! with:
//!
//! * resizing ([`Image::resize_bilinear`]) and filtering
//!   ([`filter::gaussian_blur`]),
//! * the photometric and geometric perturbations of the paper's
//!   experiments ([`perturb`]: Gaussian noise for Fig. 3/7, brightness for
//!   Fig. 3, plus the rotation/translation attacks of reference 6),
//! * rasterisation primitives used by the renderer ([`draw`]),
//! * portable any-map I/O for inspecting results ([`io`]: PGM/PPM).
//!
//! Pixels are `f32` in `[0, 1]`; the crate never silently clamps except in
//! operations documented to do so.

mod error;
mod image;

pub mod draw;
pub mod filter;
pub mod io;
pub mod perturb;

pub use error::VisionError;
pub use image::{Image, RgbImage, CH_B, CH_G, CH_R};

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, VisionError>;
