//! Binary PGM (P5) and PPM (P6) image I/O.
//!
//! Every figure-regeneration binary dumps its qualitative outputs (VBP
//! masks, reconstructions, perturbed frames) in these formats so results
//! can be inspected with any image viewer without adding a heavyweight
//! image dependency.

use std::io::{BufRead, Write};
use std::path::Path;

use crate::{Image, Result, RgbImage, VisionError};

fn quantize(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Writes a grayscale image as binary PGM (P5), mapping `[0, 1]` to 0–255.
///
/// # Errors
///
/// Propagates any I/O failure.
pub fn write_pgm(img: &Image, writer: &mut impl Write) -> Result<()> {
    write!(writer, "P5\n{} {}\n255\n", img.width(), img.height())?;
    let bytes: Vec<u8> = img.as_slice().iter().map(|&v| quantize(v)).collect();
    writer.write_all(&bytes)?;
    Ok(())
}

/// Writes a grayscale image to a PGM file at `path`.
///
/// # Errors
///
/// Propagates any I/O failure.
pub fn save_pgm(img: &Image, path: impl AsRef<Path>) -> Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_pgm(img, &mut file)
}

/// Writes a colour image as binary PPM (P6), mapping `[0, 1]` to 0–255.
///
/// # Errors
///
/// Propagates any I/O failure.
pub fn write_ppm(img: &RgbImage, writer: &mut impl Write) -> Result<()> {
    write!(writer, "P6\n{} {}\n255\n", img.width(), img.height())?;
    let mut bytes = Vec::with_capacity(img.width() * img.height() * 3);
    for y in 0..img.height() {
        for x in 0..img.width() {
            let [r, g, b] = img.get(y, x);
            bytes.push(quantize(r));
            bytes.push(quantize(g));
            bytes.push(quantize(b));
        }
    }
    writer.write_all(&bytes)?;
    Ok(())
}

/// Writes a colour image to a PPM file at `path`.
///
/// # Errors
///
/// Propagates any I/O failure.
pub fn save_ppm(img: &RgbImage, path: impl AsRef<Path>) -> Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_ppm(img, &mut file)
}

fn read_token(reader: &mut impl BufRead) -> Result<String> {
    let mut token = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof && !token.is_empty() => {
                return Ok(token)
            }
            Err(e) => return Err(e.into()),
        }
        let c = byte[0] as char;
        if in_comment {
            if c == '\n' {
                in_comment = false;
            }
            continue;
        }
        if c == '#' {
            in_comment = true;
            continue;
        }
        if c.is_whitespace() {
            if token.is_empty() {
                continue;
            }
            return Ok(token);
        }
        token.push(c);
    }
}

fn parse_dim(token: &str, what: &str) -> Result<usize> {
    token
        .parse::<usize>()
        .map_err(|_| VisionError::Format(format!("invalid {what}: {token:?}")))
}

/// Reads a binary PGM (P5) image, mapping 0–255 back to `[0, 1]`.
///
/// # Errors
///
/// Fails on I/O errors or malformed headers (wrong magic, zero dimensions,
/// non-255 maxval, truncated pixel data).
pub fn read_pgm(reader: &mut impl BufRead) -> Result<Image> {
    let magic = read_token(reader)?;
    if magic != "P5" {
        return Err(VisionError::Format(format!(
            "expected magic P5, got {magic:?}"
        )));
    }
    let width = parse_dim(&read_token(reader)?, "width")?;
    let height = parse_dim(&read_token(reader)?, "height")?;
    let maxval = parse_dim(&read_token(reader)?, "maxval")?;
    if width == 0 || height == 0 {
        return Err(VisionError::Format("zero image dimension".into()));
    }
    if maxval != 255 {
        return Err(VisionError::Format(format!(
            "only maxval 255 is supported, got {maxval}"
        )));
    }
    let mut bytes = vec![0u8; width * height];
    reader
        .read_exact(&mut bytes)
        .map_err(|_| VisionError::Format("truncated pixel data".into()))?;
    let mut img = Image::new(height, width)?;
    for (dst, &src) in img.as_mut_slice().iter_mut().zip(&bytes) {
        *dst = src as f32 / 255.0;
    }
    Ok(img)
}

/// Reads a PGM file from `path`.
///
/// # Errors
///
/// See [`read_pgm`].
pub fn load_pgm(path: impl AsRef<Path>) -> Result<Image> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    read_pgm(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn pgm_roundtrip_preserves_quantized_pixels() {
        let img = Image::from_fn(5, 7, |y, x| (y * 7 + x) as f32 / 34.0).unwrap();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back.height(), 5);
        assert_eq!(back.width(), 7);
        for (a, b) in back.as_slice().iter().zip(img.as_slice()) {
            assert!((a - b).abs() <= 0.5 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn pgm_clamps_out_of_range_values() {
        let img = Image::from_fn(1, 2, |_, x| if x == 0 { -1.0 } else { 2.0 }).unwrap();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back.get(0, 0), 0.0);
        assert_eq!(back.get(0, 1), 1.0);
    }

    #[test]
    fn pgm_header_is_canonical() {
        let img = Image::new(2, 3).unwrap();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(buf.len(), "P5\n3 2\n255\n".len() + 6);
    }

    #[test]
    fn read_pgm_accepts_comments() {
        let data = b"P5 # a comment\n# another\n2 1\n255\n\x00\xff";
        let img = read_pgm(&mut Cursor::new(&data[..])).unwrap();
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(0, 1), 1.0);
    }

    #[test]
    fn read_pgm_rejects_malformed_streams() {
        for bad in [
            &b"P6\n1 1\n255\n\x00"[..],
            &b"P5\n0 1\n255\n"[..],
            &b"P5\n1 1\n65535\n\x00\x00"[..],
            &b"P5\n2 2\n255\n\x00"[..],
            &b"P5\nx 1\n255\n\x00"[..],
        ] {
            assert!(read_pgm(&mut Cursor::new(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn ppm_has_canonical_header_and_size() {
        let mut img = RgbImage::new(2, 2).unwrap();
        img.put(0, 0, [1.0, 0.5, 0.0]);
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(buf.len(), "P6\n2 2\n255\n".len() + 12);
        // First pixel bytes: 255, 128, 0.
        let off = "P6\n2 2\n255\n".len();
        assert_eq!(buf[off], 255);
        assert_eq!(buf[off + 1], 128);
        assert_eq!(buf[off + 2], 0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("saliency_novelty_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let img = Image::from_fn(3, 3, |y, x| (y * 3 + x) as f32 / 8.0).unwrap();
        save_pgm(&img, &path).unwrap();
        let back = load_pgm(&path).unwrap();
        assert_eq!(back.height(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}
