//! Separable smoothing filters.
//!
//! Gaussian blur is used by the scene renderer (soft shadows, depth haze)
//! and by tests that need band-limited images. Borders are handled by
//! clamping (edge replication), which keeps constant images exactly
//! constant.

use crate::{Image, Result, VisionError};

/// Builds a normalised 1-D Gaussian kernel with standard deviation `sigma`,
/// truncated at `±3σ` (minimum radius 1).
///
/// # Errors
///
/// Fails when `sigma` is not finite or not positive.
pub fn gaussian_kernel_1d(sigma: f32) -> Result<Vec<f32>> {
    if !sigma.is_finite() || sigma <= 0.0 {
        return Err(VisionError::invalid(
            "gaussian_kernel_1d",
            format!("sigma must be positive and finite, got {sigma}"),
        ));
    }
    let radius = (3.0 * sigma).ceil().max(1.0) as usize;
    let mut kernel = Vec::with_capacity(2 * radius + 1);
    let inv2s2 = 1.0 / (2.0 * sigma * sigma);
    for i in 0..=(2 * radius) {
        let d = i as f32 - radius as f32;
        kernel.push((-d * d * inv2s2).exp());
    }
    let sum: f32 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    Ok(kernel)
}

fn convolve_rows(img: &Image, kernel: &[f32]) -> Image {
    let (h, w) = (img.height(), img.width());
    let radius = kernel.len() / 2;
    let mut out = Image::new(h, w).expect("dimensions already validated");
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, &k) in kernel.iter().enumerate() {
                let sx = (x as i64 + i as i64 - radius as i64).clamp(0, w as i64 - 1) as usize;
                acc += k * img.get(y, sx);
            }
            out.put(y, x, acc);
        }
    }
    out
}

fn convolve_cols(img: &Image, kernel: &[f32]) -> Image {
    let (h, w) = (img.height(), img.width());
    let radius = kernel.len() / 2;
    let mut out = Image::new(h, w).expect("dimensions already validated");
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, &k) in kernel.iter().enumerate() {
                let sy = (y as i64 + i as i64 - radius as i64).clamp(0, h as i64 - 1) as usize;
                acc += k * img.get(sy, x);
            }
            out.put(y, x, acc);
        }
    }
    out
}

/// Applies a separable Gaussian blur with standard deviation `sigma`.
///
/// # Errors
///
/// Fails when `sigma` is not finite or not positive.
pub fn gaussian_blur(img: &Image, sigma: f32) -> Result<Image> {
    let kernel = gaussian_kernel_1d(sigma)?;
    Ok(convolve_cols(&convolve_rows(img, &kernel), &kernel))
}

/// Applies a `(2r+1) × (2r+1)` box blur.
///
/// # Errors
///
/// Fails when `radius` is zero.
pub fn box_blur(img: &Image, radius: usize) -> Result<Image> {
    if radius == 0 {
        return Err(VisionError::invalid("box_blur", "radius must be non-zero"));
    }
    let n = 2 * radius + 1;
    let kernel = vec![1.0 / n as f32; n];
    Ok(convolve_cols(&convolve_rows(img, &kernel), &kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kernel_is_normalised_and_symmetric() {
        let k = gaussian_kernel_1d(1.5).unwrap();
        assert!(((k.iter().sum::<f32>()) - 1.0).abs() < 1e-5);
        assert_eq!(k.len() % 2, 1);
        let mid = k.len() / 2;
        for i in 0..mid {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
        }
        // Peak at center.
        assert!(k[mid] >= *k.first().unwrap());
    }

    #[test]
    fn kernel_rejects_bad_sigma() {
        assert!(gaussian_kernel_1d(0.0).is_err());
        assert!(gaussian_kernel_1d(-1.0).is_err());
        assert!(gaussian_kernel_1d(f32::NAN).is_err());
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = Image::filled(8, 8, 0.6).unwrap();
        let b = gaussian_blur(&img, 2.0).unwrap();
        for &v in b.as_slice() {
            assert!((v - 0.6).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_spreads_an_impulse() {
        let mut img = Image::new(9, 9).unwrap();
        img.put(4, 4, 1.0);
        let b = gaussian_blur(&img, 1.0).unwrap();
        assert!(b.get(4, 4) < 1.0);
        assert!(b.get(4, 5) > 0.0);
        assert!(b.get(3, 4) > 0.0);
        // Total mass approximately preserved away from borders.
        let total: f32 = b.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-3);
    }

    #[test]
    fn blur_reduces_variance_of_noiselike_image() {
        let img = Image::from_fn(16, 16, |y, x| ((y * 31 + x * 17) % 7) as f32 / 6.0).unwrap();
        let b = gaussian_blur(&img, 2.0).unwrap();
        assert!(b.tensor().variance() < img.tensor().variance());
    }

    #[test]
    fn box_blur_averages_neighbourhood() {
        let mut img = Image::new(3, 3).unwrap();
        img.put(1, 1, 9.0);
        let b = box_blur(&img, 1).unwrap();
        assert!((b.get(1, 1) - 1.0).abs() < 1e-5); // 9/9
        assert!(box_blur(&img, 0).is_err());
    }

    proptest! {
        #[test]
        fn blur_output_within_input_range(sigma in 0.3f32..3.0, seed in 0u64..100) {
            let img = Image::from_fn(10, 10, |y, x| {
                (((y * 37 + x * 11) as u64 + seed) % 13) as f32 / 12.0
            }).unwrap();
            let b = gaussian_blur(&img, sigma).unwrap();
            let (lo, hi) = (img.tensor().min_value(), img.tensor().max_value());
            for &v in b.as_slice() {
                prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
            }
        }
    }
}
