//! Image perturbations used by the paper's experiments.
//!
//! * [`add_gaussian_noise`] — the noise attack of Figs. 3 and 7,
//! * [`adjust_brightness`] / [`adjust_contrast`] / [`adjust_gamma`] — the
//!   photometric changes of Fig. 3 (CNNs are robust to these, so a good
//!   similarity metric should barely move),
//! * [`rotate`] / [`translate`] — the simple spatial attacks of
//!   Engstrom et al. (paper reference 6),
//! * [`occlude_rect`] — a patch occlusion for failure-injection tests.
//!
//! All functions are pure (they return a new [`Image`]) and the noisy ones
//! take an explicit RNG for reproducibility. Photometric operations clamp
//! to `[0, 1]` as a camera would saturate.

use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::{Image, Result, VisionError};

/// Adds i.i.d. Gaussian noise `N(0, sigma²)` to every pixel, clamping the
/// result to `[0, 1]`.
///
/// # Errors
///
/// Fails when `sigma` is negative or not finite.
pub fn add_gaussian_noise(img: &Image, rng: &mut impl Rng, sigma: f32) -> Result<Image> {
    if !sigma.is_finite() || sigma < 0.0 {
        return Err(VisionError::invalid(
            "add_gaussian_noise",
            format!("sigma must be non-negative and finite, got {sigma}"),
        ));
    }
    // sncheck:allow(no-float-eq): exact-zero no-op fast path; also
    // catches -0.0, which passes the sign check above.
    if sigma == 0.0 {
        return Ok(img.clone());
    }
    let dist = Normal::new(0.0f32, sigma).expect("validated above"); // sncheck:allow(hot-path-transitive-panic): sigma is range-checked at function entry; negative and NaN already returned an error
    let mut out = img.clone();
    for v in out.as_mut_slice() {
        *v = (*v + dist.sample(rng)).clamp(0.0, 1.0);
    }
    Ok(out)
}

/// Shifts every pixel by `delta` (positive brightens), clamping to `[0, 1]`.
pub fn adjust_brightness(img: &Image, delta: f32) -> Image {
    img.map(|v| (v + delta).clamp(0.0, 1.0))
}

/// Scales contrast around mid-gray 0.5 by `factor` (1.0 = identity),
/// clamping to `[0, 1]`.
///
/// # Errors
///
/// Fails when `factor` is negative or not finite.
pub fn adjust_contrast(img: &Image, factor: f32) -> Result<Image> {
    if !factor.is_finite() || factor < 0.0 {
        return Err(VisionError::invalid(
            "adjust_contrast",
            format!("factor must be non-negative and finite, got {factor}"),
        ));
    }
    Ok(img.map(|v| (0.5 + (v - 0.5) * factor).clamp(0.0, 1.0)))
}

/// Applies gamma correction `v ↦ v^gamma` to pixels clamped into `[0, 1]`.
///
/// # Errors
///
/// Fails when `gamma` is not finite or not positive.
pub fn adjust_gamma(img: &Image, gamma: f32) -> Result<Image> {
    if !gamma.is_finite() || gamma <= 0.0 {
        return Err(VisionError::invalid(
            "adjust_gamma",
            format!("gamma must be positive and finite, got {gamma}"),
        ));
    }
    Ok(img.map(|v| v.clamp(0.0, 1.0).powf(gamma)))
}

fn sample_bilinear(img: &Image, y: f32, x: f32, fill: f32) -> f32 {
    let (h, w) = (img.height() as f32, img.width() as f32);
    if y < -0.5 || x < -0.5 || y > h - 0.5 || x > w - 0.5 {
        return fill;
    }
    let yc = y.clamp(0.0, h - 1.0);
    let xc = x.clamp(0.0, w - 1.0);
    let y0 = yc.floor() as usize;
    let x0 = xc.floor() as usize;
    let y1 = (y0 + 1).min(img.height() - 1);
    let x1 = (x0 + 1).min(img.width() - 1);
    let ty = yc - y0 as f32;
    let tx = xc - x0 as f32;
    let top = img.get(y0, x0) * (1.0 - tx) + img.get(y0, x1) * tx;
    let bot = img.get(y1, x0) * (1.0 - tx) + img.get(y1, x1) * tx;
    top * (1.0 - ty) + bot * ty
}

/// Rotates the image by `degrees` counter-clockwise about its centre with
/// bilinear sampling; uncovered pixels take `fill`.
pub fn rotate(img: &Image, degrees: f32, fill: f32) -> Image {
    let rad = degrees.to_radians();
    let (sin, cos) = rad.sin_cos();
    let cy = (img.height() as f32 - 1.0) / 2.0;
    let cx = (img.width() as f32 - 1.0) / 2.0;
    Image::from_fn(img.height(), img.width(), |y, x| {
        let dy = y as f32 - cy;
        let dx = x as f32 - cx;
        // Inverse rotation: where did this output pixel come from?
        let sy = cy + dx * sin + dy * cos;
        let sx = cx + dx * cos - dy * sin;
        sample_bilinear(img, sy, sx, fill)
    })
    .expect("same dimensions as a valid image")
}

/// Translates the image by `(dy, dx)` pixels (positive = down/right) with
/// bilinear sampling; uncovered pixels take `fill`.
pub fn translate(img: &Image, dy: f32, dx: f32, fill: f32) -> Image {
    Image::from_fn(img.height(), img.width(), |y, x| {
        sample_bilinear(img, y as f32 - dy, x as f32 - dx, fill)
    })
    .expect("same dimensions as a valid image")
}

/// Overwrites the rectangle `[x0, x0+w) × [y0, y0+h)` (clipped) with a
/// constant intensity, simulating sensor occlusion.
pub fn occlude_rect(img: &Image, y0: usize, x0: usize, h: usize, w: usize, value: f32) -> Image {
    let mut out = img.clone();
    let y1 = (y0 + h).min(img.height());
    let x1 = (x0 + w).min(img.width());
    for y in y0.min(img.height())..y1 {
        for x in x0.min(img.width())..x1 {
            out.put(y, x, value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gradient_image() -> Image {
        Image::from_fn(12, 16, |y, x| (y + x) as f32 / 26.0).unwrap()
    }

    #[test]
    fn noise_is_zero_mean_and_clamped() {
        let img = Image::filled(40, 40, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = add_gaussian_noise(&img, &mut rng, 0.1).unwrap();
        assert!((noisy.mean() - 0.5).abs() < 0.02);
        assert!(noisy.tensor().min_value() >= 0.0);
        assert!(noisy.tensor().max_value() <= 1.0);
        assert!(noisy.tensor().variance() > 0.0);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let img = gradient_image();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(add_gaussian_noise(&img, &mut rng, 0.0).unwrap(), img);
        assert!(add_gaussian_noise(&img, &mut rng, -0.1).is_err());
    }

    #[test]
    fn noise_is_reproducible_from_seed() {
        let img = gradient_image();
        let a = add_gaussian_noise(&img, &mut StdRng::seed_from_u64(9), 0.05).unwrap();
        let b = add_gaussian_noise(&img, &mut StdRng::seed_from_u64(9), 0.05).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn brightness_shifts_and_saturates() {
        let img = Image::filled(2, 2, 0.9).unwrap();
        let brighter = adjust_brightness(&img, 0.3);
        assert_eq!(brighter.get(0, 0), 1.0);
        let darker = adjust_brightness(&img, -0.5);
        assert!((darker.get(0, 0) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn contrast_pivots_on_midgray() {
        let img = Image::from_fn(1, 2, |_, x| if x == 0 { 0.25 } else { 0.75 }).unwrap();
        let flat = adjust_contrast(&img, 0.0).unwrap();
        assert_eq!(flat.get(0, 0), 0.5);
        assert_eq!(flat.get(0, 1), 0.5);
        let strong = adjust_contrast(&img, 2.0).unwrap();
        assert_eq!(strong.get(0, 0), 0.0);
        assert_eq!(strong.get(0, 1), 1.0);
        assert!(adjust_contrast(&img, -1.0).is_err());
    }

    #[test]
    fn gamma_brightens_or_darkens_midtones() {
        let img = Image::filled(1, 1, 0.5).unwrap();
        assert!(adjust_gamma(&img, 0.5).unwrap().get(0, 0) > 0.5);
        assert!(adjust_gamma(&img, 2.0).unwrap().get(0, 0) < 0.5);
        assert!(adjust_gamma(&img, 0.0).is_err());
    }

    #[test]
    fn rotate_zero_is_near_identity() {
        let img = gradient_image();
        let r = rotate(&img, 0.0, 0.0);
        for (a, b) in r.as_slice().iter().zip(img.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn rotate_180_flips_both_axes() {
        let img = Image::from_fn(5, 5, |y, x| (y * 5 + x) as f32).unwrap();
        let r = rotate(&img, 180.0, 0.0);
        for y in 0..5 {
            for x in 0..5 {
                assert!(
                    (r.get(y, x) - img.get(4 - y, 4 - x)).abs() < 1e-3,
                    "mismatch at ({y},{x})"
                );
            }
        }
    }

    #[test]
    fn translate_moves_content() {
        let mut img = Image::new(6, 6).unwrap();
        img.put(2, 2, 1.0);
        let t = translate(&img, 1.0, 2.0, 0.0);
        assert!((t.get(3, 4) - 1.0).abs() < 1e-5);
        assert_eq!(t.get(2, 2), 0.0);
    }

    #[test]
    fn translate_fills_uncovered_area() {
        let img = Image::filled(4, 4, 1.0).unwrap();
        let t = translate(&img, 0.0, 2.0, 0.25);
        assert_eq!(t.get(0, 0), 0.25);
        assert_eq!(t.get(0, 3), 1.0);
    }

    #[test]
    fn occlusion_paints_patch_only() {
        let img = Image::filled(8, 8, 1.0).unwrap();
        let o = occlude_rect(&img, 2, 3, 2, 3, 0.0);
        assert_eq!(o.get(2, 3), 0.0);
        assert_eq!(o.get(3, 5), 0.0);
        assert_eq!(o.get(1, 3), 1.0);
        assert_eq!(o.get(4, 3), 1.0);
        // Clipped occlusion doesn't panic.
        let o2 = occlude_rect(&img, 7, 7, 10, 10, 0.5);
        assert_eq!(o2.get(7, 7), 0.5);
    }
}
