use std::fmt;

use ndtensor::TensorError;

/// Error type for image construction, processing and I/O.
#[derive(Debug)]
pub enum VisionError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An image-level invariant was violated.
    Invalid {
        /// Short name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// File I/O failed while reading or writing an image.
    Io(std::io::Error),
    /// A PGM/PPM stream was malformed.
    Format(String),
}

impl VisionError {
    /// Builds an [`VisionError::Invalid`] with the given operation and reason.
    pub fn invalid(op: &'static str, reason: impl Into<String>) -> Self {
        VisionError::Invalid {
            op,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for VisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisionError::Tensor(e) => write!(f, "tensor error: {e}"),
            VisionError::Invalid { op, reason } => write!(f, "{op}: {reason}"),
            VisionError::Io(e) => write!(f, "io error: {e}"),
            VisionError::Format(msg) => write!(f, "malformed image stream: {msg}"),
        }
    }
}

impl std::error::Error for VisionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VisionError::Tensor(e) => Some(e),
            VisionError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for VisionError {
    fn from(e: TensorError) -> Self {
        VisionError::Tensor(e)
    }
}

impl From<std::io::Error> for VisionError {
    fn from(e: std::io::Error) -> Self {
        VisionError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = VisionError::from(TensorError::invalid("x", "boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());

        let e = VisionError::invalid("resize", "zero target");
        assert!(e.to_string().contains("resize"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VisionError>();
    }
}
