//! The fault-tolerant streaming runtime around a [`Detector`] — a single
//! [`crate::NoveltyDetector`] or a fused [`crate::EnsembleDetector`].
//!
//! [`Detector::classify`] is a pure function that errors on bad
//! input; [`crate::monitor::StreamMonitor`] debounces flags it is handed.
//! Neither answers the deployment question: *what does the safety monitor
//! output when the camera feed itself misbehaves?* [`StreamRuntime`]
//! closes that gap. Every frame — delivered, corrupt, or missing —
//! flows through four layers and always yields a [`StreamDecision`]:
//!
//! 1. the [`FrameGate`] validates and classifies the frame,
//! 2. admissible frames are scored (optionally against a deadline),
//! 3. inadmissible or unscorable frames are resolved by the configured
//!    [`FallbackPolicy`],
//! 4. the resulting flag feeds the `m`-of-`k` alarm monitor, and the
//!    frame's outcome feeds the [`HealthTracker`].
//!
//! The runtime is deterministic: given the same detector and frame
//! sequence it produces the same decision sequence, with or without an
//! attached [`obs::Recorder`] (recording only observes, as everywhere in
//! this workspace). All observability lands under the `stream-score`
//! stage: per-frame scoring spans and latency, gate-rejection counters by
//! class, fallback counters by policy, health-transition counters and a
//! severity gauge.
//!
//! Two extensions serve the multi-tenant serving layer
//! ([`crate::serve`]):
//!
//! * **Split-phase processing.** [`StreamRuntime::admit_recorded`]
//!   assigns the frame index and gates the frame;
//!   [`StreamRuntime::resolve_recorded`] folds a caller-computed
//!   [`ScoreOutcome`] through the same fallback/monitor/health machinery
//!   [`StreamRuntime::process`] uses. A server can therefore gate frames
//!   per tenant, score them in one cross-tenant batch, and demultiplex —
//!   while each tenant's decision stream stays bit-identical to running
//!   that tenant alone.
//! * **Injectable deadline clock.** Under [`DeadlineClock::Ambient`]
//!   (the default) deadline overruns compare measured wall time against
//!   [`StreamConfig::deadline`]; under [`DeadlineClock::Virtual`] each
//!   scored frame is charged a seeded [`CostModel`] cost instead, making
//!   overrun behavior a pure function of the inputs.

use std::time::Duration;

use obs::{Recorder, Span, Stopwatch};
use vision::Image;

use crate::backend::Detector;
use crate::monitor::{AlarmState, StreamMonitor};
use crate::{
    FrameFault, FrameGate, GateConfig, HealthConfig, HealthEvent, HealthState, HealthTracker,
    Result, Verdict,
};

/// What the runtime outputs for a frame that could not be scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackPolicy {
    /// Assume the worst: an unscorable frame is treated as novel, so
    /// sustained sensor faults raise the alarm just like sustained
    /// out-of-distribution scenery. The conservative default.
    TreatAsNovel,
    /// Coast on the last successful verdict (bounded staleness: suitable
    /// when transient faults are expected and false alarms are costly).
    /// Falls back to [`FallbackPolicy::TreatAsNovel`] while no verdict
    /// exists yet.
    HoldLastVerdict,
    /// Emit an explicit "no decision": the alarm window is left
    /// untouched and `is_novel` is absent. The supervisor sees the
    /// abstention (it is still a decision, never a silent gap).
    Abstain,
}

impl FallbackPolicy {
    /// Stable name for CLI flags and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FallbackPolicy::TreatAsNovel => "treat-novel",
            FallbackPolicy::HoldLastVerdict => "hold-last",
            FallbackPolicy::Abstain => "abstain",
        }
    }

    /// Parses a name produced by [`FallbackPolicy::name`].
    pub fn from_name(name: &str) -> Option<FallbackPolicy> {
        FallbackPolicy::all().into_iter().find(|p| p.name() == name)
    }

    /// Every policy, in a stable order.
    pub fn all() -> [FallbackPolicy; 3] {
        [
            FallbackPolicy::TreatAsNovel,
            FallbackPolicy::HoldLastVerdict,
            FallbackPolicy::Abstain,
        ]
    }
}

/// How a [`StreamDecision`]'s flag was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionSource {
    /// The frame was scored by the detector.
    Scored,
    /// Fallback: the frame was assumed novel.
    FallbackNovel,
    /// Fallback: the last successful verdict was re-used.
    FallbackHeld,
    /// Fallback: the runtime explicitly abstained.
    Abstained,
    /// The serving layer shed the frame before scoring; the flag was
    /// resolved by the tenant's [`FallbackPolicy`] (see
    /// [`StreamDecision::shed`] for the reason).
    Shed,
}

impl DecisionSource {
    /// Stable name for logs and counters.
    pub fn name(&self) -> &'static str {
        match self {
            DecisionSource::Scored => "scored",
            DecisionSource::FallbackNovel => "fallback-novel",
            DecisionSource::FallbackHeld => "fallback-held",
            DecisionSource::Abstained => "abstained",
            DecisionSource::Shed => "shed",
        }
    }
}

/// Why the serving layer shed a frame without scoring it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The tenant's bounded admission queue was full when the frame
    /// arrived.
    QueueFull,
    /// The frame aged past the tenant's maximum queueing delay before a
    /// scoring slot opened.
    DeadlineExpired,
}

impl ShedReason {
    /// Stable name for logs and counters.
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::DeadlineExpired => "deadline-expired",
        }
    }
}

/// A deterministic per-frame scoring-cost model: frame `i` is charged
/// `base + jitter · u(seed, i)`, where `u` is a uniform `[0, 1)` hash.
/// With [`DeadlineClock::Virtual`] this replaces measured wall time in
/// deadline accounting, so overrun-path behavior is reproducible on any
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost floor charged to every scored frame.
    pub base: Duration,
    /// Upper bound on the additional per-frame jitter.
    pub jitter: Duration,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl CostModel {
    /// A model that charges every frame exactly `base`.
    pub fn fixed(base: Duration) -> Self {
        CostModel {
            base,
            jitter: Duration::ZERO,
            seed: 0,
        }
    }

    /// The simulated scoring cost of frame `frame`.
    pub fn cost(&self, frame: u64) -> Duration {
        if self.jitter.is_zero() {
            return self.base;
        }
        // splitmix64 over (seed, frame) → uniform [0, 1).
        let mut z = self
            .seed
            .wrapping_add(frame.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        self.base + Duration::from_secs_f64(self.jitter.as_secs_f64() * unit)
    }
}

/// Where the scoring cost charged against [`StreamConfig::deadline`]
/// comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineClock {
    /// Measure ambient wall time around scoring (via [`obs::Stopwatch`],
    /// the workspace's sole sanctioned clock). Deployments want this;
    /// decision streams then depend on machine speed, so reproducible
    /// runs should prefer [`DeadlineClock::Virtual`].
    Ambient,
    /// Charge each scored frame the model's simulated cost — deadline
    /// overruns become a pure function of the frame index.
    Virtual(CostModel),
}

/// The runtime's complete output for one frame.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a StreamDecision is the per-frame safety output; dropping it loses the novelty flag and health state"]
pub struct StreamDecision {
    /// Zero-based frame index in the stream.
    pub frame: u64,
    /// How the flag was produced.
    pub source: DecisionSource,
    /// The novelty flag; `None` only under [`FallbackPolicy::Abstain`].
    pub is_novel: Option<bool>,
    /// The verdict backing the flag: fresh when scored, stale when held,
    /// absent otherwise.
    pub verdict: Option<Verdict>,
    /// Why the gate rejected the frame, when it did.
    pub gate_fault: Option<FrameFault>,
    /// Why the serving layer shed the frame, when it did (the source is
    /// then [`DecisionSource::Shed`] and the frame was never gated or
    /// scored).
    pub shed: Option<ShedReason>,
    /// The scoring error, when the gate admitted the frame but the
    /// detector failed on it.
    pub score_error: Option<String>,
    /// `true` when scoring succeeded but blew the configured deadline.
    pub deadline_overrun: bool,
    /// Health state after this frame.
    pub health: HealthState,
    /// Alarm state after this frame.
    pub alarm: AlarmState,
}

/// Configuration for a [`StreamRuntime`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Frame admission thresholds.
    pub gate: GateConfig,
    /// Health escalation/recovery thresholds.
    pub health: HealthConfig,
    /// What to output for unscorable frames.
    pub fallback: FallbackPolicy,
    /// Alarm window size (`k` of the `m`-of-`k` rule, default 8).
    pub window: usize,
    /// Novel frames within the window that raise the alarm (default 5).
    pub min_novel: usize,
    /// Per-frame scoring deadline. `None` (the default) disables
    /// deadline tracking. Combined with [`DeadlineClock::Ambient`] it
    /// makes decision streams depend on wall-clock noise — use
    /// [`DeadlineClock::Virtual`] when byte-reproducible logs matter.
    pub deadline: Option<Duration>,
    /// Where the cost charged against `deadline` comes from (default
    /// [`DeadlineClock::Ambient`]).
    pub clock: DeadlineClock,
}

impl StreamConfig {
    /// Defaults sized to `detector`'s input geometry.
    pub fn for_detector(detector: &dyn Detector) -> Self {
        let (height, width) = detector.input_size();
        StreamConfig {
            gate: GateConfig::new(height, width),
            health: HealthConfig::default(),
            fallback: FallbackPolicy::TreatAsNovel,
            window: 8,
            min_novel: 5,
            deadline: None,
            clock: DeadlineClock::Ambient,
        }
    }

    /// Overrides the fallback policy.
    pub fn with_fallback(mut self, fallback: FallbackPolicy) -> Self {
        self.fallback = fallback;
        self
    }

    /// Overrides the alarm window (`min_novel` of `window`).
    pub fn with_alarm_window(mut self, window: usize, min_novel: usize) -> Self {
        self.window = window;
        self.min_novel = min_novel;
        self
    }

    /// Sets a per-frame scoring deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Charges deadline accounting from a simulated [`CostModel`]
    /// instead of ambient wall time (deterministic overruns).
    pub fn with_virtual_cost(mut self, model: CostModel) -> Self {
        self.clock = DeadlineClock::Virtual(model);
        self
    }
}

/// The receipt [`StreamRuntime::admit_recorded`] returns: a frame index
/// plus the gate's ruling, awaiting resolution. Receipts must be
/// resolved exactly once, in admission order — the alarm and health
/// folds are order-sensitive.
#[derive(Debug)]
#[must_use = "every admitted frame must be resolved into a StreamDecision"]
pub struct FrameAdmission {
    index: u64,
    gate_fault: Option<FrameFault>,
}

impl FrameAdmission {
    /// The frame index this receipt resolves to.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The gate's rejection, when the frame was inadmissible.
    pub fn gate_fault(&self) -> Option<&FrameFault> {
        self.gate_fault.as_ref()
    }
}

/// The caller-computed scoring outcome consumed by
/// [`StreamRuntime::resolve_recorded`].
#[derive(Debug)]
pub enum ScoreOutcome {
    /// The detector produced a verdict. `elapsed` is the measured
    /// scoring time when the caller timed it; it feeds deadline
    /// accounting under [`DeadlineClock::Ambient`] (and is ignored under
    /// [`DeadlineClock::Virtual`]).
    Scored {
        /// The fresh verdict.
        verdict: Verdict,
        /// Measured scoring time, when available.
        elapsed: Option<Duration>,
    },
    /// The gate admitted the frame but the detector failed on it.
    Failed(String),
    /// The frame was never scored (typically because the gate rejected
    /// it); the fallback policy resolves the flag.
    Unscored,
    /// The serving layer shed the frame before gating or scoring.
    Shed(ShedReason),
}

/// The fault-tolerant streaming runtime.
///
/// # Example
///
/// ```no_run
/// use novelty::{NoveltyDetector, StreamConfig, StreamRuntime};
/// use simdrive::DriveConfig;
/// use simdrive::World;
///
/// # fn main() -> Result<(), novelty::NoveltyError> {
/// let detector = NoveltyDetector::load("detector.json")?;
/// let mut runtime = StreamRuntime::new(&detector, StreamConfig::for_detector(&detector))?;
/// let drive = DriveConfig::new(World::Outdoor).with_len(100).simulate(7);
/// for frame in drive.frames() {
///     let decision = runtime.process(Some(&frame.image));
///     println!("frame {}: {:?} ({:?})", decision.frame, decision.is_novel, decision.health);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamRuntime<'d> {
    detector: &'d dyn Detector,
    gate: FrameGate,
    health: HealthTracker,
    monitor: StreamMonitor,
    fallback: FallbackPolicy,
    deadline: Option<Duration>,
    clock: DeadlineClock,
    last_verdict: Option<Verdict>,
    frames: u64,
}

impl<'d> StreamRuntime<'d> {
    /// A runtime monitoring `detector` under `config`.
    ///
    /// # Errors
    ///
    /// Fails when the gate, health, or alarm-window configuration is
    /// invalid.
    pub fn new(detector: &'d dyn Detector, config: StreamConfig) -> Result<Self> {
        Ok(StreamRuntime {
            detector,
            gate: FrameGate::new(config.gate)?,
            health: HealthTracker::new(config.health)?,
            monitor: StreamMonitor::new(config.window, config.min_novel)?,
            fallback: config.fallback,
            deadline: config.deadline,
            clock: config.clock,
            last_verdict: None,
            frames: 0,
        })
    }

    /// Processes one frame (`None` = the frame never arrived) and
    /// returns the decision. Never fails and never skips: every call
    /// yields exactly one [`StreamDecision`].
    pub fn process(&mut self, frame: Option<&Image>) -> StreamDecision {
        self.process_recorded(frame, obs::noop())
    }

    /// [`StreamRuntime::process`] with observability: scoring runs under
    /// a `stream-score` span with per-frame latency samples, and the
    /// gate/fallback/health/alarm activity lands in `stream-score.*`
    /// counters and gauges. Recording never changes the decision.
    pub fn process_recorded(
        &mut self,
        frame: Option<&Image>,
        recorder: &dyn Recorder,
    ) -> StreamDecision {
        // Layer 1: admission control.
        let admission = self.admit_recorded(frame, recorder);

        // Layer 2: scoring (only for admitted frames).
        let outcome = match admission.gate_fault() {
            Some(_) => ScoreOutcome::Unscored,
            // The gate admits only delivered frames, so `frame` is Some
            // here; degrade to a per-frame score error rather than panic
            // if that invariant ever breaks — every frame must still
            // yield exactly one decision.
            None => match frame {
                Some(img) => {
                    let span = Span::root(recorder, "stream-score");
                    let ambient_deadline =
                        self.deadline.is_some() && matches!(self.clock, DeadlineClock::Ambient);
                    let timer = Stopwatch::started_if(ambient_deadline || recorder.enabled());
                    let scratch_before = recorder.enabled().then(obs::scratch_snapshot);
                    let result = self.detector.classify(img);
                    let elapsed = timer.elapsed();
                    span.finish();
                    if let Some(before) = scratch_before {
                        obs::record_scratch_delta(
                            &obs::Scoped::new(recorder, "stream-score"),
                            before,
                        );
                    }
                    if let Some(elapsed) = elapsed {
                        recorder.observe("stream-score.latency_secs", elapsed.as_secs_f64());
                    }
                    match result {
                        Ok(verdict) => ScoreOutcome::Scored { verdict, elapsed },
                        // The gate admits what it can cheaply validate; a
                        // scoring error past the gate is still a per-frame
                        // fault, not a stream-ending one.
                        Err(e) => ScoreOutcome::Failed(e.to_string()),
                    }
                }
                None => ScoreOutcome::Failed("gate admitted an undelivered frame".to_string()),
            },
        };

        // Layers 3 and 4: fallback resolution, alarm, health.
        self.resolve_recorded(admission, outcome, recorder)
    }

    /// [`StreamRuntime::admit_recorded`] without observability.
    pub fn admit(&mut self, frame: Option<&Image>) -> FrameAdmission {
        self.admit_recorded(frame, obs::noop())
    }

    /// Split-phase layer 1: assigns the next frame index and runs
    /// admission control. The receipt must be passed to
    /// [`StreamRuntime::resolve_recorded`] exactly once, and receipts
    /// must be resolved in admission order.
    pub fn admit_recorded(
        &mut self,
        frame: Option<&Image>,
        recorder: &dyn Recorder,
    ) -> FrameAdmission {
        let index = self.frames;
        self.frames += 1;
        recorder.add("stream-score.frames", 1);
        let gate_fault = self.gate.admit(frame);
        if let Some(fault) = &gate_fault {
            recorder.add("stream-score.gate_rejected", 1);
            recorder.add(&format!("stream-score.gate_rejected.{}", fault.class()), 1);
        }
        FrameAdmission { index, gate_fault }
    }

    /// Assigns the next frame index *without* consulting the gate, for
    /// frames the serving layer sheds unseen. Their pixels are never
    /// inspected, so they must not perturb the gate's stuck-frame
    /// history; resolve the receipt with [`ScoreOutcome::Shed`].
    pub fn admit_unseen(&mut self, recorder: &dyn Recorder) -> FrameAdmission {
        let index = self.frames;
        self.frames += 1;
        recorder.add("stream-score.frames", 1);
        FrameAdmission {
            index,
            gate_fault: None,
        }
    }

    /// [`StreamRuntime::resolve_recorded`] without observability.
    pub fn resolve(&mut self, admission: FrameAdmission, outcome: ScoreOutcome) -> StreamDecision {
        self.resolve_recorded(admission, outcome, obs::noop())
    }

    /// Split-phase layers 3 and 4: folds the caller-computed outcome
    /// through fallback resolution, the alarm monitor and the health
    /// tracker — exactly the machinery [`StreamRuntime::process`] uses,
    /// so a batched caller produces bit-identical decision streams.
    ///
    /// If the receipt carries a gate fault, any verdict in `outcome` is
    /// ignored (the gate's refusal wins, keeping fault semantics
    /// uniform).
    pub fn resolve_recorded(
        &mut self,
        admission: FrameAdmission,
        outcome: ScoreOutcome,
        recorder: &dyn Recorder,
    ) -> StreamDecision {
        let FrameAdmission { index, gate_fault } = admission;
        let mut score_error = None;
        let mut deadline_overrun = false;
        let mut shed = None;

        let scored = match outcome {
            ScoreOutcome::Scored { verdict, elapsed } if gate_fault.is_none() => {
                let charged = match self.clock {
                    DeadlineClock::Virtual(model) => Some(model.cost(index)),
                    DeadlineClock::Ambient => elapsed,
                };
                if let (Some(deadline), Some(charged)) = (self.deadline, charged) {
                    if charged > deadline {
                        deadline_overrun = true;
                        recorder.add("stream-score.deadline_overruns", 1);
                    }
                }
                Some(verdict)
            }
            // A verdict for a gate-rejected frame is a caller bug; drop
            // it and resolve through the fallback like any rejection.
            ScoreOutcome::Scored { .. } | ScoreOutcome::Unscored => None,
            ScoreOutcome::Failed(e) => {
                score_error = Some(e);
                recorder.add("stream-score.score_errors", 1);
                None
            }
            ScoreOutcome::Shed(reason) => {
                shed = Some(reason);
                recorder.add("stream-score.shed", 1);
                recorder.add(&format!("stream-score.shed.{}", reason.name()), 1);
                None
            }
        };

        // Layer 3: fallback resolution — every frame yields a decision.
        let (source, is_novel, verdict) = match scored {
            Some(v) => {
                // Cloning a single-backend verdict copies no heap data
                // (its `backends` list is empty), keeping the warmed
                // stream path allocation-free.
                self.last_verdict = Some(v.clone());
                (DecisionSource::Scored, Some(v.is_novel), Some(v))
            }
            None => {
                let (fallback_source, flag, held) = match (self.fallback, &self.last_verdict) {
                    (FallbackPolicy::HoldLastVerdict, Some(held)) => (
                        DecisionSource::FallbackHeld,
                        Some(held.is_novel),
                        Some(held.clone()),
                    ),
                    (FallbackPolicy::Abstain, _) => (DecisionSource::Abstained, None, None),
                    // TreatAsNovel, and HoldLastVerdict before any verdict
                    // exists: assume the worst.
                    _ => (DecisionSource::FallbackNovel, Some(true), None),
                };
                // A shed frame resolves its flag through the same policy
                // but keeps its own source, so logs show overload as
                // overload rather than as sensor fallback.
                if shed.is_some() {
                    (DecisionSource::Shed, flag, held)
                } else {
                    (fallback_source, flag, held)
                }
            }
        };
        if source != DecisionSource::Scored {
            recorder.add("stream-score.fallbacks", 1);
            recorder.add(&format!("stream-score.fallbacks.{}", source.name()), 1);
        }

        // Layer 4: alarm debouncing and health bookkeeping.
        let alarm = match is_novel {
            Some(flag) => self.monitor.observe_flag(flag),
            None => self.monitor.state(),
        };
        if alarm == AlarmState::Raised {
            recorder.add("stream-score.alarm.raised_frames", 1);
        }
        let event = if shed.is_some() {
            HealthEvent::Shed
        } else if gate_fault.is_some() {
            HealthEvent::GateRejected
        } else if score_error.is_some() {
            HealthEvent::ScoreFailed
        } else if deadline_overrun {
            HealthEvent::DeadlineOverrun
        } else {
            HealthEvent::Clean
        };
        let before = self.health.state();
        let health = self.health.observe(event);
        if health != before {
            recorder.add("stream-score.health.transitions", 1);
            recorder.add(&format!("stream-score.health.to_{}", health.name()), 1);
        }
        recorder.gauge("stream-score.health.severity", health.severity() as f64);

        StreamDecision {
            frame: index,
            source,
            is_novel,
            verdict,
            gate_fault,
            shed,
            score_error,
            deadline_overrun,
            health,
            alarm,
        }
    }

    /// The detector being monitored.
    pub fn detector(&self) -> &'d dyn Detector {
        self.detector
    }

    /// The health tracker (state, transition log).
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The alarm monitor (window contents, lifetime stats).
    pub fn monitor(&self) -> &StreamMonitor {
        &self.monitor
    }

    /// Frames processed so far.
    pub fn frames_processed(&self) -> u64 {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ClassifierConfig, NoveltyDetector, NoveltyDetectorBuilder, ReconstructionObjective,
    };
    use simdrive::{DatasetConfig, DriveConfig, World};
    use std::sync::OnceLock;

    /// One tiny trained detector shared by every test in this module
    /// (training dominates the test's wall time).
    fn detector() -> &'static NoveltyDetector {
        static DETECTOR: OnceLock<NoveltyDetector> = OnceLock::new();
        DETECTOR.get_or_init(|| {
            let data = DatasetConfig::outdoor()
                .with_len(24)
                .with_size(40, 80)
                .with_supersample(1)
                .generate(11);
            NoveltyDetectorBuilder::paper()
                .classifier_config(ClassifierConfig {
                    hidden: vec![16, 8, 16],
                    epochs: 6,
                    warmup_epochs: 2,
                    batch_size: 8,
                    learning_rate: 3e-3,
                    objective: ReconstructionObjective::Ssim { window: 7 },
                })
                .cnn_epochs(1)
                .seed(1)
                .train(&data)
                .unwrap()
        })
    }

    fn drive_frames(len: usize, seed: u64) -> Vec<Image> {
        DriveConfig::new(World::Outdoor)
            .with_len(len)
            .with_size(40, 80)
            .with_supersample(1)
            .simulate(seed)
            .frames()
            .iter()
            .map(|f| f.image.clone())
            .collect()
    }

    fn runtime(fallback: FallbackPolicy) -> StreamRuntime<'static> {
        let det = detector();
        StreamRuntime::new(det, StreamConfig::for_detector(det).with_fallback(fallback)).unwrap()
    }

    #[test]
    fn clean_stream_scores_every_frame_and_stays_healthy() {
        let mut rt = runtime(FallbackPolicy::TreatAsNovel);
        for (i, frame) in drive_frames(10, 3).iter().enumerate() {
            let d = rt.process(Some(frame));
            assert_eq!(d.frame, i as u64);
            assert_eq!(d.source, DecisionSource::Scored);
            assert!(d.verdict.is_some());
            assert_eq!(d.gate_fault, None);
            assert_eq!(d.health, HealthState::Healthy);
        }
        assert_eq!(rt.frames_processed(), 10);
        assert!(rt.health().transitions().is_empty());
    }

    #[test]
    fn policies_resolve_unscorable_frames_as_documented() {
        let frames = drive_frames(4, 5);
        for policy in FallbackPolicy::all() {
            let mut rt = runtime(policy);
            // Prime a last verdict so hold-last has something to hold.
            let primed = rt.process(Some(&frames[0]));
            assert_eq!(primed.source, DecisionSource::Scored);
            // A missing frame must still yield a decision.
            let d = rt.process(None);
            assert_eq!(d.gate_fault, Some(FrameFault::MissingFrame));
            match policy {
                FallbackPolicy::TreatAsNovel => {
                    assert_eq!(d.source, DecisionSource::FallbackNovel);
                    assert_eq!(d.is_novel, Some(true));
                }
                FallbackPolicy::HoldLastVerdict => {
                    assert_eq!(d.source, DecisionSource::FallbackHeld);
                    assert_eq!(d.is_novel, primed.verdict.as_ref().map(|v| v.is_novel));
                    assert_eq!(d.verdict, primed.verdict);
                }
                FallbackPolicy::Abstain => {
                    assert_eq!(d.source, DecisionSource::Abstained);
                    assert_eq!(d.is_novel, None);
                    assert_eq!(d.verdict, None);
                }
            }
        }
    }

    #[test]
    fn hold_last_without_history_assumes_novel() {
        let mut rt = runtime(FallbackPolicy::HoldLastVerdict);
        let d = rt.process(None);
        assert_eq!(d.source, DecisionSource::FallbackNovel);
        assert_eq!(d.is_novel, Some(true));
    }

    #[test]
    fn sustained_faults_degrade_then_recover_with_hysteresis() {
        let mut rt = runtime(FallbackPolicy::TreatAsNovel);
        let frames = drive_frames(20, 7);
        // 6 consecutive missing frames: Degraded at 2, FailSafe at 6.
        let mut states = Vec::new();
        for _ in 0..6 {
            states.push(rt.process(None).health);
        }
        assert_eq!(states[0], HealthState::Healthy);
        assert_eq!(states[1], HealthState::Degraded);
        assert_eq!(states[5], HealthState::FailSafe);
        // Recovery steps down one level per 4 clean frames.
        let mut recovered = Vec::new();
        for frame in &frames {
            recovered.push(rt.process(Some(frame)).health);
        }
        assert_eq!(recovered[2], HealthState::FailSafe);
        assert_eq!(recovered[3], HealthState::Degraded);
        assert_eq!(recovered[7], HealthState::Healthy);
        assert_eq!(rt.health().worst_state(), HealthState::FailSafe);
        assert_eq!(rt.health().transitions().len(), 4);
    }

    #[test]
    fn abstain_leaves_the_alarm_window_untouched() {
        let det = detector();
        let config = StreamConfig::for_detector(det)
            .with_fallback(FallbackPolicy::Abstain)
            .with_alarm_window(2, 1);
        let mut rt = StreamRuntime::new(det, config).unwrap();
        // Force the alarm up with a novel-ish frame: a missing frame under
        // treat-novel would raise it, but abstain must not.
        for _ in 0..5 {
            let d = rt.process(None);
            assert_eq!(d.alarm, AlarmState::Nominal);
        }
        assert_eq!(rt.monitor().total_observed(), 0);
    }

    #[test]
    fn decisions_are_deterministic_and_recording_does_not_perturb() {
        let frames = drive_frames(8, 9);
        let feed = |rt: &mut StreamRuntime<'_>, rec: &dyn Recorder| -> Vec<StreamDecision> {
            frames
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let frame = if i % 3 == 2 { None } else { Some(f) };
                    rt.process_recorded(frame, rec)
                })
                .collect()
        };
        let mut a = runtime(FallbackPolicy::HoldLastVerdict);
        let mut b = runtime(FallbackPolicy::HoldLastVerdict);
        let recorder = obs::RunRecorder::new();
        let plain = feed(&mut a, obs::noop());
        let recorded = feed(&mut b, &recorder);
        assert_eq!(plain, recorded);
        let report = recorder.report("stream");
        assert_eq!(report.counter("stream-score.frames"), Some(8));
        assert_eq!(
            report.counter("stream-score.gate_rejected.missing-frame"),
            report.counter("stream-score.gate_rejected")
        );
        assert!(report.stage("stream-score").unwrap().total_secs > 0.0);
    }

    #[test]
    fn wrong_size_detector_input_is_caught_by_the_gate() {
        let mut rt = runtime(FallbackPolicy::TreatAsNovel);
        let too_small = Image::filled(10, 10, 0.5).unwrap();
        let d = rt.process(Some(&too_small));
        assert!(matches!(
            d.gate_fault,
            Some(FrameFault::WrongDimensions { .. })
        ));
        assert_eq!(d.is_novel, Some(true));
    }
}
