//! Frame admission control: validate frames *before* they reach scoring.
//!
//! `NoveltyDetector::score` errors on malformed input, but a deployed
//! monitor needs to know *why* a frame is unusable — a NaN-poisoned
//! transfer, a blown-out exposure and a stuck sensor call for the same
//! fallback decision but very different maintenance responses.
//! [`FrameGate`] classifies incoming frames into [`FrameFault`] classes
//! cheaply (one pass over the pixels, no network evaluation) so the
//! streaming runtime can route rejects to its fallback policy and feed
//! its health state machine with structured evidence.

use simdrive::frame_digest;
use vision::Image;

use crate::{NoveltyError, Result};

/// Why the gate refused to forward a frame to scoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameFault {
    /// No frame arrived at all (sensor drop upstream of the gate).
    MissingFrame,
    /// The frame's geometry does not match the detector's input size.
    WrongDimensions {
        /// `(height, width)` the detector was trained on.
        expected: (usize, usize),
        /// `(height, width)` actually delivered.
        got: (usize, usize),
    },
    /// The frame contains NaN or infinite pixels.
    NonFinitePixels {
        /// Number of non-finite pixels found.
        count: usize,
    },
    /// Finite pixels fall outside the admissible intensity range.
    OutOfRangePixels {
        /// Smallest pixel observed.
        min: f32,
        /// Largest pixel observed.
        max: f32,
    },
    /// The frame is (nearly) uniformly dark — lens cap, dead sensor.
    AllBlack,
    /// The frame is (nearly) uniformly bright — blinding glare, blown
    /// exposure.
    Saturated,
    /// The frame is bit-identical to a run of preceding frames longer
    /// than the configured tolerance — the feed is frozen.
    StuckFrame {
        /// Length of the identical run, this frame included.
        run: usize,
    },
}

impl FrameFault {
    /// Stable kebab-case class name, used in counters and alarm logs.
    pub fn class(&self) -> &'static str {
        match self {
            FrameFault::MissingFrame => "missing-frame",
            FrameFault::WrongDimensions { .. } => "wrong-dimensions",
            FrameFault::NonFinitePixels { .. } => "non-finite-pixels",
            FrameFault::OutOfRangePixels { .. } => "out-of-range-pixels",
            FrameFault::AllBlack => "all-black",
            FrameFault::Saturated => "saturated",
            FrameFault::StuckFrame { .. } => "stuck-frame",
        }
    }

    /// Every fault class name, in a stable order (for exhaustive
    /// reporting even when a class never fired).
    pub fn all_classes() -> [&'static str; 7] {
        [
            "missing-frame",
            "wrong-dimensions",
            "non-finite-pixels",
            "out-of-range-pixels",
            "all-black",
            "saturated",
            "stuck-frame",
        ]
    }
}

impl std::fmt::Display for FrameFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameFault::MissingFrame => write!(f, "frame missing from the stream"),
            FrameFault::WrongDimensions { expected, got } => write!(
                f,
                "frame is {}x{} but the detector expects {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            FrameFault::NonFinitePixels { count } => {
                write!(f, "{count} NaN/infinite pixels")
            }
            FrameFault::OutOfRangePixels { min, max } => {
                write!(
                    f,
                    "pixels outside the admissible range (min {min}, max {max})"
                )
            }
            FrameFault::AllBlack => write!(f, "frame is uniformly dark"),
            FrameFault::Saturated => write!(f, "frame is uniformly bright"),
            FrameFault::StuckFrame { run } => {
                write!(f, "frame identical to the previous {} frames", run - 1)
            }
        }
    }
}

/// Validation thresholds for a [`FrameGate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// `(height, width)` every frame must match.
    pub expected: (usize, usize),
    /// Smallest admissible pixel value (default −0.01: nominal range is
    /// `[0, 1]` with a little slack for resampling ringing).
    pub min_pixel: f32,
    /// Largest admissible pixel value (default 1.01).
    pub max_pixel: f32,
    /// Frames with mean intensity at or below this are [`FrameFault::AllBlack`]
    /// (default 0.02).
    pub black_mean: f32,
    /// Frames with mean intensity at or above this are
    /// [`FrameFault::Saturated`] (default 0.98).
    pub saturated_mean: f32,
    /// Longest tolerated run of bit-identical frames; the next identical
    /// frame is rejected as [`FrameFault::StuckFrame`] (default 2 —
    /// temporally coherent streams repeat a frame occasionally, three in
    /// a row means the feed is frozen). Zero disables stuck detection.
    pub stuck_after: usize,
}

impl GateConfig {
    /// Defaults for a detector trained on `height`×`width` frames.
    pub fn new(height: usize, width: usize) -> Self {
        GateConfig {
            expected: (height, width),
            min_pixel: -0.01,
            max_pixel: 1.01,
            black_mean: 0.02,
            saturated_mean: 0.98,
            stuck_after: 2,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.expected.0 == 0 || self.expected.1 == 0 {
            return Err(NoveltyError::invalid(
                "FrameGate",
                "expected dimensions must be non-zero",
            ));
        }
        // partial_cmp so NaN thresholds are rejected, not admitted.
        if self.min_pixel.partial_cmp(&self.max_pixel) != Some(std::cmp::Ordering::Less) {
            return Err(NoveltyError::invalid(
                "FrameGate",
                format!(
                    "min_pixel must be below max_pixel, got [{}, {}]",
                    self.min_pixel, self.max_pixel
                ),
            ));
        }
        if self.black_mean.partial_cmp(&self.saturated_mean) != Some(std::cmp::Ordering::Less) {
            return Err(NoveltyError::invalid(
                "FrameGate",
                "black_mean must be below saturated_mean",
            ));
        }
        Ok(())
    }
}

/// Stateful frame validator for one stream.
///
/// The only state is the stuck-frame tracker (last digest and run
/// length), so gating is deterministic: the same frame sequence always
/// produces the same sequence of [`FrameFault`]s.
///
/// # Example
///
/// ```
/// use novelty::{FrameGate, GateConfig};
/// use vision::Image;
///
/// # fn main() -> Result<(), novelty::NoveltyError> {
/// let mut gate = FrameGate::new(GateConfig::new(4, 4))?;
/// let frame = Image::filled(4, 4, 0.5)?;
/// assert!(gate.admit(Some(&frame)).is_none());
/// let nan = Image::filled(4, 4, f32::NAN)?;
/// assert_eq!(gate.admit(Some(&nan)).unwrap().class(), "non-finite-pixels");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FrameGate {
    config: GateConfig,
    last_digest: Option<u64>,
    run: usize,
}

impl FrameGate {
    /// A gate enforcing `config`.
    ///
    /// # Errors
    ///
    /// Fails when the configuration is internally inconsistent.
    pub fn new(config: GateConfig) -> Result<Self> {
        config.validate()?;
        Ok(FrameGate {
            config,
            last_digest: None,
            run: 0,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &GateConfig {
        &self.config
    }

    /// Classifies one frame; `None` means the frame is admissible.
    ///
    /// Pass `None` for a frame that never arrived — it is classified as
    /// [`FrameFault::MissingFrame`] so missing frames are first-class
    /// events rather than silent gaps.
    ///
    /// Checks run cheapest-first and the first failure wins: dimensions,
    /// finiteness, range, black/saturated, stuck. The stuck tracker
    /// advances on every *delivered* frame (even rejected ones), so a
    /// frozen feed of corrupt frames still reads as frozen once it
    /// recovers pixel validity.
    #[must_use = "ignoring the gate's classification feeds unvetted frames to the detector"]
    pub fn admit(&mut self, frame: Option<&Image>) -> Option<FrameFault> {
        let Some(frame) = frame else {
            // No bits arrived: the stuck tracker keeps its run (a frozen
            // sensor interleaving drops is still frozen).
            return Some(FrameFault::MissingFrame);
        };
        let digest = frame_digest(frame);
        let run = if self.last_digest == Some(digest) {
            self.run + 1
        } else {
            1
        };
        self.last_digest = Some(digest);
        self.run = run;

        let got = (frame.height(), frame.width());
        if got != self.config.expected {
            return Some(FrameFault::WrongDimensions {
                expected: self.config.expected,
                got,
            });
        }
        let mut non_finite = 0usize;
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        for &px in frame.as_slice() {
            if !px.is_finite() {
                non_finite += 1;
                continue;
            }
            min = min.min(px);
            max = max.max(px);
            sum += px as f64;
        }
        if non_finite > 0 {
            return Some(FrameFault::NonFinitePixels { count: non_finite });
        }
        if min < self.config.min_pixel || max > self.config.max_pixel {
            return Some(FrameFault::OutOfRangePixels { min, max });
        }
        let mean = (sum / frame.len() as f64) as f32;
        if mean <= self.config.black_mean {
            return Some(FrameFault::AllBlack);
        }
        if mean >= self.config.saturated_mean {
            return Some(FrameFault::Saturated);
        }
        if self.config.stuck_after > 0 && run > self.config.stuck_after {
            return Some(FrameFault::StuckFrame { run });
        }
        None
    }

    /// Forgets the stuck-frame history (e.g. after a camera restart).
    pub fn reset(&mut self) {
        self.last_digest = None;
        self.run = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> FrameGate {
        FrameGate::new(GateConfig::new(6, 8)).unwrap()
    }

    fn textured(seed: f32) -> Image {
        Image::from_fn(6, 8, |y, x| {
            0.2 + 0.5 * ((y * 8 + x) as f32 * 0.07 + seed).sin().abs()
        })
        .unwrap()
    }

    #[test]
    fn config_is_validated() {
        assert!(FrameGate::new(GateConfig::new(0, 8)).is_err());
        let mut bad = GateConfig::new(6, 8);
        bad.min_pixel = 2.0;
        assert!(FrameGate::new(bad).is_err());
        let mut bad = GateConfig::new(6, 8);
        bad.black_mean = 0.99;
        assert!(FrameGate::new(bad).is_err());
    }

    #[test]
    fn clean_frames_are_admitted() {
        let mut g = gate();
        for i in 0..5 {
            assert_eq!(g.admit(Some(&textured(i as f32))), None, "frame {i}");
        }
    }

    #[test]
    fn each_fault_class_is_detected() {
        let mut g = gate();
        assert_eq!(g.admit(None), Some(FrameFault::MissingFrame));

        let wrong = Image::filled(3, 8, 0.5).unwrap();
        assert!(matches!(
            g.admit(Some(&wrong)),
            Some(FrameFault::WrongDimensions {
                expected: (6, 8),
                got: (3, 8)
            })
        ));

        let mut nan = textured(1.0);
        nan.put(2, 2, f32::NAN);
        nan.put(2, 3, f32::INFINITY);
        assert_eq!(
            g.admit(Some(&nan)),
            Some(FrameFault::NonFinitePixels { count: 2 })
        );

        let hot = textured(2.0).map(|v| v * 3.0);
        assert!(matches!(
            g.admit(Some(&hot)),
            Some(FrameFault::OutOfRangePixels { .. })
        ));

        let black = Image::filled(6, 8, 0.001).unwrap();
        assert_eq!(g.admit(Some(&black)), Some(FrameFault::AllBlack));

        let white = Image::filled(6, 8, 0.999).unwrap();
        assert_eq!(g.admit(Some(&white)), Some(FrameFault::Saturated));
    }

    #[test]
    fn stuck_frames_reject_after_tolerated_run() {
        let mut g = gate();
        let frame = textured(3.0);
        assert_eq!(g.admit(Some(&frame)), None); // run 1
        assert_eq!(g.admit(Some(&frame)), None); // run 2: tolerated
        assert_eq!(
            g.admit(Some(&frame)),
            Some(FrameFault::StuckFrame { run: 3 })
        );
        assert_eq!(
            g.admit(Some(&frame)),
            Some(FrameFault::StuckFrame { run: 4 })
        );
        // A fresh frame clears the run.
        assert_eq!(g.admit(Some(&textured(4.0))), None);
        assert_eq!(g.admit(Some(&frame)), None);
    }

    #[test]
    fn drops_do_not_break_a_stuck_run() {
        let mut g = gate();
        let frame = textured(5.0);
        assert_eq!(g.admit(Some(&frame)), None);
        assert_eq!(g.admit(Some(&frame)), None);
        assert_eq!(g.admit(None), Some(FrameFault::MissingFrame));
        assert!(matches!(
            g.admit(Some(&frame)),
            Some(FrameFault::StuckFrame { .. })
        ));
    }

    #[test]
    fn reset_clears_stuck_history() {
        let mut g = gate();
        let frame = textured(6.0);
        assert_eq!(g.admit(Some(&frame)), None);
        assert_eq!(g.admit(Some(&frame)), None);
        g.reset();
        assert_eq!(g.admit(Some(&frame)), None);
    }

    #[test]
    fn stuck_detection_can_be_disabled() {
        let mut config = GateConfig::new(6, 8);
        config.stuck_after = 0;
        let mut g = FrameGate::new(config).unwrap();
        let frame = textured(7.0);
        for _ in 0..10 {
            assert_eq!(g.admit(Some(&frame)), None);
        }
    }

    #[test]
    fn classes_are_stable_and_exhaustive() {
        let faults = [
            FrameFault::MissingFrame,
            FrameFault::WrongDimensions {
                expected: (1, 1),
                got: (2, 2),
            },
            FrameFault::NonFinitePixels { count: 1 },
            FrameFault::OutOfRangePixels {
                min: -2.0,
                max: 3.0,
            },
            FrameFault::AllBlack,
            FrameFault::Saturated,
            FrameFault::StuckFrame { run: 3 },
        ];
        let classes: Vec<_> = faults.iter().map(|f| f.class()).collect();
        assert_eq!(classes, FrameFault::all_classes());
        for fault in &faults {
            assert!(!fault.to_string().is_empty());
        }
    }

    fn rendered_frame(seed: u64) -> Image {
        simdrive::DatasetConfig::outdoor()
            .with_len(1)
            .with_size(24, 64)
            .with_supersample(1)
            .generate(seed)
            .frames()[0]
            .image
            .clone()
    }

    fn scene_gate() -> FrameGate {
        FrameGate::new(GateConfig::new(24, 64)).unwrap()
    }

    #[test]
    fn scene_modifiers_at_full_intensity_pass_the_gate() {
        // The gate exists to catch sensor faults, not weather: even the
        // heaviest fog/night/glare/rain must be admitted while the
        // degenerate frames they superficially resemble are rejected.
        let base = rendered_frame(31);
        for spec in [
            "fog@1.0",
            "night@1.0",
            "glare@1.0",
            "rain@1.0",
            "tunnel@1.0",
        ] {
            let stack = simdrive::ModifierStack::parse(spec).unwrap();
            let mut g = scene_gate();
            for frame_index in 0..3u64 {
                let modified = stack.apply(9, frame_index, &base);
                assert_eq!(
                    g.admit(Some(&modified)),
                    None,
                    "{spec} frame {frame_index} must be admitted"
                );
            }
        }
    }

    #[test]
    fn fog_is_distinguished_from_all_black() {
        // Full fog pulls every pixel toward a mid luminance; the
        // all-black detector keys on the frame *mean*, which fog raises.
        let foggy =
            simdrive::ModifierStack::parse("fog@1.0")
                .unwrap()
                .apply(9, 0, &rendered_frame(32));
        assert_eq!(scene_gate().admit(Some(&foggy)), None);
        let dead_sensor = Image::filled(24, 64, 0.001).unwrap();
        assert_eq!(
            scene_gate().admit(Some(&dead_sensor)),
            Some(FrameFault::AllBlack)
        );
    }

    #[test]
    fn glare_is_distinguished_from_saturated_fault() {
        // Glare is a localized bloom: the frame mean stays far below the
        // saturated threshold even at intensity 1.
        let glared =
            simdrive::ModifierStack::parse("glare@1.0")
                .unwrap()
                .apply(9, 0, &rendered_frame(33));
        assert_eq!(scene_gate().admit(Some(&glared)), None);
        let stuck_high = Image::filled(24, 64, 0.999).unwrap();
        assert_eq!(
            scene_gate().admit(Some(&stuck_high)),
            Some(FrameFault::Saturated)
        );
    }

    #[test]
    fn faults_on_modified_frames_are_still_caught() {
        // A real sensor fault on top of bad weather must not hide behind
        // the weather: inject the brightness-spike and NaN faults into a
        // fog+night frame and check the gate still fires.
        let stack = simdrive::ModifierStack::parse("fog@0.8+night@0.7").unwrap();
        let weathered = stack.apply(9, 0, &rendered_frame(34));
        assert_eq!(scene_gate().admit(Some(&weathered)), None);

        let spiked = weathered.map(|v| v * 4.0 + 0.5);
        assert!(matches!(
            scene_gate().admit(Some(&spiked)),
            Some(FrameFault::OutOfRangePixels { .. })
        ));

        let mut burst = weathered.clone();
        burst.put(3, 3, f32::NAN);
        assert!(matches!(
            scene_gate().admit(Some(&burst)),
            Some(FrameFault::NonFinitePixels { .. })
        ));
    }
}
