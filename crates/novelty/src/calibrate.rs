//! Threshold calibration on training-score distributions.
//!
//! Richter & Roy (paper reference 9) flag an input as novel when its
//! reconstruction error falls outside the 99th percentile of the training
//! losses' empirical CDF. The paper reuses the same rule for SSIM, where
//! *low* similarity is suspicious. [`Calibrator`] captures the percentile,
//! [`Direction`] the orientation, and [`Threshold`] the calibrated
//! decision rule.

use metrics::ecdf::Ecdf;
use metrics::separation::ScoreOrientation;
use serde::{Deserialize, Serialize};

use crate::{NoveltyError, Result};

/// Which side of the training distribution counts as novel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Larger score = more anomalous (reconstruction MSE).
    HigherIsNovel,
    /// Larger score = more normal (SSIM similarity).
    LowerIsNovel,
}

impl Direction {
    /// Converts to the orientation type used by `metrics::separation`.
    pub fn orientation(self) -> ScoreOrientation {
        match self {
            Direction::HigherIsNovel => ScoreOrientation::HigherIsNovel,
            Direction::LowerIsNovel => ScoreOrientation::LowerIsNovel,
        }
    }
}

impl From<Direction> for ScoreOrientation {
    fn from(d: Direction) -> Self {
        d.orientation()
    }
}

/// A calibrated decision rule: score + direction → novel or not.
///
/// # Example
///
/// ```
/// use novelty::{Calibrator, Direction};
///
/// # fn main() -> Result<(), novelty::NoveltyError> {
/// // SSIM-like scores of in-distribution training images.
/// let train_scores: Vec<f32> = (1..=100).map(|i| 0.5 + i as f32 * 0.004).collect();
/// let threshold = Calibrator::new(99.0)?.calibrate(&train_scores, Direction::LowerIsNovel)?;
/// assert!(threshold.is_novel(0.1));   // far below training SSIM → novel
/// assert!(!threshold.is_novel(0.7));  // typical training SSIM → in-distribution
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Threshold {
    value: f32,
    direction: Direction,
}

impl Threshold {
    /// Builds a threshold directly (used by deserialization; prefer
    /// [`Calibrator::calibrate`]).
    ///
    /// # Errors
    ///
    /// Fails when `value` is not finite.
    pub fn new(value: f32, direction: Direction) -> Result<Self> {
        if !value.is_finite() {
            return Err(NoveltyError::invalid(
                "Threshold::new",
                format!("threshold must be finite, got {value}"),
            ));
        }
        Ok(Threshold { value, direction })
    }

    /// The cut-off score.
    pub fn value(&self) -> f32 {
        self.value
    }

    /// The calibrated direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Classifies a score (strict comparison: the threshold itself is not
    /// novel).
    pub fn is_novel(&self, score: f32) -> bool {
        match self.direction {
            Direction::HigherIsNovel => score > self.value,
            Direction::LowerIsNovel => score < self.value,
        }
    }
}

/// Calibrates thresholds at a fixed percentile of training scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibrator {
    percentile: f32,
}

impl Calibrator {
    /// A calibrator keeping `percentile`% of the training distribution
    /// in-class (the paper uses 99.0).
    ///
    /// # Errors
    ///
    /// Fails when `percentile` is outside `(0, 100]`.
    pub fn new(percentile: f32) -> Result<Self> {
        if !percentile.is_finite() || percentile <= 0.0 || percentile > 100.0 {
            return Err(NoveltyError::invalid(
                "Calibrator::new",
                format!("percentile must be in (0, 100], got {percentile}"),
            ));
        }
        Ok(Calibrator { percentile })
    }

    /// The paper's 99th-percentile calibrator.
    pub fn paper() -> Self {
        Calibrator { percentile: 99.0 }
    }

    /// The configured percentile.
    pub fn percentile(&self) -> f32 {
        self.percentile
    }

    /// Calibrates a threshold from in-distribution training scores.
    ///
    /// # Errors
    ///
    /// Fails when `scores` is empty or contains non-finite values.
    pub fn calibrate(&self, scores: &[f32], direction: Direction) -> Result<Threshold> {
        let ecdf = Ecdf::new(scores.to_vec())?;
        let value = match direction {
            Direction::HigherIsNovel => ecdf.upper_threshold(self.percentile)?,
            Direction::LowerIsNovel => ecdf.lower_threshold(self.percentile)?,
        };
        Threshold::new(value, direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores_1_to_100() -> Vec<f32> {
        (1..=100).map(|i| i as f32).collect()
    }

    #[test]
    fn calibrator_validates_percentile() {
        assert!(Calibrator::new(0.0).is_err());
        assert!(Calibrator::new(-5.0).is_err());
        assert!(Calibrator::new(100.5).is_err());
        assert!(Calibrator::new(f32::NAN).is_err());
        assert_eq!(Calibrator::paper().percentile(), 99.0);
    }

    #[test]
    fn higher_is_novel_uses_upper_percentile() {
        let t = Calibrator::paper()
            .calibrate(&scores_1_to_100(), Direction::HigherIsNovel)
            .unwrap();
        assert_eq!(t.value(), 99.0);
        assert!(t.is_novel(99.5));
        assert!(!t.is_novel(99.0)); // strict
        assert!(!t.is_novel(50.0));
    }

    #[test]
    fn lower_is_novel_uses_lower_percentile() {
        let t = Calibrator::paper()
            .calibrate(&scores_1_to_100(), Direction::LowerIsNovel)
            .unwrap();
        assert_eq!(t.value(), 1.0);
        assert!(t.is_novel(0.5));
        assert!(!t.is_novel(1.0));
        assert!(!t.is_novel(50.0));
    }

    #[test]
    fn about_one_percent_of_training_scores_flagged() {
        // The defining property of the 99th-percentile rule.
        let scores = scores_1_to_100();
        let t = Calibrator::paper()
            .calibrate(&scores, Direction::HigherIsNovel)
            .unwrap();
        let flagged = scores.iter().filter(|&&s| t.is_novel(s)).count();
        assert_eq!(flagged, 1);
    }

    #[test]
    fn calibrate_rejects_bad_scores() {
        let c = Calibrator::paper();
        assert!(c.calibrate(&[], Direction::HigherIsNovel).is_err());
        assert!(c
            .calibrate(&[1.0, f32::NAN], Direction::HigherIsNovel)
            .is_err());
    }

    #[test]
    fn threshold_construction_validates() {
        assert!(Threshold::new(f32::INFINITY, Direction::HigherIsNovel).is_err());
        let t = Threshold::new(0.5, Direction::LowerIsNovel).unwrap();
        assert_eq!(t.direction(), Direction::LowerIsNovel);
    }

    #[test]
    fn direction_converts_to_orientation() {
        assert_eq!(
            Direction::HigherIsNovel.orientation(),
            ScoreOrientation::HigherIsNovel
        );
        let o: ScoreOrientation = Direction::LowerIsNovel.into();
        assert_eq!(o, ScoreOrientation::LowerIsNovel);
    }

    #[test]
    fn threshold_serde_roundtrip() {
        let t = Threshold::new(0.42, Direction::LowerIsNovel).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Threshold = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
