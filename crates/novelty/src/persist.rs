//! Saving and loading trained detectors.
//!
//! A deployed system trains the pipeline offline and ships the frozen
//! detector; these helpers serialize the whole bundle (steering CNN,
//! autoencoder, threshold, configuration) as one JSON document.

use std::path::Path;

use neural::serialize::{from_spec, to_spec, NetworkSpec};
use serde::{Deserialize, Serialize};

use crate::{
    AutoencoderClassifier, NoveltyDetector, NoveltyError, Preprocessing, ReconstructionObjective,
    Result, Threshold,
};

/// Serialized form of a trained [`NoveltyDetector`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorSpec {
    /// The steering CNN, present for VBP pipelines.
    pub steering: Option<NetworkSpec>,
    /// The autoencoder network.
    pub autoencoder: NetworkSpec,
    /// Classifier input height.
    pub height: usize,
    /// Classifier input width.
    pub width: usize,
    /// Scoring objective.
    pub objective: ReconstructionObjective,
    /// Preprocessing layer.
    pub preprocessing: Preprocessing,
    /// Calibrated threshold.
    pub threshold: Threshold,
    /// Training-score distribution used for calibration.
    pub training_scores: Vec<f32>,
}

/// Extracts a serializable spec from a detector.
///
/// # Errors
///
/// Propagates network spec-extraction errors.
pub fn detector_to_spec(detector: &NoveltyDetector) -> Result<DetectorSpec> {
    Ok(DetectorSpec {
        steering: detector.steering_network().map(to_spec).transpose()?,
        autoencoder: to_spec(detector.classifier().network())?,
        height: detector.classifier().height(),
        width: detector.classifier().width(),
        objective: detector.classifier().objective().clone(),
        preprocessing: detector.preprocessing(),
        threshold: detector.threshold(),
        training_scores: detector.training_scores().to_vec(),
    })
}

/// Reconstructs a detector from its spec.
///
/// # Errors
///
/// Fails when any stored network or invariant is invalid.
pub fn detector_from_spec(spec: DetectorSpec) -> Result<NoveltyDetector> {
    let steering = spec.steering.map(from_spec).transpose()?;
    let classifier = AutoencoderClassifier::from_parts(
        from_spec(spec.autoencoder)?,
        spec.height,
        spec.width,
        spec.objective,
    )?;
    NoveltyDetector::from_parts(
        steering,
        classifier,
        spec.threshold,
        spec.preprocessing,
        spec.training_scores,
    )
}

/// Saves a detector to a JSON file.
///
/// # Errors
///
/// Propagates serialization and I/O errors.
pub fn save_detector(detector: &NoveltyDetector, path: impl AsRef<Path>) -> Result<()> {
    let spec = detector_to_spec(detector)?;
    let json = serde_json::to_string(&spec).map_err(|e| NoveltyError::Serde(e.to_string()))?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Loads a detector from a JSON file.
///
/// # Errors
///
/// Propagates I/O and deserialization errors.
pub fn load_detector(path: impl AsRef<Path>) -> Result<NoveltyDetector> {
    let json = std::fs::read_to_string(path)?;
    let spec: DetectorSpec =
        serde_json::from_str(&json).map_err(|e| NoveltyError::Serde(e.to_string()))?;
    detector_from_spec(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierConfig, NoveltyDetectorBuilder};
    use simdrive::DatasetConfig;

    fn trained() -> (NoveltyDetector, simdrive::DrivingDataset) {
        let data = DatasetConfig::indoor()
            .with_len(16)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(21);
        let detector = NoveltyDetectorBuilder::paper()
            .classifier_config(ClassifierConfig {
                hidden: vec![12, 6, 12],
                epochs: 4,
                warmup_epochs: 1,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Ssim { window: 7 },
            })
            .cnn_epochs(1)
            .seed(5)
            .train(&data)
            .unwrap();
        (detector, data)
    }

    #[test]
    fn detector_roundtrips_through_spec() {
        let (detector, data) = trained();
        let img = &data.frames()[0].image;
        let before = detector.score(img).unwrap();
        let spec = detector_to_spec(&detector).unwrap();
        let back = detector_from_spec(spec).unwrap();
        let after = back.score(img).unwrap();
        assert_eq!(before, after);
        assert_eq!(back.threshold(), detector.threshold());
        assert_eq!(back.preprocessing(), detector.preprocessing());
        assert_eq!(back.training_scores(), detector.training_scores());
    }

    #[test]
    fn file_roundtrip_preserves_verdicts() {
        let (detector, data) = trained();
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("detector.json");
        save_detector(&detector, &path).unwrap();
        let back = load_detector(&path).unwrap();
        for frame in data.frames().iter().take(3) {
            let a = detector.classify(&frame.image).unwrap();
            let b = back.classify(&frame.image).unwrap();
            assert_eq!(a.is_novel, b.is_novel);
            assert_eq!(a.score, b.score);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_files_are_rejected() {
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(load_detector(&path).is_err());
        assert!(load_detector(dir.join("missing.json")).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
