//! Saving and loading trained detectors.
//!
//! A deployed system trains the pipeline offline and ships the frozen
//! detector; [`NoveltyDetector::save`] / [`NoveltyDetector::load`]
//! serialize the whole bundle (backend networks, calibrated profile,
//! threshold, configuration) as one JSON document keyed by the backend
//! registry id. [`DetectorSpec`] carries a schema-version field so a
//! deployment loading a file written by an incompatible build fails with
//! a clear message instead of a cryptic field error; version-2 files
//! (written before the backend registry existed) still load through an
//! explicit migration that maps the old `preprocessing` + `objective`
//! pair onto a backend id. [`EnsembleDetector`] bundles its members the
//! same way, and [`load_any`] opens either kind of file. The original
//! free functions [`save_detector`] / [`load_detector`] remain as thin
//! wrappers.

use std::path::Path;

use neural::serialize::{from_spec, to_spec, NetworkSpec};
use serde::{Deserialize, Serialize};

use crate::backend::{BackendKind, Detector};
use crate::modelchar::{ModelCharBackend, StatProfile};
use crate::{
    AutoencoderClassifier, EnsembleDetector, NoveltyDetector, NoveltyError, Preprocessing,
    ReconstructionObjective, Result, Threshold,
};

/// Version of the detector JSON layout this build reads and writes.
///
/// History: 1 = unversioned pre-observability files (no
/// `schema_version` field); 2 = versioned, fixed `preprocessing` +
/// `objective` pipeline triple; 3 = current (backend registry id, with
/// per-backend payloads — autoencoder networks or a statistics
/// profile). Version-2 files load via [`NoveltyDetector::load`]'s
/// migration path; version-1 files are rejected with guidance.
pub const DETECTOR_SCHEMA_VERSION: u32 = 3;

/// Version of the ensemble JSON layout this build reads and writes.
pub const ENSEMBLE_SCHEMA_VERSION: u32 = 1;

/// Serialized form of a trained [`NoveltyDetector`].
///
/// `schema_version` and `backend` stay the first two fields: a
/// version-1 file fails with `missing field schema_version` and a
/// version-2 file with `missing field backend`, which is how
/// [`NoveltyDetector::load`] routes each vintage to the right handler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorSpec {
    /// [`DETECTOR_SCHEMA_VERSION`] at the time the spec was written.
    pub schema_version: u32,
    /// The registry id of the backend ([`BackendKind::id`]).
    pub backend: String,
    /// The steering CNN, for backends that carry one.
    pub steering: Option<NetworkSpec>,
    /// The autoencoder network, for reconstruction backends.
    pub autoencoder: Option<NetworkSpec>,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Scoring objective, for reconstruction backends.
    pub objective: Option<ReconstructionObjective>,
    /// Calibrated per-layer statistics, for the model-characterization
    /// backend.
    pub profile: Option<StatProfile>,
    /// Calibrated threshold.
    pub threshold: Threshold,
    /// Training-score distribution used for calibration.
    pub training_scores: Vec<f32>,
}

/// The version-2 layout, kept verbatim so old files migrate instead of
/// erroring. Serialized only by tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DetectorSpecV2 {
    schema_version: u32,
    steering: Option<NetworkSpec>,
    autoencoder: NetworkSpec,
    height: usize,
    width: usize,
    objective: ReconstructionObjective,
    preprocessing: Preprocessing,
    threshold: Threshold,
    training_scores: Vec<f32>,
}

impl DetectorSpecV2 {
    /// Maps the old fixed pipeline triple onto its registry id and lifts
    /// the spec to the current layout.
    fn migrate(self) -> DetectorSpec {
        let backend = match (self.preprocessing, &self.objective) {
            (Preprocessing::Raw, _) => BackendKind::RawMse,
            (Preprocessing::Vbp, ReconstructionObjective::Mse) => BackendKind::VbpMse,
            (Preprocessing::Vbp, ReconstructionObjective::Ssim { .. }) => BackendKind::VbpSsim,
        };
        DetectorSpec {
            schema_version: DETECTOR_SCHEMA_VERSION,
            backend: backend.id().to_string(),
            steering: self.steering,
            autoencoder: Some(self.autoencoder),
            height: self.height,
            width: self.width,
            objective: Some(self.objective),
            profile: None,
            threshold: self.threshold,
            training_scores: self.training_scores,
        }
    }
}

/// Serialized form of a trained [`EnsembleDetector`]: the fusion quorum
/// plus one full [`DetectorSpec`] per member.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleSpec {
    /// [`ENSEMBLE_SCHEMA_VERSION`] at the time the spec was written.
    pub schema_version: u32,
    /// Member votes required to flag a frame novel.
    pub quorum: u32,
    /// The member detectors, in backend-id order.
    pub members: Vec<DetectorSpec>,
}

/// Either kind of detector file, as loaded by [`load_any`].
#[derive(Debug)]
pub enum LoadedDetector {
    /// A single calibrated backend.
    Single(NoveltyDetector),
    /// A fused ensemble.
    Ensemble(EnsembleDetector),
}

impl LoadedDetector {
    /// The common [`Detector`] face of whichever variant was loaded.
    pub fn as_detector(&self) -> &dyn Detector {
        match self {
            LoadedDetector::Single(d) => d,
            LoadedDetector::Ensemble(e) => e,
        }
    }

    /// The single detector, when the file held one.
    pub fn as_single(&self) -> Option<&NoveltyDetector> {
        match self {
            LoadedDetector::Single(d) => Some(d),
            LoadedDetector::Ensemble(_) => None,
        }
    }

    /// The ensemble, when the file held one.
    pub fn as_ensemble(&self) -> Option<&EnsembleDetector> {
        match self {
            LoadedDetector::Single(_) => None,
            LoadedDetector::Ensemble(e) => Some(e),
        }
    }
}

/// Extracts a serializable spec from a detector.
///
/// # Errors
///
/// Propagates network spec-extraction errors.
pub fn detector_to_spec(detector: &NoveltyDetector) -> Result<DetectorSpec> {
    let backend = detector.backend();
    let (height, width) = backend.input_size();
    Ok(DetectorSpec {
        schema_version: DETECTOR_SCHEMA_VERSION,
        backend: detector.kind().id().to_string(),
        steering: backend.steering_network().map(to_spec).transpose()?,
        autoencoder: backend
            .classifier()
            .map(|c| to_spec(c.network()))
            .transpose()?,
        height,
        width,
        objective: backend.classifier().map(|c| c.objective().clone()),
        profile: backend.stat_profile().cloned(),
        threshold: detector.threshold(),
        training_scores: detector.training_scores().to_vec(),
    })
}

/// Reconstructs a detector from its spec, verifying the schema version
/// and the backend id against the registry.
///
/// # Errors
///
/// Fails on a schema-version mismatch, an unknown backend id, a payload
/// inconsistent with the named backend, or when any stored network or
/// invariant is invalid.
pub fn detector_from_spec(spec: DetectorSpec) -> Result<NoveltyDetector> {
    if spec.schema_version != DETECTOR_SCHEMA_VERSION {
        return Err(NoveltyError::invalid(
            "load_detector",
            format!(
                "detector file has schema version {}, but this build reads version {} — \
                 retrain the detector or load it with a matching build",
                spec.schema_version, DETECTOR_SCHEMA_VERSION
            ),
        ));
    }
    let kind = BackendKind::from_id(&spec.backend).ok_or_else(|| {
        let known: Vec<&str> = BackendKind::all().iter().map(|k| k.id()).collect();
        NoveltyError::invalid(
            "load_detector",
            format!(
                "unknown backend `{}` (this build registers: {})",
                spec.backend,
                known.join(", ")
            ),
        )
    })?;
    let detector = match kind {
        BackendKind::ModelChar => {
            let steering = spec.steering.ok_or_else(|| {
                NoveltyError::invalid(
                    "load_detector",
                    "model-char detector file carries no steering network",
                )
            })?;
            let profile = spec.profile.ok_or_else(|| {
                NoveltyError::invalid(
                    "load_detector",
                    "model-char detector file carries no statistics profile",
                )
            })?;
            let backend = ModelCharBackend::from_parts(
                from_spec(steering)?,
                spec.height,
                spec.width,
                profile,
            )?;
            NoveltyDetector::from_backend(Box::new(backend), spec.threshold, spec.training_scores)?
        }
        BackendKind::RawMse | BackendKind::VbpMse | BackendKind::VbpSsim => {
            let autoencoder = spec.autoencoder.ok_or_else(|| {
                NoveltyError::invalid(
                    "load_detector",
                    format!("{} detector file carries no autoencoder", spec.backend),
                )
            })?;
            let objective = spec.objective.ok_or_else(|| {
                NoveltyError::invalid(
                    "load_detector",
                    format!("{} detector file carries no objective", spec.backend),
                )
            })?;
            let steering = spec.steering.map(from_spec).transpose()?;
            let classifier = AutoencoderClassifier::from_parts(
                from_spec(autoencoder)?,
                spec.height,
                spec.width,
                objective,
            )?;
            let preprocessing = kind.preprocessing().ok_or_else(|| {
                NoveltyError::invalid("load_detector", "backend has no preprocessing layer")
            })?;
            NoveltyDetector::from_parts(
                steering,
                classifier,
                spec.threshold,
                preprocessing,
                spec.training_scores,
            )?
        }
    };
    if detector.kind() != kind {
        return Err(NoveltyError::invalid(
            "load_detector",
            format!(
                "detector file names the {} backend but its payload reassembles to {}",
                kind.id(),
                detector.kind().id()
            ),
        ));
    }
    Ok(detector)
}

/// Writes `json` to `path` atomically: the bytes land in a sibling
/// temporary file which is then renamed over `path`, so a crash
/// mid-save leaves either the previous file or the new one — never a
/// truncated document.
pub(crate) fn write_atomic(path: &Path, json: &str) -> Result<()> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, json)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

impl NoveltyDetector {
    /// Saves the detector to a JSON file (atomically; see the module
    /// docs).
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let spec = detector_to_spec(self)?;
        let json = serde_json::to_string(&spec).map_err(|e| NoveltyError::Serde(e.to_string()))?;
        write_atomic(path.as_ref(), &json)
    }

    /// Loads a detector from a JSON file written by
    /// [`NoveltyDetector::save`].
    ///
    /// Version-2 files (fixed pipeline triple, no backend registry)
    /// load through an explicit migration; files written before the
    /// spec was versioned are rejected with guidance.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors; unknown backends and
    /// incompatible versions are rejected with a message naming what
    /// this build supports.
    pub fn load(path: impl AsRef<Path>) -> Result<NoveltyDetector> {
        let json = std::fs::read_to_string(path)?;
        let spec = match serde_json::from_str::<DetectorSpec>(&json) {
            Ok(spec) => spec,
            Err(e) => {
                let msg = e.to_string();
                if msg.contains("missing field `schema_version`") {
                    return Err(NoveltyError::invalid(
                        "load_detector",
                        format!(
                            "detector file predates schema versioning (version 1), but this \
                             build reads version {DETECTOR_SCHEMA_VERSION} — retrain the detector"
                        ),
                    ));
                }
                if msg.contains("missing field `backend`") {
                    // A versioned file without a backend id is the v2
                    // layout; migrate it if its version checks out.
                    let old: DetectorSpecV2 = serde_json::from_str(&json)
                        .map_err(|e2| NoveltyError::Serde(e2.to_string()))?;
                    if old.schema_version != 2 {
                        return Err(NoveltyError::invalid(
                            "load_detector",
                            format!(
                                "detector file has schema version {}, but this build reads \
                                 version {} (and migrates version 2) — retrain the detector",
                                old.schema_version, DETECTOR_SCHEMA_VERSION
                            ),
                        ));
                    }
                    old.migrate()
                } else {
                    return Err(NoveltyError::Serde(msg));
                }
            }
        };
        detector_from_spec(spec)
    }
}

impl EnsembleDetector {
    /// Saves the ensemble — quorum plus every member — to one JSON file
    /// (atomically; see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let members = self
            .members()
            .iter()
            .map(detector_to_spec)
            .collect::<Result<Vec<DetectorSpec>>>()?;
        let spec = EnsembleSpec {
            schema_version: ENSEMBLE_SCHEMA_VERSION,
            quorum: self.quorum(),
            members,
        };
        let json = serde_json::to_string(&spec).map_err(|e| NoveltyError::Serde(e.to_string()))?;
        write_atomic(path.as_ref(), &json)
    }

    /// Loads an ensemble from a JSON file written by
    /// [`EnsembleDetector::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors; version mismatches
    /// and invalid members are rejected with clear messages.
    pub fn load(path: impl AsRef<Path>) -> Result<EnsembleDetector> {
        let json = std::fs::read_to_string(path)?;
        let spec: EnsembleSpec =
            serde_json::from_str(&json).map_err(|e| NoveltyError::Serde(e.to_string()))?;
        ensemble_from_spec(spec)
    }
}

/// Reconstructs an ensemble from its spec, verifying the schema version
/// and every member.
///
/// # Errors
///
/// Fails on a schema-version mismatch or any invalid member.
pub fn ensemble_from_spec(spec: EnsembleSpec) -> Result<EnsembleDetector> {
    if spec.schema_version != ENSEMBLE_SCHEMA_VERSION {
        return Err(NoveltyError::invalid(
            "load_ensemble",
            format!(
                "ensemble file has schema version {}, but this build reads version {} — \
                 retrain the ensemble or load it with a matching build",
                spec.schema_version, ENSEMBLE_SCHEMA_VERSION
            ),
        ));
    }
    let members = spec
        .members
        .into_iter()
        .map(detector_from_spec)
        .collect::<Result<Vec<NoveltyDetector>>>()?;
    EnsembleDetector::with_quorum(members, spec.quorum)
}

/// Loads either kind of detector file: an [`EnsembleDetector`] bundle
/// or a single [`NoveltyDetector`] (any loadable version).
///
/// # Errors
///
/// Propagates I/O errors; when the file is neither a valid ensemble nor
/// a valid single detector, the single-detector error is returned (the
/// common case, with the migration guidance).
pub fn load_any(path: impl AsRef<Path>) -> Result<LoadedDetector> {
    let path = path.as_ref();
    let json = std::fs::read_to_string(path)?;
    // Single-detector files fail this parse immediately (no `quorum`
    // field), so a valid parse means the file really is an ensemble.
    if let Ok(spec) = serde_json::from_str::<EnsembleSpec>(&json) {
        return Ok(LoadedDetector::Ensemble(ensemble_from_spec(spec)?));
    }
    Ok(LoadedDetector::Single(NoveltyDetector::load(path)?))
}

/// Saves a detector to a JSON file (wrapper for
/// [`NoveltyDetector::save`], kept for existing callers).
///
/// # Errors
///
/// Propagates serialization and I/O errors.
pub fn save_detector(detector: &NoveltyDetector, path: impl AsRef<Path>) -> Result<()> {
    detector.save(path)
}

/// Loads a detector from a JSON file (wrapper for
/// [`NoveltyDetector::load`], kept for existing callers).
///
/// # Errors
///
/// Propagates I/O and deserialization errors.
pub fn load_detector(path: impl AsRef<Path>) -> Result<NoveltyDetector> {
    NoveltyDetector::load(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierConfig, NoveltyDetectorBuilder};
    use simdrive::DatasetConfig;

    fn trained() -> (NoveltyDetector, simdrive::DrivingDataset) {
        let data = DatasetConfig::indoor()
            .with_len(16)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(21);
        let detector = NoveltyDetectorBuilder::paper()
            .classifier_config(ClassifierConfig {
                hidden: vec![12, 6, 12],
                epochs: 4,
                warmup_epochs: 1,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Ssim { window: 7 },
            })
            .cnn_epochs(1)
            .seed(5)
            .train(&data)
            .unwrap();
        (detector, data)
    }

    #[test]
    fn detector_roundtrips_through_spec() {
        let (detector, data) = trained();
        let img = &data.frames()[0].image;
        let before = detector.score(img).unwrap();
        let spec = detector_to_spec(&detector).unwrap();
        assert_eq!(spec.schema_version, DETECTOR_SCHEMA_VERSION);
        assert_eq!(spec.backend, "vbp+ssim");
        let back = detector_from_spec(spec).unwrap();
        let after = back.score(img).unwrap();
        assert_eq!(before, after);
        assert_eq!(back.threshold(), detector.threshold());
        assert_eq!(back.preprocessing(), detector.preprocessing());
        assert_eq!(back.training_scores(), detector.training_scores());
        assert_eq!(back.kind(), detector.kind());
    }

    #[test]
    fn model_char_detector_roundtrips_through_file() {
        let data = DatasetConfig::indoor()
            .with_len(16)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(23);
        let detector = NoveltyDetectorBuilder::model_characterization()
            .cnn_epochs(1)
            .seed(6)
            .train(&data)
            .unwrap();
        let dir = std::env::temp_dir().join("saliency_novelty_persist_mc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model_char.json");
        detector.save(&path).unwrap();
        let back = NoveltyDetector::load(&path).unwrap();
        assert_eq!(back.kind(), BackendKind::ModelChar);
        for frame in data.frames().iter().take(3) {
            assert_eq!(
                detector.classify(&frame.image).unwrap(),
                back.classify(&frame.image).unwrap()
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_roundtrip_preserves_verdicts() {
        let (detector, data) = trained();
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("detector.json");
        detector.save(&path).unwrap();
        let back = NoveltyDetector::load(&path).unwrap();
        for frame in data.frames().iter().take(3) {
            let a = detector.classify(&frame.image).unwrap();
            let b = back.classify(&frame.image).unwrap();
            assert_eq!(a, b);
        }
        // The free-function wrappers read the same file.
        let back2 = load_detector(&path).unwrap();
        assert_eq!(back2.threshold(), detector.threshold());
        // `load_any` recognizes it as a single detector.
        let any = load_any(&path).unwrap();
        assert!(any.as_single().is_some());
        assert!(any.as_ensemble().is_none());
        assert_eq!(any.as_detector().input_size(), detector.input_size());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ensemble_file_roundtrips_and_load_any_routes_it() {
        let data = DatasetConfig::indoor()
            .with_len(16)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(29);
        let base = NoveltyDetectorBuilder::paper()
            .classifier_config(ClassifierConfig {
                hidden: vec![12, 6, 12],
                epochs: 3,
                warmup_epochs: 1,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Ssim { window: 7 },
            })
            .cnn_epochs(1)
            .seed(7);
        let kinds = [BackendKind::RawMse, BackendKind::VbpSsim];
        let ensemble = EnsembleDetector::train(&base, &kinds, &data).unwrap();
        let dir = std::env::temp_dir().join("saliency_novelty_persist_ens");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ensemble.json");
        ensemble.save(&path).unwrap();
        let back = EnsembleDetector::load(&path).unwrap();
        assert_eq!(back.quorum(), ensemble.quorum());
        assert_eq!(back.members().len(), 2);
        let img = &data.frames()[0].image;
        assert_eq!(
            Detector::classify(&ensemble, img).unwrap(),
            Detector::classify(&back, img).unwrap()
        );
        let any = load_any(&path).unwrap();
        assert!(any.as_ensemble().is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_files_migrate_to_the_backend_registry() {
        let (detector, data) = trained();
        let spec = detector_to_spec(&detector).unwrap();
        // Reconstruct the exact v2 layout from the current spec.
        let old = DetectorSpecV2 {
            schema_version: 2,
            steering: spec.steering.clone(),
            autoencoder: spec.autoencoder.clone().unwrap(),
            height: spec.height,
            width: spec.width,
            objective: spec.objective.clone().unwrap(),
            preprocessing: Preprocessing::Vbp,
            threshold: spec.threshold,
            training_scores: spec.training_scores.clone(),
        };
        let dir = std::env::temp_dir().join("saliency_novelty_persist_v2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v2.json");
        std::fs::write(&path, serde_json::to_string(&old).unwrap()).unwrap();
        let back = NoveltyDetector::load(&path).unwrap();
        assert_eq!(back.kind(), BackendKind::VbpSsim);
        let img = &data.frames()[0].image;
        assert_eq!(
            detector.score(img).unwrap().to_bits(),
            back.score(img).unwrap().to_bits()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_backends_are_rejected_with_the_registry() {
        let (detector, _) = trained();
        let mut spec = detector_to_spec(&detector).unwrap();
        spec.backend = "warp-core".to_string();
        let err = detector_from_spec(spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown backend `warp-core`"), "{msg}");
        assert!(msg.contains("vbp+ssim"), "{msg}");
        assert!(msg.contains("model-char"), "{msg}");
    }

    #[test]
    fn mismatched_backend_payload_is_rejected() {
        let (detector, _) = trained();
        let mut spec = detector_to_spec(&detector).unwrap();
        // The payload reassembles to vbp+ssim, not the named vbp+mse.
        spec.backend = "vbp+mse".to_string();
        let err = detector_from_spec(spec).unwrap_err();
        assert!(err.to_string().contains("reassembles"), "{err}");
    }

    #[test]
    fn schema_version_mismatch_is_a_clear_error() {
        let (detector, _) = trained();
        let mut spec = detector_to_spec(&detector).unwrap();
        spec.schema_version = DETECTOR_SCHEMA_VERSION + 7;
        let err = detector_from_spec(spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("schema version"), "{msg}");
        assert!(msg.contains(&DETECTOR_SCHEMA_VERSION.to_string()), "{msg}");
    }

    #[test]
    fn pre_versioning_files_are_rejected_with_guidance() {
        let (detector, _) = trained();
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old.json");
        // Simulate a v1 file: serialize, then strip the version field.
        let spec = detector_to_spec(&detector).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let needle = format!("\"schema_version\":{DETECTOR_SCHEMA_VERSION},");
        let old_json = json.replacen(&needle, "", 1);
        assert_ne!(json, old_json, "expected to strip the version field");
        std::fs::write(&path, old_json).unwrap();
        let err = NoveltyDetector::load(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("predates schema versioning"), "{msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_fails_load_and_atomic_save_leaves_no_temp() {
        let (detector, data) = trained();
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("detector.json");
        detector.save(&path).unwrap();
        // The temp file used for the atomic write must be gone.
        assert!(!dir.join("detector.json.tmp").exists());

        // Simulate a crash mid-write under the old non-atomic scheme:
        // the target file holds only a prefix of the JSON.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = NoveltyDetector::load(&path).unwrap_err();
        assert!(matches!(err, NoveltyError::Serde(_)), "{err}");
        assert!(load_any(&path).is_err());

        // Saving again over the corrupt file restores a loadable one.
        detector.save(&path).unwrap();
        let back = NoveltyDetector::load(&path).unwrap();
        let img = &data.frames()[0].image;
        assert_eq!(detector.classify(img).unwrap(), back.classify(img).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_files_are_rejected() {
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(NoveltyDetector::load(&path).is_err());
        assert!(NoveltyDetector::load(dir.join("missing.json")).is_err());
        assert!(load_any(dir.join("missing.json")).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
