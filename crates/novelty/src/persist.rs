//! Saving and loading trained detectors.
//!
//! A deployed system trains the pipeline offline and ships the frozen
//! detector; [`NoveltyDetector::save`] / [`NoveltyDetector::load`]
//! serialize the whole bundle (steering CNN, autoencoder, threshold,
//! configuration) as one JSON document. [`DetectorSpec`] carries a
//! schema-version field so a deployment loading a file written by an
//! incompatible build fails with a clear message instead of a cryptic
//! field error. The original free functions [`save_detector`] /
//! [`load_detector`] remain as thin wrappers.

use std::path::Path;

use neural::serialize::{from_spec, to_spec, NetworkSpec};
use serde::{Deserialize, Serialize};

use crate::{
    AutoencoderClassifier, NoveltyDetector, NoveltyError, Preprocessing, ReconstructionObjective,
    Result, Threshold,
};

/// Version of the detector JSON layout this build reads and writes.
///
/// History: 1 = unversioned pre-observability files (no
/// `schema_version` field); 2 = current (field added).
pub const DETECTOR_SCHEMA_VERSION: u32 = 2;

/// Serialized form of a trained [`NoveltyDetector`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorSpec {
    /// [`DETECTOR_SCHEMA_VERSION`] at the time the spec was written.
    pub schema_version: u32,
    /// The steering CNN, present for VBP pipelines.
    pub steering: Option<NetworkSpec>,
    /// The autoencoder network.
    pub autoencoder: NetworkSpec,
    /// Classifier input height.
    pub height: usize,
    /// Classifier input width.
    pub width: usize,
    /// Scoring objective.
    pub objective: ReconstructionObjective,
    /// Preprocessing layer.
    pub preprocessing: Preprocessing,
    /// Calibrated threshold.
    pub threshold: Threshold,
    /// Training-score distribution used for calibration.
    pub training_scores: Vec<f32>,
}

/// Extracts a serializable spec from a detector.
///
/// # Errors
///
/// Propagates network spec-extraction errors.
pub fn detector_to_spec(detector: &NoveltyDetector) -> Result<DetectorSpec> {
    Ok(DetectorSpec {
        schema_version: DETECTOR_SCHEMA_VERSION,
        steering: detector.steering_network().map(to_spec).transpose()?,
        autoencoder: to_spec(detector.classifier().network())?,
        height: detector.classifier().height(),
        width: detector.classifier().width(),
        objective: detector.classifier().objective().clone(),
        preprocessing: detector.preprocessing(),
        threshold: detector.threshold(),
        training_scores: detector.training_scores().to_vec(),
    })
}

/// Reconstructs a detector from its spec, verifying the schema version.
///
/// # Errors
///
/// Fails on a schema-version mismatch or when any stored network or
/// invariant is invalid.
pub fn detector_from_spec(spec: DetectorSpec) -> Result<NoveltyDetector> {
    if spec.schema_version != DETECTOR_SCHEMA_VERSION {
        return Err(NoveltyError::invalid(
            "load_detector",
            format!(
                "detector file has schema version {}, but this build reads version {} — \
                 retrain the detector or load it with a matching build",
                spec.schema_version, DETECTOR_SCHEMA_VERSION
            ),
        ));
    }
    let steering = spec.steering.map(from_spec).transpose()?;
    let classifier = AutoencoderClassifier::from_parts(
        from_spec(spec.autoencoder)?,
        spec.height,
        spec.width,
        spec.objective,
    )?;
    NoveltyDetector::from_parts(
        steering,
        classifier,
        spec.threshold,
        spec.preprocessing,
        spec.training_scores,
    )
}

impl NoveltyDetector {
    /// Saves the detector to a JSON file.
    ///
    /// The write is atomic: the JSON lands in a sibling temporary file
    /// which is then renamed over `path`, so a crash mid-save leaves
    /// either the previous detector or the new one — never a truncated
    /// file that [`NoveltyDetector::load`] would reject at the next
    /// startup.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let spec = detector_to_spec(self)?;
        let json = serde_json::to_string(&spec).map_err(|e| NoveltyError::Serde(e.to_string()))?;
        // The temp file must live on the same filesystem as the target
        // for the rename to be atomic, so build it next to `path`.
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, json)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Loads a detector from a JSON file written by
    /// [`NoveltyDetector::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors; files written before
    /// the spec was versioned (or by an incompatible build) are rejected
    /// with a message naming both versions.
    pub fn load(path: impl AsRef<Path>) -> Result<NoveltyDetector> {
        let json = std::fs::read_to_string(path)?;
        let spec: DetectorSpec = serde_json::from_str(&json).map_err(|e| {
            let msg = e.to_string();
            if msg.contains("missing field `schema_version`") {
                NoveltyError::invalid(
                    "load_detector",
                    format!(
                        "detector file predates schema versioning (version 1), but this \
                         build reads version {DETECTOR_SCHEMA_VERSION} — retrain the detector"
                    ),
                )
            } else {
                NoveltyError::Serde(msg)
            }
        })?;
        detector_from_spec(spec)
    }
}

/// Saves a detector to a JSON file (wrapper for
/// [`NoveltyDetector::save`], kept for existing callers).
///
/// # Errors
///
/// Propagates serialization and I/O errors.
pub fn save_detector(detector: &NoveltyDetector, path: impl AsRef<Path>) -> Result<()> {
    detector.save(path)
}

/// Loads a detector from a JSON file (wrapper for
/// [`NoveltyDetector::load`], kept for existing callers).
///
/// # Errors
///
/// Propagates I/O and deserialization errors.
pub fn load_detector(path: impl AsRef<Path>) -> Result<NoveltyDetector> {
    NoveltyDetector::load(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierConfig, NoveltyDetectorBuilder};
    use simdrive::DatasetConfig;

    fn trained() -> (NoveltyDetector, simdrive::DrivingDataset) {
        let data = DatasetConfig::indoor()
            .with_len(16)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(21);
        let detector = NoveltyDetectorBuilder::paper()
            .classifier_config(ClassifierConfig {
                hidden: vec![12, 6, 12],
                epochs: 4,
                warmup_epochs: 1,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Ssim { window: 7 },
            })
            .cnn_epochs(1)
            .seed(5)
            .train(&data)
            .unwrap();
        (detector, data)
    }

    #[test]
    fn detector_roundtrips_through_spec() {
        let (detector, data) = trained();
        let img = &data.frames()[0].image;
        let before = detector.score(img).unwrap();
        let spec = detector_to_spec(&detector).unwrap();
        assert_eq!(spec.schema_version, DETECTOR_SCHEMA_VERSION);
        let back = detector_from_spec(spec).unwrap();
        let after = back.score(img).unwrap();
        assert_eq!(before, after);
        assert_eq!(back.threshold(), detector.threshold());
        assert_eq!(back.preprocessing(), detector.preprocessing());
        assert_eq!(back.training_scores(), detector.training_scores());
        assert_eq!(back.kind(), detector.kind());
    }

    #[test]
    fn file_roundtrip_preserves_verdicts() {
        let (detector, data) = trained();
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("detector.json");
        detector.save(&path).unwrap();
        let back = NoveltyDetector::load(&path).unwrap();
        for frame in data.frames().iter().take(3) {
            let a = detector.classify(&frame.image).unwrap();
            let b = back.classify(&frame.image).unwrap();
            assert_eq!(a, b);
        }
        // The free-function wrappers read the same file.
        let back2 = load_detector(&path).unwrap();
        assert_eq!(back2.threshold(), detector.threshold());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn schema_version_mismatch_is_a_clear_error() {
        let (detector, _) = trained();
        let mut spec = detector_to_spec(&detector).unwrap();
        spec.schema_version = DETECTOR_SCHEMA_VERSION + 7;
        let err = detector_from_spec(spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("schema version"), "{msg}");
        assert!(msg.contains(&DETECTOR_SCHEMA_VERSION.to_string()), "{msg}");
    }

    #[test]
    fn pre_versioning_files_are_rejected_with_guidance() {
        let (detector, _) = trained();
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old.json");
        // Simulate a v1 file: serialize, then strip the version field.
        let spec = detector_to_spec(&detector).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let needle = format!("\"schema_version\":{DETECTOR_SCHEMA_VERSION},");
        let old_json = json.replacen(&needle, "", 1);
        assert_ne!(json, old_json, "expected to strip the version field");
        std::fs::write(&path, old_json).unwrap();
        let err = NoveltyDetector::load(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("predates schema versioning"), "{msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_fails_load_and_atomic_save_leaves_no_temp() {
        let (detector, data) = trained();
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("detector.json");
        detector.save(&path).unwrap();
        // The temp file used for the atomic write must be gone.
        assert!(!dir.join("detector.json.tmp").exists());

        // Simulate a crash mid-write under the old non-atomic scheme:
        // the target file holds only a prefix of the JSON.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = NoveltyDetector::load(&path).unwrap_err();
        assert!(matches!(err, NoveltyError::Serde(_)), "{err}");

        // Saving again over the corrupt file restores a loadable one.
        detector.save(&path).unwrap();
        let back = NoveltyDetector::load(&path).unwrap();
        let img = &data.frames()[0].image;
        assert_eq!(detector.classify(img).unwrap(), back.classify(img).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_files_are_rejected() {
        let dir = std::env::temp_dir().join("saliency_novelty_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(NoveltyDetector::load(&path).is_err());
        assert!(NoveltyDetector::load(dir.join("missing.json")).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
