//! The model-characterization backend: novelty from the steering CNN's
//! *own* internal response, with no separate autoencoder.
//!
//! Kwon et al. (arXiv:2008.06094) observe that a network responds to
//! out-of-distribution inputs with atypical internal statistics long
//! before its output betrays anything. This backend operationalizes that
//! for the steering CNN: every frame is summarized by a feature vector
//! of per-layer activation statistics (mean and spread of each layer's
//! forward activations) plus the statistics of the input-gradient
//! saliency map ([`saliency::grad::gradient_saliency`] — the
//! gradient-side sibling of the VBP path). Training calibrates a
//! [`StatProfile`] (per-feature mean and standard deviation over the
//! training frames); the novelty score of a frame is the RMS z-score of
//! its features against that profile. In-distribution frames score near
//! 1 by construction; frames the model "perceives" differently score
//! high, so the direction is [`Direction::HigherIsNovel`].
//!
//! Determinism: activations come from the immutable forward pass, and
//! the gradient pass runs on a dedicated clone of the CNN behind a
//! mutex. [`saliency::grad::gradient_saliency`] zeroes accumulated
//! gradients before and after, so its result is a pure function of
//! `(parameters, image)` — lock acquisition order cannot change any
//! score, which keeps batch scoring bit-identical at any thread count.

use std::sync::Mutex;

use neural::serialize::clone_network;
use neural::Network;
use saliency::gradient_saliency;
use serde::{Deserialize, Serialize};
use vision::Image;

use crate::backend::{BackendKind, ScoreBackend};
use crate::{Direction, NoveltyError, Result};

/// Standard deviations below this are clamped when normalizing, so a
/// feature that is constant over the training set cannot blow a z-score
/// up to infinity.
const MIN_STD: f32 = 1e-6;

/// Calibrated per-feature statistics of the training distribution:
/// `means[i]` / `stds[i]` summarize feature `i` over the training
/// frames. Serialized inside the detector file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatProfile {
    /// Per-feature training means.
    pub means: Vec<f32>,
    /// Per-feature training standard deviations (population).
    pub stds: Vec<f32>,
}

impl StatProfile {
    /// Number of features the profile was calibrated on.
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// `true` when the profile carries no features.
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }

    /// Fits a profile over feature rows (one row per training frame).
    ///
    /// # Errors
    ///
    /// Fails on zero rows or ragged row lengths.
    pub fn fit(rows: &[Vec<f32>]) -> Result<StatProfile> {
        let first = rows.first().ok_or_else(|| {
            NoveltyError::invalid("StatProfile", "cannot fit a profile on zero frames")
        })?;
        let dim = first.len();
        if rows.iter().any(|r| r.len() != dim) {
            return Err(NoveltyError::invalid(
                "StatProfile",
                "feature rows have inconsistent lengths",
            ));
        }
        let n = rows.len() as f32;
        let mut means = vec![0.0f32; dim];
        for row in rows {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v / n;
            }
        }
        let mut vars = vec![0.0f32; dim];
        for row in rows {
            for ((s, v), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *s += d * d / n;
            }
        }
        let stds = vars.iter().map(|v| v.max(0.0).sqrt()).collect();
        Ok(StatProfile { means, stds })
    }

    /// The RMS z-score of a feature row against the profile — the
    /// model-characterization novelty score.
    ///
    /// # Errors
    ///
    /// Fails when the row length does not match the profile.
    pub fn rms_zscore(&self, features: &[f32]) -> Result<f32> {
        if features.len() != self.len() || self.is_empty() {
            return Err(NoveltyError::invalid(
                "StatProfile",
                format!(
                    "feature vector has {} entries but the profile was calibrated on {}",
                    features.len(),
                    self.len()
                ),
            ));
        }
        let mut sum = 0.0f32;
        for ((f, m), s) in features.iter().zip(&self.means).zip(&self.stds) {
            let z = (f - m) / s.max(MIN_STD);
            sum += z * z;
        }
        Ok((sum / self.len() as f32).sqrt())
    }
}

/// The model-characterization [`ScoreBackend`]: a frozen steering CNN
/// plus the calibrated [`StatProfile`] of its training-time response.
#[derive(Debug)]
pub struct ModelCharBackend {
    steering: Network,
    /// Dedicated clone for the gradient pass, which needs `&mut` (layer
    /// caches are written and consumed); parameters are never changed,
    /// so locking order cannot affect results.
    grad_twin: Mutex<Network>,
    height: usize,
    width: usize,
    profile: StatProfile,
}

impl ModelCharBackend {
    /// Calibrates the backend on training frames: extracts every
    /// frame's feature row (in parallel; rows are indexed, so the result
    /// is order-exact), fits the [`StatProfile`], and returns the
    /// backend together with the training scores (each row's RMS
    /// z-score against the freshly fitted profile — the calibration
    /// distribution for the detector's threshold).
    ///
    /// # Errors
    ///
    /// Fails on an empty training set or images incompatible with the
    /// network.
    pub fn fit(steering: Network, images: &[Image]) -> Result<(ModelCharBackend, Vec<f32>)> {
        let first = images.first().ok_or_else(|| {
            NoveltyError::invalid("ModelCharBackend", "cannot calibrate on zero frames")
        })?;
        let (height, width) = (first.height(), first.width());
        let grad_twin = Mutex::new(clone_network(&steering)?);
        let mut backend = ModelCharBackend {
            steering,
            grad_twin,
            height,
            width,
            profile: StatProfile {
                means: Vec::new(),
                stds: Vec::new(),
            },
        };
        let work = images
            .len()
            .saturating_mul(height * width)
            .saturating_mul(64);
        let rows =
            ndtensor::par::try_parallel_map(images.len(), work, |i| backend.features(&images[i]))?;
        backend.profile = StatProfile::fit(&rows)?;
        let scores = rows
            .iter()
            .map(|r| backend.profile.rms_zscore(r))
            .collect::<Result<Vec<f32>>>()?;
        Ok((backend, scores))
    }

    /// Reassembles a backend from persisted parts (see
    /// [`crate::DetectorSpec`]).
    ///
    /// # Errors
    ///
    /// Fails on an empty profile or when the network cannot be cloned
    /// for the gradient pass.
    pub fn from_parts(
        steering: Network,
        height: usize,
        width: usize,
        profile: StatProfile,
    ) -> Result<ModelCharBackend> {
        if profile.is_empty() {
            return Err(NoveltyError::invalid(
                "ModelCharBackend",
                "statistics profile is empty",
            ));
        }
        if profile.means.len() != profile.stds.len() {
            return Err(NoveltyError::invalid(
                "ModelCharBackend",
                "statistics profile means/stds lengths differ",
            ));
        }
        let grad_twin = Mutex::new(clone_network(&steering)?);
        Ok(ModelCharBackend {
            steering,
            grad_twin,
            height,
            width,
            profile,
        })
    }

    /// The feature vector of one frame: `(mean, std)` of every layer's
    /// forward activations, then `(mean, std)` of the input-gradient
    /// saliency map.
    fn features(&self, image: &Image) -> Result<Vec<f32>> {
        let input = image
            .tensor()
            .reshape([1, 1, image.height(), image.width()])?;
        let activations = self.steering.forward_collect(&input)?;
        let mut features = Vec::with_capacity(2 * activations.len() + 2); // sncheck:allow(hot-path-transitive-alloc): the feature vector is this backend's score input; ~2 floats per layer, exact-size, one per frame by design
        for act in &activations {
            let (mean, std) = mean_std(act.as_slice());
            features.push(mean);
            features.push(std);
        }
        let saliency = {
            let mut net = self
                .grad_twin
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            gradient_saliency(&mut net, image)?
        };
        let (mean, std) = mean_std(saliency.as_slice());
        features.push(mean);
        features.push(std);
        Ok(features)
    }
}

fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    (mean, var.max(0.0).sqrt())
}

impl ScoreBackend for ModelCharBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::ModelChar
    }

    fn direction(&self) -> Direction {
        Direction::HigherIsNovel
    }

    fn input_size(&self) -> (usize, usize) {
        (self.height, self.width)
    }

    fn preprocess(&self, image: &Image) -> Result<Image> {
        Ok(image.clone())
    }

    fn score(&self, image: &Image) -> Result<f32> {
        let features = self.features(image)?;
        self.profile.rms_zscore(&features)
    }

    fn steering_network(&self) -> Option<&Network> {
        Some(&self.steering)
    }

    fn stat_profile(&self) -> Option<&StatProfile> {
        Some(&self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::models::{pilotnet, PilotNetConfig};

    fn tiny_cnn() -> Network {
        pilotnet(
            &PilotNetConfig {
                height: 40,
                width: 80,
                ..PilotNetConfig::compact()
            },
            3,
        )
        .unwrap()
    }

    fn frames(n: usize, seed: u64) -> Vec<Image> {
        simdrive::DatasetConfig::outdoor()
            .with_len(n)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(seed)
            .frames()
            .iter()
            .map(|f| f.image.clone())
            .collect()
    }

    #[test]
    fn profile_fit_and_zscore_are_sound() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0]];
        let p = StatProfile::fit(&rows).unwrap();
        assert_eq!(p.means, vec![2.0, 10.0]);
        assert_eq!(p.stds[0], 1.0);
        // The constant feature is clamped, not divided by zero.
        let s = p.rms_zscore(&[2.0, 10.0]).unwrap();
        assert_eq!(s, 0.0);
        let far = p.rms_zscore(&[4.0, 10.0]).unwrap();
        assert!(far.is_finite() && far > 1.0);
        // Ragged / mismatched inputs fail loudly.
        assert!(StatProfile::fit(&[]).is_err());
        assert!(StatProfile::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(p.rms_zscore(&[1.0]).is_err());
    }

    #[test]
    fn fit_scores_are_deterministic_and_in_distribution_scores_are_moderate() {
        let images = frames(12, 5);
        let (backend, scores) = ModelCharBackend::fit(tiny_cnn(), &images).unwrap();
        let (b2, s2) = ModelCharBackend::fit(tiny_cnn(), &images).unwrap();
        assert_eq!(scores, s2);
        assert_eq!(backend.profile, b2.profile);
        // Training scores are RMS z-scores: finite, non-negative, and
        // re-scoring a training frame reproduces its training score.
        for (img, &s) in images.iter().zip(&scores) {
            assert!(s.is_finite() && s >= 0.0);
            assert_eq!(backend.score(img).unwrap(), s);
        }
        assert_eq!(backend.kind(), BackendKind::ModelChar);
        assert_eq!(backend.direction(), Direction::HigherIsNovel);
        assert_eq!(backend.input_size(), (40, 80));
        assert!(backend.steering_network().is_some());
        assert!(backend.classifier().is_none());
        assert!(backend.reconstruct(&images[0]).is_err());
    }

    #[test]
    fn persisted_parts_round_trip() {
        let images = frames(8, 9);
        let (backend, _) = ModelCharBackend::fit(tiny_cnn(), &images).unwrap();
        let rebuilt = ModelCharBackend::from_parts(
            clone_network(&backend.steering).unwrap(),
            40,
            80,
            backend.profile.clone(),
        )
        .unwrap();
        for img in &images {
            assert_eq!(
                backend.score(img).unwrap().to_bits(),
                rebuilt.score(img).unwrap().to_bits()
            );
        }
        assert!(ModelCharBackend::from_parts(
            tiny_cnn(),
            40,
            80,
            StatProfile {
                means: Vec::new(),
                stds: Vec::new()
            }
        )
        .is_err());
    }
}
