//! Dataset-level evaluation of trained detectors.
//!
//! The paper's quantitative claims are about score *distributions*:
//! target-class scores must separate from novel-class scores (Fig. 5) and
//! from perturbed-target scores (Fig. 7), and all novel samples must fall
//! past the calibrated threshold. [`evaluate`] computes those summaries
//! for any detector and pair of datasets.

use metrics::histogram::Histogram;
use metrics::separation::SeparationReport;
use vision::Image;

use crate::backend::Detector;
use crate::{Direction, NoveltyError, Result, Verdict};

/// Scores and summary statistics for one target-vs-novel comparison.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Scores of the target-class (in-distribution) images.
    pub target_scores: Vec<f32>,
    /// Scores of the novel-class images.
    pub novel_scores: Vec<f32>,
    /// AUROC / overlap / means between the two samples.
    pub separation: SeparationReport,
    /// Fraction of novel images flagged at the calibrated threshold
    /// (the paper reports 100 % for cross-dataset novelty).
    pub novel_detection_rate: f32,
    /// Fraction of target images incorrectly flagged (≈ 1 − percentile).
    pub false_positive_rate: f32,
    /// The threshold used.
    pub threshold: f32,
    /// Score orientation.
    pub direction: Direction,
}

impl EvalReport {
    /// Renders the two score distributions as histogram rows over a
    /// common range — the textual equivalent of the paper's Fig. 5/7
    /// panels.
    ///
    /// # Errors
    ///
    /// Fails when `bins` is zero or scores are degenerate (all equal).
    pub fn histograms(&self, bins: usize) -> Result<(Histogram, Histogram)> {
        let all: Vec<f32> = self
            .target_scores
            .iter()
            .chain(&self.novel_scores)
            .copied()
            .collect();
        let lo = all.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = all.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let (lo, hi) = if lo == hi {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        Ok((
            Histogram::from_values(&self.target_scores, lo, hi, bins)?,
            Histogram::from_values(&self.novel_scores, lo, hi, bins)?,
        ))
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} | novel detected {:.1}% | target FPR {:.1}% | threshold {:.4}",
            self.separation,
            self.novel_detection_rate * 100.0,
            self.false_positive_rate * 100.0,
            self.threshold
        )
    }
}

/// Fraction of verdicts that flagged their image novel.
fn flag_rate(verdicts: &[Verdict]) -> f32 {
    if verdicts.is_empty() {
        return 0.0;
    }
    verdicts.iter().filter(|v| v.is_novel).count() as f32 / verdicts.len() as f32
}

/// Evaluates a trained detector — a single [`crate::NoveltyDetector`] or
/// a fused [`crate::EnsembleDetector`] — against a target sample (drawn
/// from the training distribution) and a novel sample.
///
/// # Errors
///
/// Fails when either sample is empty or any image is incompatible with
/// the pipeline.
pub fn evaluate(
    detector: &dyn Detector,
    target_images: &[Image],
    novel_images: &[Image],
) -> Result<EvalReport> {
    evaluate_recorded(detector, target_images, novel_images, obs::noop())
}

/// [`evaluate`] with observability: both batches are classified through
/// [`Detector::classify_batch_recorded`] (so scoring wall time,
/// per-image latency and pool activity are captured), and the report's
/// headline numbers (AUROC, detection rate, false-positive rate,
/// threshold) are recorded as `eval.*` gauges.
///
/// The detection rates count each verdict's own `is_novel` flag, which
/// for a single detector is exactly the strict threshold comparison the
/// old score-based evaluation used; for an ensemble it is the fused
/// vote. Recording never changes the evaluation result.
///
/// # Errors
///
/// Same conditions as [`evaluate`].
pub fn evaluate_recorded(
    detector: &dyn Detector,
    target_images: &[Image],
    novel_images: &[Image],
    recorder: &dyn obs::Recorder,
) -> Result<EvalReport> {
    if target_images.is_empty() || novel_images.is_empty() {
        return Err(NoveltyError::invalid(
            "evaluate",
            "target and novel samples must be non-empty",
        ));
    }
    let target_verdicts = detector.classify_batch_recorded(target_images, recorder)?;
    let novel_verdicts = detector.classify_batch_recorded(novel_images, recorder)?;
    let first = target_verdicts
        .first()
        .ok_or_else(|| NoveltyError::invalid("evaluate", "target sample produced no verdicts"))?;
    let (threshold, direction) = (first.threshold, first.direction);
    let orientation = direction.orientation();
    let target_scores: Vec<f32> = target_verdicts.iter().map(|v| v.score).collect();
    let novel_scores: Vec<f32> = novel_verdicts.iter().map(|v| v.score).collect();
    let separation = SeparationReport::compute(&target_scores, &novel_scores, orientation)?;
    let novel_detection_rate = flag_rate(&novel_verdicts);
    let false_positive_rate = flag_rate(&target_verdicts);
    recorder.add("eval.target_images", target_scores.len() as u64);
    recorder.add("eval.novel_images", novel_scores.len() as u64);
    recorder.gauge("eval.auroc", separation.auroc as f64);
    recorder.gauge("eval.novel_detection_rate", novel_detection_rate as f64);
    recorder.gauge("eval.false_positive_rate", false_positive_rate as f64);
    recorder.gauge("eval.threshold", threshold as f64);
    Ok(EvalReport {
        target_scores,
        novel_scores,
        separation,
        novel_detection_rate,
        false_positive_rate,
        threshold,
        direction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ClassifierConfig, NoveltyDetector, NoveltyDetectorBuilder, ReconstructionObjective,
    };
    use simdrive::DatasetConfig;

    fn quick_detector() -> (NoveltyDetector, Vec<Image>, Vec<Image>) {
        let outdoor = DatasetConfig::outdoor()
            .with_len(24)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(11);
        let indoor = DatasetConfig::indoor()
            .with_len(8)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(12);
        let detector = NoveltyDetectorBuilder::richter_roy()
            .classifier_config(ClassifierConfig {
                hidden: vec![16, 8, 16],
                epochs: 15,
                warmup_epochs: 0,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Mse,
            })
            .seed(3)
            .train(&outdoor)
            .unwrap();
        let target: Vec<Image> = outdoor
            .frames()
            .iter()
            .skip(19)
            .map(|f| f.image.clone())
            .collect();
        let novel: Vec<Image> = indoor.frames().iter().map(|f| f.image.clone()).collect();
        (detector, target, novel)
    }

    #[test]
    fn evaluate_produces_consistent_report() {
        let (detector, target, novel) = quick_detector();
        let report = evaluate(&detector, &target, &novel).unwrap();
        assert_eq!(report.target_scores.len(), target.len());
        assert_eq!(report.novel_scores.len(), novel.len());
        assert!((0.0..=1.0).contains(&report.novel_detection_rate));
        assert!((0.0..=1.0).contains(&report.false_positive_rate));
        assert!((0.0..=1.0).contains(&report.separation.auroc));
        // Cross-world novelty should be detectable even by the baseline
        // on this tiny problem.
        assert!(
            report.separation.auroc > 0.6,
            "AUROC {}",
            report.separation.auroc
        );
        let s = report.to_string();
        assert!(s.contains("AUROC"));
    }

    #[test]
    fn histograms_share_range() {
        let (detector, target, novel) = quick_detector();
        let report = evaluate(&detector, &target, &novel).unwrap();
        let (ht, hn) = report.histograms(16).unwrap();
        assert_eq!(ht.bins(), 16);
        assert_eq!(ht.lo(), hn.lo());
        assert_eq!(ht.hi(), hn.hi());
        assert_eq!(ht.total() as usize, target.len());
        assert_eq!(hn.total() as usize, novel.len());
    }

    #[test]
    fn evaluate_rejects_empty_samples() {
        let (detector, target, _) = quick_detector();
        assert!(evaluate(&detector, &target, &[]).is_err());
        assert!(evaluate(&detector, &[], &target).is_err());
    }
}
