//! The multi-tenant stream server: N independent tenant streams, one
//! process, one scoring path.
//!
//! [`crate::StreamRuntime`] guards exactly one camera feed. A deployed
//! monitor serves many — and the hard part is *robustness under load*:
//! one tenant's fault storm must degrade only that tenant, and overload
//! must shed work explicitly instead of silently stalling feeds.
//! [`StreamServer`] owns one [`StreamRuntime`] lane per tenant (its own
//! gate, health tracker, alarm monitor and fallback policy) behind a
//! bounded admission queue, and advances them in discrete *rounds*:
//!
//! ```text
//!   offer()        ┌────────────── per-tenant, isolated ──────────────┐
//!   arrivals ────► │ bounded queue → shed stale/overflow → gate admit │─┐
//!                  └──────────────────────────────────────────────────┘ │
//!                  ┌──────────────────────────────────────────────────┐ │
//!   tenant B ────► │                    (same, independent)           │─┤
//!                  └──────────────────────────────────────────────────┘ │
//!                             cross-tenant mega-batch  ◄───────────────┘
//!                       one batched score pass (packed GEMM at
//!                        batch N instead of N× batch 1), then
//!                      demultiplex verdicts back to each lane
//! ```
//!
//! **Backpressure and shedding.** Each [`QueueConfig`] bounds a tenant's
//! queue (`capacity`), its service rate (`drain` frames per round) and
//! its queueing deadline (`max_wait_rounds`). Overflowing and stale
//! frames are not dropped silently: they resolve to real
//! [`StreamDecision`]s with [`crate::DecisionSource::Shed`], so the
//! one-decision-per-frame guarantee survives overload and the health
//! tracker sees the gap ([`crate::HealthEvent::Shed`]).
//!
//! **Fault isolation.** Shedding for tenant A is a pure function of A's
//! own arrivals, queue and deadline state; scoring runs through
//! [`Detector::classify_each_recorded`], whose verdicts are bit-identical
//! to per-image [`Detector::classify`] regardless of batch composition.
//! Removing a tenant therefore never changes any other tenant's decision
//! stream (proven in `tests/serve_isolation.rs`).
//!
//! **Determinism.** Rounds are a virtual clock: queueing deadlines count
//! rounds, and scoring deadlines can charge a seeded
//! [`crate::CostModel`] instead of wall time. Same seeds + same tenant
//! set ⇒ byte-identical per-tenant [`AlarmLog`]s at any thread count.

use std::collections::VecDeque;
use std::path::Path;

use obs::{Recorder, Span};
use serde::{Deserialize, Serialize};
use vision::Image;

use crate::backend::Detector;
use crate::monitor::AlarmState;
use crate::runtime::{
    FrameAdmission, ScoreOutcome, ShedReason, StreamConfig, StreamDecision, StreamRuntime,
};
use crate::{NoveltyError, Result};

/// Schema version of the serialized [`AlarmLog`].
pub const ALARM_LOG_SCHEMA_VERSION: u32 = 1;

/// Bounded-queue and service parameters for one tenant lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum frames waiting in the lane (default 8). Arrivals beyond
    /// this resolve as [`ShedReason::QueueFull`] decisions.
    pub capacity: usize,
    /// Frames dispatched to scoring per round (default 1) — the lane's
    /// guaranteed service rate, independent of other tenants.
    pub drain: usize,
    /// Maximum whole rounds a frame may wait before it is shed as
    /// [`ShedReason::DeadlineExpired`] (default 4). Shedding stale
    /// frames costs no drain budget.
    pub max_wait_rounds: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 8,
            drain: 1,
            max_wait_rounds: 4,
        }
    }
}

impl QueueConfig {
    fn validate(&self, tenant: &str) -> Result<()> {
        if self.capacity == 0 || self.drain == 0 {
            return Err(NoveltyError::invalid(
                "StreamServer",
                format!("tenant {tenant:?}: queue capacity and drain must be at least 1"),
            ));
        }
        Ok(())
    }
}

/// One tenant's full configuration: a name, its stream-runtime settings
/// and its queue bounds.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Unique tenant name (log file stem, gauge label).
    pub name: String,
    /// Per-tenant gate/health/alarm/fallback/deadline configuration.
    pub stream: StreamConfig,
    /// Per-tenant queue bounds and service rate.
    pub queue: QueueConfig,
}

impl TenantSpec {
    /// A tenant with default queue bounds.
    pub fn new(name: impl Into<String>, stream: StreamConfig) -> Self {
        TenantSpec {
            name: name.into(),
            stream,
            queue: QueueConfig::default(),
        }
    }

    /// Overrides the queue bounds.
    pub fn with_queue(mut self, queue: QueueConfig) -> Self {
        self.queue = queue;
        self
    }
}

/// Cumulative per-tenant serving statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Frames offered to the lane (including ones later shed).
    pub offered: u64,
    /// Decisions emitted (every offered frame eventually yields one).
    pub decisions: u64,
    /// Frames scored by the detector.
    pub scored: u64,
    /// Frames shed because the queue was full on arrival.
    pub shed_queue_full: u64,
    /// Frames shed because they aged past `max_wait_rounds`.
    pub shed_deadline: u64,
    /// Frames the gate rejected.
    pub gate_rejected: u64,
    /// Frames the detector failed on past the gate.
    pub score_errors: u64,
    /// Decisions during which the tenant's alarm was raised.
    pub alarm_raised_frames: u64,
}

impl TenantStats {
    /// Total shed decisions, all reasons.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline
    }
}

/// A frame waiting in a tenant's queue. Overflow arrivals keep a slot
/// (they still owe a decision, emitted in frame order) but drop their
/// pixels immediately and never count against `capacity`.
#[derive(Debug)]
struct PendingFrame {
    image: Option<Image>,
    arrival_round: u64,
    overflow: bool,
}

/// What the drain phase planned for one admitted frame.
#[derive(Debug)]
enum Planned {
    /// Shed without gating or scoring.
    Shed(ShedReason),
    /// Gate-rejected; the fallback policy resolves it.
    Gated,
    /// Dispatched to the mega-batch at this slot.
    Batched(usize),
    /// The gate admitted a frame with no pixels (structurally
    /// unreachable — the gate rejects missing frames).
    Undelivered,
}

#[derive(Debug)]
struct TenantLane<'d> {
    name: String,
    runtime: StreamRuntime<'d>,
    queue: VecDeque<PendingFrame>,
    config: QueueConfig,
    /// Queued frames that count against `capacity` (excludes overflow
    /// markers, which hold no pixels).
    live: usize,
    stats: TenantStats,
}

/// The multi-tenant stream server. See the module docs for the
/// round-based scheduling model.
///
/// # Example
///
/// ```no_run
/// use novelty::serve::{StreamServer, TenantSpec};
/// use novelty::{NoveltyDetector, StreamConfig};
///
/// # fn main() -> Result<(), novelty::NoveltyError> {
/// let detector = NoveltyDetector::load("detector.json")?;
/// let tenants = vec![
///     TenantSpec::new("cam-front", StreamConfig::for_detector(&detector)),
///     TenantSpec::new("cam-rear", StreamConfig::for_detector(&detector)),
/// ];
/// let mut server = StreamServer::new(&detector, tenants)?;
/// // each round: offer arrivals, then step
/// server.offer(0, None)?; // front camera dropped a frame
/// for (tenant, decision) in server.step() {
///     println!("tenant {tenant}: frame {} {:?}", decision.frame, decision.is_novel);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamServer<'d> {
    detector: &'d dyn Detector,
    lanes: Vec<TenantLane<'d>>,
    round: u64,
}

impl<'d> StreamServer<'d> {
    /// A server with one lane per tenant spec.
    ///
    /// # Errors
    ///
    /// Fails when `tenants` is empty, names collide, any queue config is
    /// degenerate, or any stream config is invalid.
    pub fn new(detector: &'d dyn Detector, tenants: Vec<TenantSpec>) -> Result<Self> {
        if tenants.is_empty() {
            return Err(NoveltyError::invalid(
                "StreamServer",
                "need at least one tenant",
            ));
        }
        let mut lanes = Vec::with_capacity(tenants.len());
        for spec in tenants {
            spec.queue.validate(&spec.name)?;
            if lanes.iter().any(|l: &TenantLane<'_>| l.name == spec.name) {
                return Err(NoveltyError::invalid(
                    "StreamServer",
                    format!("duplicate tenant name {:?}", spec.name),
                ));
            }
            lanes.push(TenantLane {
                runtime: StreamRuntime::new(detector, spec.stream)?,
                name: spec.name,
                queue: VecDeque::new(),
                config: spec.queue,
                live: 0,
                stats: TenantStats::default(),
            });
        }
        Ok(StreamServer {
            detector,
            lanes,
            round: 0,
        })
    }

    /// Number of tenant lanes.
    pub fn tenant_count(&self) -> usize {
        self.lanes.len()
    }

    /// The tenant's name, when the index is valid.
    pub fn tenant_name(&self, tenant: usize) -> Option<&str> {
        self.lanes.get(tenant).map(|l| l.name.as_str())
    }

    /// Rounds stepped so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The tenant's cumulative serving statistics.
    pub fn stats(&self, tenant: usize) -> Option<&TenantStats> {
        self.lanes.get(tenant).map(|l| &l.stats)
    }

    /// The tenant's stream runtime (health, alarm monitor).
    pub fn runtime(&self, tenant: usize) -> Option<&StreamRuntime<'d>> {
        self.lanes.get(tenant).map(|l| &l.runtime)
    }

    /// Frames (including overflow markers) still owing a decision,
    /// across all tenants. Stepping with no new arrivals strictly
    /// decreases this, so `while server.pending() > 0 { server.step(); }`
    /// always terminates.
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    /// Live queue depth (frames counting against capacity) of a tenant.
    pub fn queue_depth(&self, tenant: usize) -> usize {
        self.lanes.get(tenant).map(|l| l.live).unwrap_or(0)
    }

    /// Offers one arrival (`None` = the frame never arrived) to a
    /// tenant's queue at the current round. When the queue is full the
    /// frame is recorded as an overflow marker: its pixels are dropped
    /// immediately and it resolves as a [`ShedReason::QueueFull`]
    /// decision, in frame order, on a later [`StreamServer::step`].
    /// Admission depends only on this tenant's own queue state.
    ///
    /// # Errors
    ///
    /// Fails when `tenant` is out of range.
    pub fn offer(&mut self, tenant: usize, frame: Option<Image>) -> Result<()> {
        let round = self.round;
        let lane = self.lanes.get_mut(tenant).ok_or_else(|| {
            NoveltyError::invalid("StreamServer::offer", format!("no tenant {tenant}"))
        })?;
        lane.stats.offered += 1;
        if lane.live >= lane.config.capacity {
            lane.queue.push_back(PendingFrame {
                image: None,
                arrival_round: round,
                overflow: true,
            });
        } else {
            lane.queue.push_back(PendingFrame {
                image: frame,
                arrival_round: round,
                overflow: false,
            });
            lane.live += 1;
        }
        Ok(())
    }

    /// Runs one scheduling round without observability.
    pub fn step(&mut self) -> Vec<(usize, StreamDecision)> {
        self.step_recorded(obs::noop())
    }

    /// Runs one scheduling round: per tenant (in index order) sheds
    /// overflow and stale frames, gates up to `drain` fresh frames, then
    /// scores every admitted frame across all tenants in **one**
    /// coalesced batch and demultiplexes the verdicts back through each
    /// lane's own fallback/alarm/health machinery, in frame order.
    ///
    /// Returns `(tenant index, decision)` pairs, grouped by tenant in
    /// index order, each tenant's decisions in frame order. Recording
    /// lands under the `serve-score` span plus `serve.*` counters,
    /// gauges and histograms, and never changes any decision.
    pub fn step_recorded(&mut self, recorder: &dyn Recorder) -> Vec<(usize, StreamDecision)> {
        let round = self.round;
        recorder.add("serve.rounds", 1);

        // Phase A — drain plans. Everything here is per-tenant state:
        // shedding and admission for one lane never read another lane.
        let mut batch: Vec<Image> = Vec::new();
        let mut plans: Vec<Vec<(FrameAdmission, Planned)>> = Vec::with_capacity(self.lanes.len()); // sncheck:allow(hot-path-transitive-alloc): one plan slot per tenant lane per serve round, amortized over the coalesced batch
        for lane in self.lanes.iter_mut() {
            let mut plan = Vec::new();
            let mut budget = lane.config.drain;
            while let Some(front) = lane.queue.front() {
                if front.overflow {
                    lane.queue.pop_front();
                    let admission = lane.runtime.admit_unseen(recorder);
                    plan.push((admission, Planned::Shed(ShedReason::QueueFull)));
                    continue;
                }
                let waited = round.saturating_sub(front.arrival_round);
                if waited > lane.config.max_wait_rounds {
                    lane.queue.pop_front();
                    lane.live = lane.live.saturating_sub(1);
                    let admission = lane.runtime.admit_unseen(recorder);
                    plan.push((admission, Planned::Shed(ShedReason::DeadlineExpired)));
                    continue;
                }
                if budget == 0 {
                    break;
                }
                budget -= 1;
                let Some(pending) = lane.queue.pop_front() else {
                    break;
                };
                lane.live = lane.live.saturating_sub(1);
                let admission = lane
                    .runtime
                    .admit_recorded(pending.image.as_ref(), recorder);
                if admission.gate_fault().is_some() {
                    plan.push((admission, Planned::Gated));
                } else if let Some(image) = pending.image {
                    plan.push((admission, Planned::Batched(batch.len())));
                    batch.push(image);
                } else {
                    plan.push((admission, Planned::Undelivered));
                }
            }
            recorder.gauge(
                &format!("serve.queue_depth.{}", lane.name),
                lane.live as f64,
            );
            plans.push(plan);
        }

        // Phase B — one coalesced cross-tenant scoring pass. Verdict i
        // is bit-identical to classify() on frame i whatever the batch
        // holds, and a failing frame fails only its own slot, so batch
        // composition cannot couple tenants.
        recorder.observe("serve.coalesce.batch_size", batch.len() as f64);
        let mut results: Vec<Option<Result<crate::Verdict>>> = if batch.is_empty() {
            Vec::new()
        } else if batch.len() == 1 {
            // Single-frame fast path: a lone admitted frame (the common
            // single-tenant case) skips batch assembly — validation
            // ledgers, routing tables, stacked batch-1 GEMMs — and runs
            // the scalar classify path instead. `classify_each`'s
            // contract makes verdict `i` bit-identical to `classify` on
            // frame `i`, so the decision cannot differ; the same
            // `serve-score`/`scoring` spans and the scores-computed
            // counter fire so recorded output keeps its shape.
            let span = Span::root(recorder, "serve-score");
            let verdict = obs::time(recorder, "scoring", || self.detector.classify(&batch[0]));
            recorder.add("scoring.scores_computed", u64::from(verdict.is_ok()));
            span.finish();
            std::iter::once(Some(verdict)).collect()
        } else {
            let span = Span::root(recorder, "serve-score");
            let verdicts = self.detector.classify_each_recorded(&batch, recorder);
            span.finish();
            verdicts.into_iter().map(Some).collect()
        };

        // Phase C — demultiplex, resolving each tenant's frames in
        // admission (= frame) order through its own runtime.
        let mut decisions = Vec::new();
        for (tenant, plan) in plans.into_iter().enumerate() {
            let Some(lane) = self.lanes.get_mut(tenant) else {
                break;
            };
            for (admission, planned) in plan {
                let outcome = match planned {
                    Planned::Shed(reason) => {
                        recorder.add("serve.shed", 1);
                        recorder.add(&format!("serve.shed.{}", reason.name()), 1);
                        ScoreOutcome::Shed(reason)
                    }
                    Planned::Gated => ScoreOutcome::Unscored,
                    Planned::Undelivered => {
                        ScoreOutcome::Failed("gate admitted an undelivered frame".to_string())
                    }
                    Planned::Batched(slot) => match results.get_mut(slot).and_then(Option::take) {
                        Some(Ok(verdict)) => ScoreOutcome::Scored {
                            verdict,
                            elapsed: None,
                        },
                        Some(Err(e)) => ScoreOutcome::Failed(e.to_string()),
                        None => ScoreOutcome::Failed(
                            "coalesced batch returned no verdict for this slot".to_string(),
                        ),
                    },
                };
                let decision = lane.runtime.resolve_recorded(admission, outcome, recorder);
                lane.stats.decisions += 1;
                match decision.source {
                    crate::DecisionSource::Scored => lane.stats.scored += 1,
                    crate::DecisionSource::Shed => match decision.shed {
                        Some(ShedReason::QueueFull) => lane.stats.shed_queue_full += 1,
                        Some(ShedReason::DeadlineExpired) | None => {
                            lane.stats.shed_deadline += 1;
                        }
                    },
                    _ => {}
                }
                if decision.gate_fault.is_some() {
                    lane.stats.gate_rejected += 1;
                }
                if decision.score_error.is_some() {
                    lane.stats.score_errors += 1;
                }
                if decision.alarm == AlarmState::Raised {
                    lane.stats.alarm_raised_frames += 1;
                }
                decisions.push((tenant, decision));
            }
        }

        // Per-tenant fairness over cumulative scored counts (Jain's
        // index: 1 = perfectly even service, 1/n = one tenant starved).
        let n = self.lanes.len() as f64;
        let sum: f64 = self.lanes.iter().map(|l| l.stats.scored as f64).sum();
        let sum_sq: f64 = self
            .lanes
            .iter()
            .map(|l| (l.stats.scored as f64) * (l.stats.scored as f64))
            .sum();
        if sum > 0.0 {
            recorder.gauge("serve.fairness.jain", (sum * sum) / (n * sum_sq));
        }

        self.round += 1;
        decisions
    }
}

/// One line of a per-tenant serve (or stream) alarm log. Only
/// deterministic fields are logged — deadline overruns under the ambient
/// clock are deliberately absent — so runs with the same seeds, tenant
/// set and fault schedules produce byte-identical logs at any thread
/// count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlarmLogEntry {
    /// Frame index within the tenant's stream.
    pub frame: u64,
    /// Injected sensor fault, if the traffic generator corrupted this
    /// frame.
    pub injected: Option<String>,
    /// Gate rejection class, if the frame was inadmissible.
    pub gate: Option<String>,
    /// Shed reason, if the serving layer shed the frame.
    pub shed: Option<String>,
    /// How the decision was produced (scored / fallback-* / abstained /
    /// shed).
    pub source: String,
    /// The novelty flag; absent under the abstain policy.
    pub is_novel: Option<bool>,
    /// The backing verdict's score, when one exists.
    pub score: Option<f32>,
    /// Health state after this frame.
    pub health: String,
    /// Alarm state after this frame.
    pub alarm: String,
}

impl AlarmLogEntry {
    /// Builds a log line from a decision.
    pub fn from_decision(decision: &StreamDecision, injected: Option<&str>) -> Self {
        AlarmLogEntry {
            frame: decision.frame,
            injected: injected.map(str::to_string),
            gate: decision.gate_fault.as_ref().map(|f| f.class().to_string()),
            shed: decision.shed.map(|r| r.name().to_string()),
            source: decision.source.name().to_string(),
            is_novel: decision.is_novel,
            score: decision.verdict.as_ref().map(|v| v.score),
            health: decision.health.name().to_string(),
            alarm: match decision.alarm {
                AlarmState::Nominal => "nominal".to_string(),
                AlarmState::Raised => "raised".to_string(),
            },
        }
    }
}

/// A schema-versioned per-tenant alarm log with atomic persistence:
/// saves write a sibling `*.tmp` and rename it into place (the same
/// discipline as detector persistence), so a crash mid-write never
/// leaves a truncated log where a complete one stood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlarmLog {
    /// Format version ([`ALARM_LOG_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The tenant this log belongs to.
    pub tenant: String,
    /// Per-frame decisions, in frame order.
    pub entries: Vec<AlarmLogEntry>,
}

impl AlarmLog {
    /// An empty log for a tenant.
    pub fn new(tenant: impl Into<String>) -> Self {
        AlarmLog {
            schema_version: ALARM_LOG_SCHEMA_VERSION,
            tenant: tenant.into(),
            entries: Vec::new(),
        }
    }

    /// Appends a decision as a log line.
    pub fn record(&mut self, decision: &StreamDecision, injected: Option<&str>) {
        self.entries
            .push(AlarmLogEntry::from_decision(decision, injected));
    }

    /// Serializes and writes the log atomically (sibling `.tmp` +
    /// rename).
    ///
    /// # Errors
    ///
    /// Fails on serialization or I/O errors; the destination is never
    /// left half-written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let json = serde_json::to_string(self).map_err(|e| {
            NoveltyError::invalid("AlarmLog::save", format!("cannot serialize: {e}"))
        })?;
        crate::persist::write_atomic(path.as_ref(), &json)
    }

    /// Loads a log, validating the schema version. A truncated or
    /// corrupt file fails cleanly (atomic saves make one impossible to
    /// produce by crashing, but not by other writers).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed JSON, or a schema mismatch.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| {
            NoveltyError::invalid(
                "AlarmLog::load",
                format!("cannot read {}: {e}", path.display()),
            )
        })?;
        let log: AlarmLog = serde_json::from_str(&json).map_err(|e| {
            NoveltyError::invalid(
                "AlarmLog::load",
                format!("{} is not a valid alarm log: {e}", path.display()),
            )
        })?;
        if log.schema_version != ALARM_LOG_SCHEMA_VERSION {
            return Err(NoveltyError::invalid(
                "AlarmLog::load",
                format!(
                    "unsupported alarm log schema {} (expected {})",
                    log.schema_version, ALARM_LOG_SCHEMA_VERSION
                ),
            ));
        }
        Ok(log)
    }

    /// Loads an existing log, appends `entries`, and atomically rewrites
    /// it — readers only ever observe a complete, parseable log.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AlarmLog::load`] and [`AlarmLog::save`].
    pub fn append(path: impl AsRef<Path>, entries: &[AlarmLogEntry]) -> Result<Self> {
        let path = path.as_ref();
        let mut log = AlarmLog::load(path)?;
        log.entries.extend(entries.iter().cloned());
        log.save(path)?;
        Ok(log)
    }
}
