//! Runtime health state machine: Healthy → Degraded → FailSafe.
//!
//! Per-frame faults (gate rejections, scoring errors, deadline overruns)
//! are noisy signals; a control loop needs a debounced, monotone summary
//! it can act on. [`HealthTracker`] folds per-frame [`HealthEvent`]s into
//! a three-state machine:
//!
//! ```text
//!              faults ≥ degrade_after        faults ≥ failsafe_after
//!    ┌─────────┐ ───────────────────► ┌──────────┐ ────────────────► ┌──────────┐
//!    │ Healthy │                      │ Degraded │                   │ FailSafe │
//!    └─────────┘ ◄─────────────────── └──────────┘ ◄──────────────── └──────────┘
//!              clean ≥ recover_after            clean ≥ recover_after
//! ```
//!
//! Escalation counts *consecutive* faulty frames; recovery requires
//! `recover_after` consecutive clean frames and steps down **one level at
//! a time** (hysteresis: a feed that was in FailSafe must re-earn Healthy
//! through Degraded, so a single good frame amid garbage never clears the
//! alarm). Every transition is recorded with the frame index that caused
//! it, so the obs report can show exactly when and why the runtime
//! changed state.

use crate::{NoveltyError, Result};

/// Overall runtime health, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthState {
    /// The stream is scoring normally.
    Healthy,
    /// Faults are frequent enough that verdicts should be treated with
    /// suspicion (fallbacks are filling gaps).
    Degraded,
    /// The stream is effectively unusable; a supervisor should disengage
    /// or switch sensors.
    FailSafe,
}

impl HealthState {
    /// Stable lower-case name for logs and counters.
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::FailSafe => "fail-safe",
        }
    }

    /// Severity rank (0 = Healthy, 2 = FailSafe), for gauges.
    pub fn severity(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::FailSafe => 2,
        }
    }
}

/// One per-frame input to the health machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// The frame gated in, scored, and met its deadline.
    Clean,
    /// The frame gate rejected the frame.
    GateRejected,
    /// The frame passed the gate but scoring returned an error.
    ScoreFailed,
    /// Scoring succeeded but blew the per-frame deadline.
    DeadlineOverrun,
    /// The serving layer shed the frame before scoring (queue overflow
    /// or expired queueing deadline). The frame was never inspected, so
    /// the verdict gap counts against health like any other fault.
    Shed,
}

impl HealthEvent {
    /// `true` for every event that counts against health.
    pub fn is_fault(&self) -> bool {
        !matches!(self, HealthEvent::Clean)
    }
}

/// Escalation / recovery thresholds for a [`HealthTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive faulty frames that push Healthy → Degraded
    /// (default 2).
    pub degrade_after: usize,
    /// Consecutive faulty frames that push Degraded → FailSafe
    /// (default 6). Must be ≥ `degrade_after`.
    pub failsafe_after: usize,
    /// Consecutive clean frames that step recovery down one level
    /// (default 4).
    pub recover_after: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            degrade_after: 2,
            failsafe_after: 6,
            recover_after: 4,
        }
    }
}

impl HealthConfig {
    fn validate(&self) -> Result<()> {
        if self.degrade_after == 0 || self.recover_after == 0 {
            return Err(NoveltyError::invalid(
                "HealthTracker",
                "degrade_after and recover_after must be non-zero",
            ));
        }
        if self.failsafe_after < self.degrade_after {
            return Err(NoveltyError::invalid(
                "HealthTracker",
                format!(
                    "failsafe_after ({}) must be >= degrade_after ({})",
                    self.failsafe_after, self.degrade_after
                ),
            ));
        }
        Ok(())
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Index of the frame whose event caused the transition.
    pub frame: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
}

/// The fold over [`HealthEvent`]s.
///
/// # Example
///
/// ```
/// use novelty::{HealthConfig, HealthEvent, HealthState, HealthTracker};
///
/// # fn main() -> Result<(), novelty::NoveltyError> {
/// let mut health = HealthTracker::new(HealthConfig::default())?;
/// assert_eq!(health.observe(HealthEvent::GateRejected), HealthState::Healthy);
/// assert_eq!(health.observe(HealthEvent::GateRejected), HealthState::Degraded);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HealthTracker {
    config: HealthConfig,
    state: HealthState,
    consecutive_faults: usize,
    consecutive_clean: usize,
    frames_observed: u64,
    transitions: Vec<HealthTransition>,
}

impl HealthTracker {
    /// A tracker starting in [`HealthState::Healthy`].
    ///
    /// # Errors
    ///
    /// Fails when the configuration is internally inconsistent.
    pub fn new(config: HealthConfig) -> Result<Self> {
        config.validate()?;
        Ok(HealthTracker {
            config,
            state: HealthState::Healthy,
            consecutive_faults: 0,
            consecutive_clean: 0,
            frames_observed: 0,
            transitions: Vec::new(),
        })
    }

    /// Feeds one per-frame event and returns the updated state.
    pub fn observe(&mut self, event: HealthEvent) -> HealthState {
        let frame = self.frames_observed;
        self.frames_observed += 1;
        if event.is_fault() {
            self.consecutive_faults += 1;
            self.consecutive_clean = 0;
            let escalated = match self.state {
                HealthState::Healthy if self.consecutive_faults >= self.config.degrade_after => {
                    Some(HealthState::Degraded)
                }
                HealthState::Degraded if self.consecutive_faults >= self.config.failsafe_after => {
                    Some(HealthState::FailSafe)
                }
                _ => None,
            };
            if let Some(next) = escalated {
                self.transition(frame, next);
            }
        } else {
            self.consecutive_clean += 1;
            self.consecutive_faults = 0;
            if self.consecutive_clean >= self.config.recover_after {
                let next = match self.state {
                    HealthState::FailSafe => Some(HealthState::Degraded),
                    HealthState::Degraded => Some(HealthState::Healthy),
                    HealthState::Healthy => None,
                };
                if let Some(next) = next {
                    self.transition(frame, next);
                    // Each recovery step must be re-earned from scratch.
                    self.consecutive_clean = 0;
                }
            }
        }
        self.state
    }

    fn transition(&mut self, frame: u64, to: HealthState) {
        self.transitions.push(HealthTransition {
            frame,
            from: self.state,
            to,
        });
        self.state = to;
    }

    /// The current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The thresholds in force.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Every transition so far, in order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// The most severe state the stream has visited.
    pub fn worst_state(&self) -> HealthState {
        self.transitions
            .iter()
            .map(|t| t.to)
            .max()
            .unwrap_or(HealthState::Healthy)
            .max(self.state)
    }

    /// Total events observed.
    pub fn frames_observed(&self) -> u64 {
        self.frames_observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HealthTracker {
        HealthTracker::new(HealthConfig {
            degrade_after: 2,
            failsafe_after: 4,
            recover_after: 3,
        })
        .unwrap()
    }

    #[test]
    fn config_is_validated() {
        assert!(HealthTracker::new(HealthConfig {
            degrade_after: 0,
            ..HealthConfig::default()
        })
        .is_err());
        assert!(HealthTracker::new(HealthConfig {
            recover_after: 0,
            ..HealthConfig::default()
        })
        .is_err());
        assert!(HealthTracker::new(HealthConfig {
            degrade_after: 5,
            failsafe_after: 3,
            recover_after: 1,
        })
        .is_err());
    }

    #[test]
    fn single_fault_does_not_degrade() {
        let mut h = tracker();
        assert_eq!(h.observe(HealthEvent::GateRejected), HealthState::Healthy);
        assert_eq!(h.observe(HealthEvent::Clean), HealthState::Healthy);
        assert_eq!(h.observe(HealthEvent::ScoreFailed), HealthState::Healthy);
        assert!(h.transitions().is_empty());
    }

    #[test]
    fn sustained_faults_escalate_through_both_levels() {
        let mut h = tracker();
        assert_eq!(h.observe(HealthEvent::GateRejected), HealthState::Healthy);
        assert_eq!(h.observe(HealthEvent::ScoreFailed), HealthState::Degraded);
        assert_eq!(h.observe(HealthEvent::GateRejected), HealthState::Degraded);
        assert_eq!(
            h.observe(HealthEvent::DeadlineOverrun),
            HealthState::FailSafe
        );
        assert_eq!(
            h.transitions()
                .iter()
                .map(|t| (t.frame, t.to))
                .collect::<Vec<_>>(),
            vec![(1, HealthState::Degraded), (3, HealthState::FailSafe)]
        );
        assert_eq!(h.worst_state(), HealthState::FailSafe);
    }

    #[test]
    fn recovery_is_stepwise_with_hysteresis() {
        let mut h = tracker();
        for _ in 0..4 {
            h.observe(HealthEvent::GateRejected);
        }
        assert_eq!(h.state(), HealthState::FailSafe);
        // Two clean frames are not enough (recover_after = 3).
        h.observe(HealthEvent::Clean);
        h.observe(HealthEvent::Clean);
        assert_eq!(h.state(), HealthState::FailSafe);
        // Third clean frame steps down ONE level only.
        assert_eq!(h.observe(HealthEvent::Clean), HealthState::Degraded);
        // The next recovery run must start over.
        h.observe(HealthEvent::Clean);
        h.observe(HealthEvent::Clean);
        assert_eq!(h.state(), HealthState::Degraded);
        assert_eq!(h.observe(HealthEvent::Clean), HealthState::Healthy);
        assert_eq!(h.worst_state(), HealthState::FailSafe);
        assert_eq!(h.transitions().len(), 4);
    }

    #[test]
    fn interleaved_faults_reset_recovery_progress() {
        let mut h = tracker();
        h.observe(HealthEvent::GateRejected);
        h.observe(HealthEvent::GateRejected);
        assert_eq!(h.state(), HealthState::Degraded);
        h.observe(HealthEvent::Clean);
        h.observe(HealthEvent::Clean);
        h.observe(HealthEvent::GateRejected); // recovery run broken
        h.observe(HealthEvent::Clean);
        h.observe(HealthEvent::Clean);
        assert_eq!(h.state(), HealthState::Degraded);
        assert_eq!(h.observe(HealthEvent::Clean), HealthState::Healthy);
    }

    #[test]
    fn faults_in_degraded_do_not_double_count_toward_failsafe() {
        // failsafe_after counts consecutive faults, so a fault run broken
        // by a clean frame starts over.
        let mut h = tracker();
        h.observe(HealthEvent::GateRejected);
        h.observe(HealthEvent::GateRejected);
        h.observe(HealthEvent::GateRejected);
        h.observe(HealthEvent::Clean);
        h.observe(HealthEvent::GateRejected);
        h.observe(HealthEvent::GateRejected);
        h.observe(HealthEvent::GateRejected);
        assert_eq!(h.state(), HealthState::Degraded);
        h.observe(HealthEvent::GateRejected);
        assert_eq!(h.state(), HealthState::FailSafe);
    }

    #[test]
    fn names_severity_and_ordering() {
        assert_eq!(HealthState::Healthy.name(), "healthy");
        assert_eq!(HealthState::Degraded.name(), "degraded");
        assert_eq!(HealthState::FailSafe.name(), "fail-safe");
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::FailSafe);
        assert_eq!(HealthState::FailSafe.severity(), 2);
        assert!(HealthEvent::GateRejected.is_fault());
        assert!(!HealthEvent::Clean.is_fault());
    }
}
