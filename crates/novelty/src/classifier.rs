//! The one-class classifier: a reconstruction autoencoder.
//!
//! Following the paper (§III.A), the classifier is a feed-forward
//! autoencoder with ReLU hidden layers and a sigmoid output, trained on
//! flattened grayscale images normalised to `[0, 1]`. Its anomaly score
//! is the reconstruction similarity: MSE for the baselines (higher =
//! worse) or SSIM for the paper's method (lower = worse).

use metrics::SsimConfig;
use ndtensor::Tensor;
use neural::loss::{Loss, MseLoss, SsimDissimilarityLoss};
use neural::models::autoencoder;
use neural::optim::Adam;
use neural::{fit_recorded, Network, TrainConfig};
use serde::{Deserialize, Serialize};
use vision::Image;

use crate::{Direction, NoveltyError, Result};

/// Which reconstruction objective (and scoring metric) the classifier
/// uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReconstructionObjective {
    /// Pixel-wise mean squared error (Richter & Roy / ablation).
    Mse,
    /// Structural similarity with the given window (the paper's method).
    Ssim {
        /// Sliding-window side length (paper: 11).
        window: usize,
    },
}

impl ReconstructionObjective {
    /// The paper's SSIM objective with its 11×11 window.
    pub fn paper_ssim() -> Self {
        ReconstructionObjective::Ssim { window: 11 }
    }

    /// The direction in which scores under this objective indicate
    /// novelty.
    pub fn direction(&self) -> Direction {
        match self {
            ReconstructionObjective::Mse => Direction::HigherIsNovel,
            ReconstructionObjective::Ssim { .. } => Direction::LowerIsNovel,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ReconstructionObjective::Mse => "mse",
            ReconstructionObjective::Ssim { .. } => "ssim",
        }
    }

    fn ssim_config(&self) -> Option<SsimConfig> {
        match self {
            ReconstructionObjective::Mse => None,
            ReconstructionObjective::Ssim { window } => Some(SsimConfig::with_window(*window)),
        }
    }
}

/// Training hyper-parameters for the autoencoder classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Hidden-layer widths (paper: `[64, 16, 64]`).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// For SSIM objectives: number of *leading* epochs trained with MSE
    /// before switching to SSIM. SSIM is non-convex with a strong
    /// "reconstruct everything as flat darkness" local minimum; a short
    /// MSE warm-up reliably escapes it (without this, final quality
    /// varies wildly with the seed). Ignored for MSE objectives.
    pub warmup_epochs: usize,
    /// Mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// The reconstruction objective.
    pub objective: ReconstructionObjective,
}

impl ClassifierConfig {
    /// The paper's configuration: 64/16/64 hidden, batch 32, SSIM loss.
    /// Epoch count and warm-up are ours (the paper reports neither);
    /// see `DESIGN.md`.
    pub fn paper() -> Self {
        ClassifierConfig {
            hidden: vec![64, 16, 64],
            epochs: 60,
            warmup_epochs: 15,
            batch_size: 32,
            learning_rate: 1e-3,
            objective: ReconstructionObjective::paper_ssim(),
        }
    }

    /// The paper's architecture trained with MSE instead (baselines).
    pub fn paper_with_mse() -> Self {
        ClassifierConfig {
            objective: ReconstructionObjective::Mse,
            ..Self::paper()
        }
    }
}

/// A trained autoencoder one-class classifier over `height × width`
/// grayscale images.
#[derive(Debug)]
pub struct AutoencoderClassifier {
    network: Network,
    height: usize,
    width: usize,
    objective: ReconstructionObjective,
}

impl AutoencoderClassifier {
    /// Trains the classifier on in-distribution images.
    ///
    /// # Errors
    ///
    /// Fails when `images` is empty, images disagree in size, or the SSIM
    /// window does not fit the images.
    pub fn train(images: &[Image], config: &ClassifierConfig, seed: u64) -> Result<Self> {
        Self::train_recorded(images, config, seed, obs::noop())
    }

    /// [`AutoencoderClassifier::train`] with observability: warm-up and
    /// main epochs append (in order) to the recorder's `epoch_loss` /
    /// `epoch_secs` series, and `epochs` / `batches` count the run.
    /// Callers namespace these via [`obs::Scoped`] (the pipeline records
    /// them as `ae-train.*`).
    ///
    /// Recording never changes the trained weights.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AutoencoderClassifier::train`].
    pub fn train_recorded(
        images: &[Image],
        config: &ClassifierConfig,
        seed: u64,
        recorder: &dyn obs::Recorder,
    ) -> Result<Self> {
        let (height, width) = check_images("AutoencoderClassifier::train", images)?;
        let input_dim = height * width;
        let mut network = autoencoder(input_dim, &config.hidden, seed)?;
        let data = stack_images(images)?;
        let mut opt = Adam::new(config.learning_rate)?;

        // Optional MSE warm-up for SSIM objectives (see ClassifierConfig).
        let warmup = match config.objective {
            ReconstructionObjective::Ssim { .. } => config.warmup_epochs.min(config.epochs),
            ReconstructionObjective::Mse => 0,
        };
        if warmup > 0 {
            let warm_cfg = TrainConfig::new(warmup, config.batch_size)
                .with_seed(seed ^ 0xEA)
                .with_grad_clip(10.0);
            fit_recorded(
                &mut network,
                &MseLoss::new(),
                &mut opt,
                &data,
                &data,
                &warm_cfg,
                recorder,
            )?;
        }

        let main_epochs = config.epochs - warmup;
        if main_epochs > 0 {
            let loss: Box<dyn Loss> = match config.objective.ssim_config() {
                None => Box::new(MseLoss::new()),
                Some(ssim_cfg) => Box::new(SsimDissimilarityLoss::new(height, width, ssim_cfg)?),
            };
            let train_cfg = TrainConfig::new(main_epochs, config.batch_size)
                .with_seed(seed ^ 0xAE)
                .with_grad_clip(10.0);
            // Autoencoder: inputs are their own targets.
            fit_recorded(
                &mut network,
                loss.as_ref(),
                &mut opt,
                &data,
                &data,
                &train_cfg,
                recorder,
            )?;
        }

        Ok(AutoencoderClassifier {
            network,
            height,
            width,
            objective: config.objective.clone(),
        })
    }

    /// Wraps an already-trained network (used by deserialization).
    ///
    /// # Errors
    ///
    /// Fails when the network rejects a probe image of the given size.
    pub fn from_parts(
        network: Network,
        height: usize,
        width: usize,
        objective: ReconstructionObjective,
    ) -> Result<Self> {
        let probe = Tensor::zeros([1, height * width]);
        let out = network.forward(&probe)?;
        if out.shape().dims() != [1, height * width] {
            return Err(NoveltyError::invalid(
                "AutoencoderClassifier::from_parts",
                format!(
                    "network maps {} inputs to {}, expected identity dimensions",
                    height * width,
                    out.shape()
                ),
            ));
        }
        Ok(AutoencoderClassifier {
            network,
            height,
            width,
            objective,
        })
    }

    /// Image height this classifier expects.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width this classifier expects.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The objective (and scoring metric) in use.
    pub fn objective(&self) -> &ReconstructionObjective {
        &self.objective
    }

    /// The underlying network (for serialization and inspection).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Reconstructs an image through the autoencoder.
    ///
    /// # Errors
    ///
    /// Fails when the image size differs from the training size.
    pub fn reconstruct(&self, image: &Image) -> Result<Image> {
        self.check_input(image)?;
        let flat = image.tensor().reshape([1, self.height * self.width])?;
        let out = self.network.forward(&flat)?;
        Ok(Image::from_tensor(out.reshape([self.height, self.width])?)?)
    }

    /// Scores an image under the classifier's objective: MSE (higher =
    /// more novel) or mean SSIM (lower = more novel).
    ///
    /// # Errors
    ///
    /// Fails when the image size differs from the training size.
    pub fn score(&self, image: &Image) -> Result<f32> {
        let recon = self.reconstruct(image)?;
        match self.objective.ssim_config() {
            None => Ok(metrics::mse(image, &recon)?),
            Some(cfg) => Ok(metrics::ssim(image, &recon, &cfg)?),
        }
    }

    /// Scores several same-sized images in one batched forward pass:
    /// the images are stacked into an `[N, H·W]` matrix, reconstructed
    /// via [`Network::forward_batch`] (amortizing packed-GEMM panel
    /// packing across the whole batch instead of repaying it per frame),
    /// and the metric is computed per row on the work pool.
    ///
    /// Every network layer treats batch rows independently and the
    /// packed kernels never reorder the additions inside one output
    /// element, so score `i` is bit-identical to
    /// [`AutoencoderClassifier::score`] on image `i` — at any thread
    /// count. The serving layer's cross-tenant mega-batch and the
    /// isolation proofs in `tests/serve_isolation.rs` rely on this.
    ///
    /// # Errors
    ///
    /// Fails when any image's size differs from the training size.
    pub fn score_many(&self, images: &[&Image]) -> Result<Vec<f32>> {
        if images.is_empty() {
            return Ok(Vec::new());
        }
        for img in images {
            self.check_input(img)?;
        }
        let dim = self.height * self.width;
        let mut data = Vec::with_capacity(images.len() * dim); // sncheck:allow(hot-path-transitive-alloc): one packed input buffer per batch call, amortized across all frames in it
        for img in images {
            data.extend_from_slice(img.as_slice());
        }
        let stacked = Tensor::from_vec([images.len(), dim], data)?;
        let out = self.network.forward_batch(&stacked)?;
        let out_slice = out.as_slice();
        // Per-row metric: rows are independent, so fan out over the pool
        // (windowed SSIM is a real share of the per-frame cost).
        let work = images.len().saturating_mul(dim).saturating_mul(32);
        let scores =
            ndtensor::par::try_parallel_map::<f32, NoveltyError>(images.len(), work, |i| {
                let row = &out_slice[i * dim..(i + 1) * dim];
                let recon =
                    Image::from_tensor(Tensor::from_slice([self.height, self.width], row)?)?;
                match self.objective.ssim_config() {
                    None => Ok(metrics::mse(images[i], &recon)?),
                    Some(cfg) => Ok(metrics::ssim(images[i], &recon, &cfg)?),
                }
            })?;
        Ok(scores)
    }

    /// The direction in which this classifier's scores indicate novelty.
    pub fn direction(&self) -> Direction {
        self.objective.direction()
    }

    fn check_input(&self, image: &Image) -> Result<()> {
        if image.height() != self.height || image.width() != self.width {
            return Err(NoveltyError::invalid(
                "AutoencoderClassifier",
                format!(
                    "image {}x{} does not match classifier size {}x{}",
                    image.height(),
                    image.width(),
                    self.height,
                    self.width
                ),
            ));
        }
        Ok(())
    }
}

fn check_images(op: &'static str, images: &[Image]) -> Result<(usize, usize)> {
    let first = images
        .first()
        .ok_or_else(|| NoveltyError::invalid(op, "need at least one image"))?;
    let (h, w) = (first.height(), first.width());
    for (i, img) in images.iter().enumerate() {
        if img.height() != h || img.width() != w {
            return Err(NoveltyError::invalid(
                op,
                format!(
                    "image {i} is {}x{}, expected {h}x{w}",
                    img.height(),
                    img.width()
                ),
            ));
        }
    }
    Ok((h, w))
}

/// Stacks images into an `[N, H·W]` training matrix.
pub(crate) fn stack_images(images: &[Image]) -> Result<Tensor> {
    let (h, w) = check_images("stack_images", images)?;
    let mut data = Vec::with_capacity(images.len() * h * w);
    for img in images {
        data.extend_from_slice(img.as_slice());
    }
    Ok(Tensor::from_vec([images.len(), h * w], data)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small structured images: two clusters of patterns.
    fn pattern_images(n: usize, phase: f32) -> Vec<Image> {
        (0..n)
            .map(|i| {
                Image::from_fn(12, 16, |y, x| {
                    let t = (x as f32 * 0.5 + y as f32 * 0.3 + phase + i as f32 * 0.05).sin();
                    0.5 + 0.35 * t
                })
                .unwrap()
            })
            .collect()
    }

    fn quick_config(objective: ReconstructionObjective) -> ClassifierConfig {
        ClassifierConfig {
            hidden: vec![16, 8, 16],
            epochs: 40,
            warmup_epochs: 8,
            batch_size: 8,
            learning_rate: 3e-3,
            objective,
        }
    }

    #[test]
    fn mse_classifier_learns_reconstruction() {
        let images = pattern_images(24, 0.0);
        let clf =
            AutoencoderClassifier::train(&images, &quick_config(ReconstructionObjective::Mse), 1)
                .unwrap();
        let score = clf.score(&images[0]).unwrap();
        assert!(score < 0.02, "in-class MSE too high: {score}");
        assert_eq!(clf.direction(), Direction::HigherIsNovel);
        let recon = clf.reconstruct(&images[0]).unwrap();
        assert_eq!((recon.height(), recon.width()), (12, 16));
    }

    #[test]
    fn ssim_classifier_scores_in_class_high() {
        let images = pattern_images(24, 0.0);
        let clf = AutoencoderClassifier::train(
            &images,
            &quick_config(ReconstructionObjective::Ssim { window: 5 }),
            2,
        )
        .unwrap();
        let in_class = clf.score(&images[1]).unwrap();
        assert!(in_class > 0.35, "in-class SSIM too low: {in_class}");
        assert_eq!(clf.direction(), Direction::LowerIsNovel);
    }

    #[test]
    fn out_of_class_scores_worse_than_in_class() {
        let images = pattern_images(24, 0.0);
        let clf =
            AutoencoderClassifier::train(&images, &quick_config(ReconstructionObjective::Mse), 3)
                .unwrap();
        let in_score = clf.score(&images[0]).unwrap();
        // Novel: inverted-phase pattern (structurally different).
        let novel = Image::from_fn(12, 16, |y, x| {
            0.5 + 0.35 * ((x as f32 * 2.1 - y as f32 * 1.7).cos())
        })
        .unwrap();
        let out_score = clf.score(&novel).unwrap();
        assert!(
            out_score > in_score * 2.0,
            "in {in_score} vs out {out_score}"
        );
    }

    #[test]
    fn validates_inputs() {
        assert!(
            AutoencoderClassifier::train(&[], &quick_config(ReconstructionObjective::Mse), 0)
                .is_err()
        );
        let mixed = vec![Image::new(4, 4).unwrap(), Image::new(4, 5).unwrap()];
        assert!(AutoencoderClassifier::train(
            &mixed,
            &quick_config(ReconstructionObjective::Mse),
            0
        )
        .is_err());
        // SSIM window too large for the images.
        let small = vec![Image::new(4, 4).unwrap(); 4];
        assert!(AutoencoderClassifier::train(
            &small,
            &quick_config(ReconstructionObjective::Ssim { window: 11 }),
            0
        )
        .is_err());
    }

    #[test]
    fn score_rejects_wrong_size() {
        let images = pattern_images(8, 0.0);
        let clf =
            AutoencoderClassifier::train(&images, &quick_config(ReconstructionObjective::Mse), 4)
                .unwrap();
        let wrong = Image::new(5, 5).unwrap();
        assert!(clf.score(&wrong).is_err());
        assert!(clf.reconstruct(&wrong).is_err());
    }

    #[test]
    fn stack_images_layout() {
        let imgs = vec![
            Image::from_fn(2, 2, |y, x| (y * 2 + x) as f32).unwrap(),
            Image::from_fn(2, 2, |y, x| (y * 2 + x) as f32 + 10.0).unwrap(),
        ];
        let t = stack_images(&imgs).unwrap();
        assert_eq!(t.shape().dims(), &[2, 4]);
        assert_eq!(t.as_slice(), &[0., 1., 2., 3., 10., 11., 12., 13.]);
    }

    #[test]
    fn objective_metadata() {
        assert_eq!(ReconstructionObjective::Mse.name(), "mse");
        assert_eq!(ReconstructionObjective::paper_ssim().name(), "ssim");
        assert_eq!(
            ReconstructionObjective::paper_ssim(),
            ReconstructionObjective::Ssim { window: 11 }
        );
        assert_eq!(ClassifierConfig::paper().hidden, vec![64, 16, 64]);
        assert_eq!(ClassifierConfig::paper().batch_size, 32);
        assert_eq!(
            ClassifierConfig::paper_with_mse().objective,
            ReconstructionObjective::Mse
        );
    }

    #[test]
    fn from_parts_validates_geometry() {
        let net = autoencoder(16, &[4], 0).unwrap();
        assert!(AutoencoderClassifier::from_parts(net, 4, 4, ReconstructionObjective::Mse).is_ok());
        let net = autoencoder(16, &[4], 0).unwrap();
        assert!(
            AutoencoderClassifier::from_parts(net, 4, 5, ReconstructionObjective::Mse).is_err()
        );
    }
}
