//! Ensemble detection: several calibrated backends, one fused verdict.
//!
//! Each member is a full [`NoveltyDetector`] — its own backend, its own
//! 99th-percentile threshold, its own training-score ECDF. Fusion works
//! on the only scale the members share: every member's score is mapped
//! through its *own* calibration ECDF to a percentile rank, the rank is
//! reoriented so higher always means more novel
//! ([`BackendScore::oriented_rank`]), and the fused score is the mean
//! of the **two strongest** oriented ranks (top-2 corroboration). A
//! plain mean lets weak members drag a confident one back toward
//! chance, while a pure max saturates on a single calibration outlier;
//! averaging the two strongest ranks needs a second member to
//! corroborate before the fused score maxes out, and empirically
//! dominates both on the cross-domain grid. The fused *decision* is a
//! vote: the ensemble flags a frame novel when at least `quorum`
//! members do (each member voting with its own calibrated threshold,
//! exactly as it would alone).
//!
//! Determinism: [`fuse_verdict`] sorts the member scores by backend id,
//! then selects the top ranks under `f32::total_cmp` and accumulates in
//! that fixed order, so the fused verdict is bit-identical no matter
//! what order the members were scored in.

use neural::serialize::clone_network;
use obs::{Recorder, Scoped};
use simdrive::DrivingDataset;
use vision::Image;

use crate::backend::{BackendKind, Detector};
use crate::pipeline::{BackendScore, NoveltyDetector, NoveltyDetectorBuilder, Verdict};
use crate::{NoveltyError, Result};

/// Fuses per-member [`BackendScore`]s into one ensemble [`Verdict`].
///
/// The fusion is a pure function of the (unordered) set of member
/// scores and the quorum:
///
/// * `novel_votes` counts members whose own threshold flagged the frame;
/// * the verdict is novel iff `novel_votes >= quorum`;
/// * `score` (= `percentile_rank`) is the mean of the `min(2, n)`
///   largest oriented ranks — top-2 corroboration fusion. Ranks are
///   ordered with `f32::total_cmp` over the backend-id-sorted members,
///   so the selection and the sum are independent of input order;
/// * `threshold` reports the vote bar on the same `[0, 100]` scale:
///   `100 * quorum / total_votes`.
///
/// An empty slice fuses to a non-novel verdict with zero votes.
pub fn fuse_verdict(scores: &[BackendScore], quorum: u32) -> Verdict {
    let mut members = scores.to_vec(); // sncheck:allow(hot-path-transitive-alloc): verdict fusion sorts a copy of the 2-4 member scores; the input slice is caller-owned and must stay unsorted
    members.sort_by(|a, b| a.backend.cmp(b.backend));
    let total_votes = members.len() as u32;
    let novel_votes = members.iter().filter(|s| s.is_novel).count() as u32;
    let fused = if members.is_empty() {
        0.0
    } else {
        let mut ranks: Vec<f32> = members.iter().map(BackendScore::oriented_rank).collect();
        // Descending total order; stable on the id-sorted members, so
        // the top-2 pick (and the sum order) is input-order-free.
        ranks.sort_by(|a, b| b.total_cmp(a));
        ranks.truncate(2);
        let mut sum = 0.0f32;
        for r in &ranks {
            sum += r;
        }
        sum / ranks.len() as f32
    };
    let threshold = if total_votes == 0 {
        100.0
    } else {
        100.0 * quorum as f32 / total_votes as f32
    };
    Verdict {
        is_novel: novel_votes >= quorum && total_votes > 0,
        score: fused,
        threshold,
        direction: crate::Direction::HigherIsNovel,
        percentile_rank: fused,
        backend: "ensemble",
        novel_votes,
        total_votes,
        backends: members,
    }
}

/// Several calibrated detectors fused by vote: novel when at least
/// `quorum` members flag the frame. Members are kept sorted by backend
/// id, so every fused verdict lists them in the same order.
#[derive(Debug)]
pub struct EnsembleDetector {
    members: Vec<NoveltyDetector>,
    quorum: u32,
}

impl EnsembleDetector {
    /// Assembles an ensemble with a majority quorum
    /// (`n / 2 + 1` of `n` members).
    ///
    /// # Errors
    ///
    /// Fails on zero members, duplicate backends, or mismatched frame
    /// geometries.
    pub fn new(members: Vec<NoveltyDetector>) -> Result<Self> {
        let quorum = members.len() as u32 / 2 + 1;
        Self::with_quorum(members, quorum)
    }

    /// Assembles an ensemble with an explicit quorum.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EnsembleDetector::new`], plus a quorum
    /// outside `[1, members.len()]`.
    pub fn with_quorum(mut members: Vec<NoveltyDetector>, quorum: u32) -> Result<Self> {
        if members.is_empty() {
            return Err(NoveltyError::invalid(
                "EnsembleDetector",
                "an ensemble needs at least one member",
            ));
        }
        if quorum == 0 || quorum as usize > members.len() {
            return Err(NoveltyError::invalid(
                "EnsembleDetector",
                format!("quorum must be in [1, {}], got {quorum}", members.len()),
            ));
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if members[i].kind() == members[j].kind() {
                    return Err(NoveltyError::invalid(
                        "EnsembleDetector",
                        format!("duplicate {} member", members[i].kind().id()),
                    ));
                }
            }
            if members[i].input_size() != members[0].input_size() {
                return Err(NoveltyError::invalid(
                    "EnsembleDetector",
                    format!(
                        "member {} expects {:?} frames but member {} expects {:?}",
                        members[i].kind().id(),
                        members[i].input_size(),
                        members[0].kind().id(),
                        members[0].input_size()
                    ),
                ));
            }
        }
        members.sort_by(|a, b| a.kind().id().cmp(b.kind().id()));
        Ok(EnsembleDetector { members, quorum })
    }

    /// The member detectors, sorted by backend id.
    pub fn members(&self) -> &[NoveltyDetector] {
        &self.members
    }

    /// How many member votes flag a frame novel.
    pub fn quorum(&self) -> u32 {
        self.quorum
    }

    /// Trains one member per requested backend from a shared base
    /// configuration and fuses them with a majority quorum.
    ///
    /// When any member needs the steering CNN it is trained **once**
    /// (under the usual `cnn-train` stage) and cloned into each member,
    /// which is bit-identical to training it per member — the clone is
    /// an exact parameter copy and the training seeds derive from the
    /// shared base seed. Each member then trains under a
    /// `backend-train-<id>` stage, with its internal stages scoped as
    /// `<id>.*`.
    ///
    /// # Errors
    ///
    /// Fails on an empty or duplicated backend list, or when any member
    /// fails to train.
    pub fn train_recorded(
        base: &NoveltyDetectorBuilder,
        kinds: &[BackendKind],
        dataset: &DrivingDataset,
        recorder: &dyn Recorder,
    ) -> Result<EnsembleDetector> {
        if kinds.is_empty() {
            return Err(NoveltyError::invalid(
                "EnsembleDetector",
                "an ensemble needs at least one backend",
            ));
        }
        let needs_cnn = kinds.iter().any(|k| *k != BackendKind::RawMse);
        let shared_cnn = if needs_cnn {
            let (train_split, _held_out) = dataset.split(base.train_fraction_value());
            Some(base.train_steering_cnn_recorded(&train_split, recorder)?)
        } else {
            None
        };
        let mut members = Vec::with_capacity(kinds.len());
        for kind in kinds {
            let pretrained = match &shared_cnn {
                Some(net) => Some(clone_network(net)?),
                None => None,
            };
            let scoped = Scoped::new(recorder, kind.id());
            let stage = format!("backend-train-{}", kind.id());
            let member = obs::time(recorder, &stage, || {
                base.clone()
                    .backend(*kind)
                    .train_with_cnn_recorded(dataset, pretrained, &scoped)
            })?;
            members.push(member);
        }
        EnsembleDetector::new(members)
    }

    /// [`EnsembleDetector::train_recorded`] without observability.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EnsembleDetector::train_recorded`].
    pub fn train(
        base: &NoveltyDetectorBuilder,
        kinds: &[BackendKind],
        dataset: &DrivingDataset,
    ) -> Result<EnsembleDetector> {
        Self::train_recorded(base, kinds, dataset, obs::noop())
    }
}

impl Detector for EnsembleDetector {
    fn input_size(&self) -> (usize, usize) {
        self.members[0].input_size()
    }

    fn classify(&self, image: &Image) -> Result<Verdict> {
        let mut scores = Vec::with_capacity(self.members.len()); // sncheck:allow(hot-path-transitive-alloc): one score slot per ensemble member (2-4), per verdict
        for member in &self.members {
            let score = member.score(image)?;
            scores.push(member.backend_score(score));
        }
        Ok(fuse_verdict(&scores, self.quorum))
    }

    fn classify_batch_recorded(
        &self,
        images: &[Image],
        recorder: &dyn Recorder,
    ) -> Result<Vec<Verdict>> {
        // Score the whole batch per member (each under its own scoped
        // `<id>.scoring` stage), then fuse column-wise. The per-member
        // batches are bit-identical to scoring each image alone, so the
        // fused verdicts match `classify` exactly.
        let mut columns = Vec::with_capacity(self.members.len());
        for member in &self.members {
            let scoped = Scoped::new(recorder, member.kind().id());
            columns.push(member.score_batch_recorded(images, &scoped)?);
        }
        let mut fused = Vec::with_capacity(images.len());
        let mut scores = Vec::with_capacity(self.members.len());
        for i in 0..images.len() {
            scores.clear();
            for (member, column) in self.members.iter().zip(&columns) {
                scores.push(member.backend_score(column[i]));
            }
            fused.push(fuse_verdict(&scores, self.quorum));
        }
        Ok(fused)
    }

    fn label(&self) -> String {
        let ids: Vec<&str> = self.members.iter().map(|m| m.kind().id()).collect();
        format!("ensemble({})", ids.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierConfig, Direction, ReconstructionObjective};
    use simdrive::DatasetConfig;

    fn tiny_dataset(seed: u64) -> DrivingDataset {
        DatasetConfig::outdoor()
            .with_len(24)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(seed)
    }

    fn fast_base() -> NoveltyDetectorBuilder {
        NoveltyDetectorBuilder::paper()
            .classifier_config(ClassifierConfig {
                hidden: vec![16, 8, 16],
                epochs: 4,
                warmup_epochs: 1,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Ssim { window: 7 },
            })
            .cnn_epochs(1)
            .seed(1)
    }

    fn score(backend: &'static str, rank: f32, novel: bool) -> BackendScore {
        BackendScore {
            backend,
            score: rank,
            threshold: 0.5,
            direction: Direction::HigherIsNovel,
            percentile_rank: rank,
            is_novel: novel,
        }
    }

    #[test]
    fn fusion_is_order_independent_and_votes_count() {
        let a = score("raw+mse", 10.0, false);
        let b = score("vbp+ssim", 90.0, true);
        let c = score("model-char", 80.0, true);
        let forward = fuse_verdict(&[a, b, c], 2);
        let shuffled = fuse_verdict(&[c, a, b], 2);
        assert_eq!(forward, shuffled);
        assert!(forward.is_novel);
        assert_eq!(forward.novel_votes, 2);
        assert_eq!(forward.total_votes, 3);
        assert_eq!(forward.backend, "ensemble");
        // Top-2 corroboration: the weakest rank (10) is excluded.
        assert_eq!(forward.score, (80.0 + 90.0) / 2.0);
        // Members are listed in backend-id order.
        let ids: Vec<&str> = forward.backends.iter().map(|s| s.backend).collect();
        assert_eq!(ids, ["model-char", "raw+mse", "vbp+ssim"]);
        // Below quorum: not novel.
        assert!(!fuse_verdict(&[a, b, c], 3).is_novel);
        // Empty fuse: inert verdict.
        let empty = fuse_verdict(&[], 1);
        assert!(!empty.is_novel);
        assert_eq!(empty.total_votes, 0);
    }

    #[test]
    fn lower_is_novel_ranks_are_reoriented() {
        let mut s = score("vbp+ssim", 5.0, true);
        s.direction = Direction::LowerIsNovel;
        // Rank 5 under LowerIsNovel means deep in the novel tail.
        assert_eq!(s.oriented_rank(), 95.0);
        let v = fuse_verdict(&[s], 1);
        assert_eq!(v.score, 95.0);
        assert!(v.is_novel);
    }

    #[test]
    fn ensemble_trains_fuses_and_validates() {
        let data = tiny_dataset(5);
        let kinds = [BackendKind::RawMse, BackendKind::VbpSsim];
        let ensemble = EnsembleDetector::train(&fast_base(), &kinds, &data).unwrap();
        assert_eq!(ensemble.members().len(), 2);
        assert_eq!(ensemble.quorum(), 2);
        assert_eq!(ensemble.input_size(), (40, 80));
        assert_eq!(ensemble.label(), "ensemble(raw+mse,vbp+ssim)");

        // The shared-CNN member is bit-identical to training standalone.
        let standalone = fast_base().train(&data).unwrap();
        let vbp_member = &ensemble.members()[1];
        assert_eq!(vbp_member.kind(), BackendKind::VbpSsim);
        assert_eq!(vbp_member.training_scores(), standalone.training_scores());
        assert_eq!(
            vbp_member.threshold().value(),
            standalone.threshold().value()
        );

        // Fused verdicts carry every member and match batch classification.
        let img = &data.frames()[0].image;
        let v = ensemble.classify(img).unwrap();
        assert_eq!(v.total_votes, 2);
        assert_eq!(v.backends.len(), 2);
        let batch = ensemble.classify_batch(std::slice::from_ref(img)).unwrap();
        assert_eq!(batch[0], v);

        // Validation: empty, bad quorum, duplicate members.
        assert!(EnsembleDetector::new(Vec::new()).is_err());
        assert!(EnsembleDetector::train(&fast_base(), &[], &data).is_err());
        let dup_a = fast_base().train(&data).unwrap();
        let dup_b = fast_base().train(&data).unwrap();
        assert!(EnsembleDetector::new(vec![dup_a, dup_b]).is_err());
        let lone = fast_base().train(&data).unwrap();
        assert!(EnsembleDetector::with_quorum(vec![lone], 2).is_err());
    }
}
