//! The end-to-end novelty-detection pipeline (paper Fig. 1).
//!
//! `training images → steering CNN → VBP masks → autoencoder → threshold`.
//!
//! [`NoveltyDetectorBuilder`] owns every knob; its presets reproduce the
//! three pipelines the paper compares in Fig. 5:
//!
//! | preset | preprocessing | objective | role |
//! |---|---|---|---|
//! | [`NoveltyDetectorBuilder::paper`] | VBP | SSIM | the paper's method |
//! | [`NoveltyDetectorBuilder::vbp_mse_ablation`] | VBP | MSE | middle histogram |
//! | [`NoveltyDetectorBuilder::richter_roy`] | raw | MSE | prior work (reference 9) |

use metrics::ecdf::Ecdf;
use ndtensor::Tensor;
use neural::loss::MseLoss;
use neural::models::{pilotnet, PilotNetConfig};
use neural::optim::Adam;
use neural::{fit_recorded, Network, TrainConfig};
use obs::{Recorder, Scoped, Span};
use saliency::{visual_backprop, visual_backprop_batch_recorded};
use serde::{Deserialize, Serialize};
use simdrive::DrivingDataset;
use vision::Image;

use crate::classifier::stack_images;
use crate::{
    AutoencoderClassifier, Calibrator, ClassifierConfig, Direction, NoveltyError,
    ReconstructionObjective, Result, Threshold,
};

/// The preprocessing layer: feed raw frames to the one-class classifier,
/// or VisualBackProp masks computed on the trained steering CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preprocessing {
    /// Raw grayscale frames (Richter & Roy baseline).
    Raw,
    /// VisualBackProp saliency masks (the paper's preprocessing).
    Vbp,
}

impl Preprocessing {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Preprocessing::Raw => "raw",
            Preprocessing::Vbp => "vbp",
        }
    }
}

/// The three pipeline variants compared in the paper's Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineKind {
    /// Raw images + MSE autoencoder (Richter & Roy, reference 9).
    RawMse,
    /// VBP masks + MSE autoencoder (ablation).
    VbpMse,
    /// VBP masks + SSIM autoencoder (the paper's method).
    VbpSsim,
}

impl PipelineKind {
    /// Short name used in figure outputs (matches the paper's labels).
    pub fn name(&self) -> &'static str {
        match self {
            PipelineKind::RawMse => "raw+mse",
            PipelineKind::VbpMse => "vbp+mse",
            PipelineKind::VbpSsim => "vbp+ssim",
        }
    }

    /// All three variants in Fig. 5's left-to-right order.
    pub fn all() -> [PipelineKind; 3] {
        [
            PipelineKind::RawMse,
            PipelineKind::VbpMse,
            PipelineKind::VbpSsim,
        ]
    }
}

/// One classification outcome, carrying the full decision context: not
/// just the flag but the score, the threshold it was compared against,
/// where the score sits in the calibration distribution, and which
/// pipeline produced it — enough to log, audit, or replay the decision
/// without the detector at hand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[must_use = "a Verdict is the detector's safety decision; dropping it discards the novelty flag"]
pub struct Verdict {
    /// `true` when the input was flagged novel.
    pub is_novel: bool,
    /// The reconstruction score (MSE or SSIM depending on the pipeline).
    pub score: f32,
    /// The calibrated threshold the score was compared against.
    pub threshold: f32,
    /// Which side of the threshold counts as novel.
    pub direction: Direction,
    /// Where the score falls in the calibration distribution, in
    /// `[0, 100]`: the percentage of training scores `<=` this score
    /// (0.0 when the detector carries no training scores).
    pub percentile_rank: f32,
    /// The pipeline variant that produced this verdict.
    pub kind: PipelineKind,
}

/// A trained two-layer novelty detector.
#[derive(Debug)]
pub struct NoveltyDetector {
    steering: Option<Network>,
    classifier: AutoencoderClassifier,
    threshold: Threshold,
    preprocessing: Preprocessing,
    training_scores: Vec<f32>,
    /// ECDF over `training_scores`, cached so every [`Verdict`] can
    /// carry a percentile rank without re-sorting. `None` when there are
    /// no (finite) training scores.
    score_ecdf: Option<Ecdf>,
}

impl NoveltyDetector {
    pub(crate) fn from_parts(
        steering: Option<Network>,
        classifier: AutoencoderClassifier,
        threshold: Threshold,
        preprocessing: Preprocessing,
        training_scores: Vec<f32>,
    ) -> Result<Self> {
        if preprocessing == Preprocessing::Vbp && steering.is_none() {
            return Err(NoveltyError::invalid(
                "NoveltyDetector",
                "VBP preprocessing requires a steering network",
            ));
        }
        let score_ecdf = Ecdf::new(training_scores.clone()).ok();
        Ok(NoveltyDetector {
            steering,
            classifier,
            threshold,
            preprocessing,
            training_scores,
            score_ecdf,
        })
    }

    /// The preprocessing layer in use.
    pub fn preprocessing(&self) -> Preprocessing {
        self.preprocessing
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// The one-class classifier.
    pub fn classifier(&self) -> &AutoencoderClassifier {
        &self.classifier
    }

    /// The trained steering network, when the pipeline uses VBP.
    pub fn steering_network(&self) -> Option<&Network> {
        self.steering.as_ref()
    }

    /// The classifier scores of the training images (the empirical
    /// distribution the threshold was calibrated on).
    pub fn training_scores(&self) -> &[f32] {
        &self.training_scores
    }

    /// The pipeline variant this detector implements.
    pub fn kind(&self) -> PipelineKind {
        match (self.preprocessing, self.classifier.objective()) {
            (Preprocessing::Raw, _) => PipelineKind::RawMse,
            (Preprocessing::Vbp, ReconstructionObjective::Mse) => PipelineKind::VbpMse,
            (Preprocessing::Vbp, ReconstructionObjective::Ssim { .. }) => PipelineKind::VbpSsim,
        }
    }

    /// Where `score` falls in the calibration distribution, in
    /// `[0, 100]`: the percentage of training scores `<=` it. Returns
    /// 0.0 when the detector carries no training scores (e.g. a spec
    /// stripped for size).
    pub fn percentile_rank(&self, score: f32) -> f32 {
        match &self.score_ecdf {
            Some(ecdf) => 100.0 * ecdf.cdf(score),
            None => 0.0,
        }
    }

    /// Builds the full-context [`Verdict`] for an already-computed score.
    fn verdict_for(&self, score: f32) -> Verdict {
        Verdict {
            is_novel: self.threshold.is_novel(score),
            score,
            threshold: self.threshold.value(),
            direction: self.threshold.direction(),
            percentile_rank: self.percentile_rank(score),
            kind: self.kind(),
        }
    }

    /// Applies the pipeline's preprocessing to an image (identity for
    /// raw pipelines, VBP mask otherwise).
    ///
    /// # Errors
    ///
    /// Fails when the image size is incompatible with the CNN.
    pub fn preprocess(&self, image: &Image) -> Result<Image> {
        match (self.preprocessing, &self.steering) {
            (Preprocessing::Raw, _) => Ok(image.clone()),
            (Preprocessing::Vbp, Some(net)) => Ok(visual_backprop(net, image)?),
            (Preprocessing::Vbp, None) => Err(NoveltyError::invalid(
                "preprocess",
                "VBP preprocessing requires a steering network",
            )),
        }
    }

    /// Scores an image (after preprocessing) under the classifier's
    /// objective.
    ///
    /// # Errors
    ///
    /// Fails when the image size is incompatible with the pipeline.
    pub fn score(&self, image: &Image) -> Result<f32> {
        if image.tensor().has_non_finite() {
            return Err(NoveltyError::invalid(
                "score",
                "image contains NaN or infinite pixels",
            ));
        }
        // Both pipeline variants ultimately require the classifier's
        // training geometry (VBP masks are input-sized); checking here
        // gives a direct message instead of a deep conv-layer error.
        if image.height() != self.classifier.height() || image.width() != self.classifier.width() {
            return Err(NoveltyError::invalid(
                "score",
                format!(
                    "image is {}x{} but the detector was trained on {}x{} frames",
                    image.height(),
                    image.width(),
                    self.classifier.height(),
                    self.classifier.width()
                ),
            ));
        }
        let rep = self.preprocess(image)?;
        self.classifier.score(&rep)
    }

    /// Scores a batch of images, fanning the work out over the pool
    /// configured in [`ndtensor::par`].
    ///
    /// Each image is scored exactly as [`NoveltyDetector::score`] would,
    /// so the result is bit-identical to serial scoring for any thread
    /// count.
    ///
    /// # Errors
    ///
    /// Fails on the first incompatible image (by index, matching serial
    /// iteration order).
    #[must_use = "the scores are the batch's only output; the call has no other effect"]
    pub fn score_batch(&self, images: &[Image]) -> Result<Vec<f32>> {
        self.score_batch_recorded(images, obs::noop())
    }

    /// [`NoveltyDetector::score_batch`] with observability: the batch
    /// runs under a `scoring` span, `scoring.scores_computed` counts the
    /// scores, per-image latency samples land in the
    /// `scoring.latency_secs` histogram, and the work pool's activity
    /// during the batch lands under `scoring.par.*`.
    ///
    /// Recording never changes the scores — they are bit-identical with
    /// any recorder, at any thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetector::score_batch`].
    pub fn score_batch_recorded(
        &self,
        images: &[Image],
        recorder: &dyn Recorder,
    ) -> Result<Vec<f32>> {
        let work = images
            .len()
            .saturating_mul(self.classifier.height() * self.classifier.width())
            .saturating_mul(64);
        let pool_before = recorder.enabled().then(obs::par_snapshot);
        let scratch_before = recorder.enabled().then(obs::scratch_snapshot);
        let scores = obs::time(recorder, "scoring", || {
            ndtensor::par::try_parallel_map(images.len(), work, |i| {
                let timer = obs::Stopwatch::started_if(recorder.enabled());
                let score = self.score(&images[i]);
                if let Some(secs) = timer.elapsed_secs() {
                    recorder.observe("scoring.latency_secs", secs);
                }
                score
            })
        })?;
        recorder.add("scoring.scores_computed", scores.len() as u64);
        if let Some(before) = pool_before {
            obs::record_par_delta(&Scoped::new(recorder, "scoring"), before);
        }
        if let Some(before) = scratch_before {
            obs::record_scratch_delta(&Scoped::new(recorder, "scoring"), before);
        }
        Ok(scores)
    }

    /// Classifies an image as novel or in-distribution.
    ///
    /// # Errors
    ///
    /// Fails when the image size is incompatible with the pipeline.
    pub fn classify(&self, image: &Image) -> Result<Verdict> {
        Ok(self.verdict_for(self.score(image)?))
    }

    /// Classifies a batch of images, scoring them in parallel via
    /// [`NoveltyDetector::score_batch`]. Verdict `i` is exactly what
    /// [`NoveltyDetector::classify`] would return for image `i`.
    ///
    /// # Errors
    ///
    /// Fails on the first incompatible image (by index, matching serial
    /// iteration order).
    #[must_use = "the verdicts are the batch's only output; the call has no other effect"]
    pub fn classify_batch(&self, images: &[Image]) -> Result<Vec<Verdict>> {
        Ok(self
            .score_batch(images)?
            .into_iter()
            .map(|score| self.verdict_for(score))
            .collect())
    }

    /// Reconstructs the (preprocessed) image through the autoencoder —
    /// the qualitative comparison of the paper's Fig. 6.
    ///
    /// # Errors
    ///
    /// Fails when the image size is incompatible with the pipeline.
    pub fn reconstruct(&self, image: &Image) -> Result<(Image, Image)> {
        let rep = self.preprocess(image)?;
        let recon = self.classifier.reconstruct(&rep)?;
        Ok((rep, recon))
    }

    /// Predicts the steering angle for a frame (only for VBP pipelines,
    /// which carry the trained CNN).
    ///
    /// # Errors
    ///
    /// Fails for raw pipelines or incompatible image sizes.
    pub fn predict_steering(&self, image: &Image) -> Result<f32> {
        let net = self.steering.as_ref().ok_or_else(|| {
            NoveltyError::invalid("predict_steering", "pipeline has no steering network")
        })?;
        let input = image
            .tensor()
            .reshape([1, 1, image.height(), image.width()])?;
        Ok(net.forward(&input)?.as_slice()[0])
    }
}

/// Builder for [`NoveltyDetector`]: configure, then [`train`].
///
/// [`train`]: NoveltyDetectorBuilder::train
#[derive(Debug, Clone)]
pub struct NoveltyDetectorBuilder {
    preprocessing: Preprocessing,
    classifier: ClassifierConfig,
    cnn_config: PilotNetConfig,
    cnn_epochs: usize,
    cnn_learning_rate: f32,
    train_fraction: f32,
    percentile: f32,
    seed: u64,
}

impl Default for NoveltyDetectorBuilder {
    fn default() -> Self {
        Self::paper()
    }
}

impl NoveltyDetectorBuilder {
    /// The paper's pipeline: VBP preprocessing + SSIM autoencoder +
    /// 99th-percentile threshold.
    pub fn paper() -> Self {
        NoveltyDetectorBuilder {
            preprocessing: Preprocessing::Vbp,
            classifier: ClassifierConfig::paper(),
            cnn_config: PilotNetConfig::compact(),
            cnn_epochs: 8,
            cnn_learning_rate: 1e-3,
            train_fraction: 0.8,
            percentile: 99.0,
            seed: 0,
        }
    }

    /// Alias for [`NoveltyDetectorBuilder::paper`] (used by the facade
    /// crate's quickstart).
    pub fn new() -> Self {
        Self::paper()
    }

    /// The Richter & Roy baseline: raw images + MSE autoencoder.
    pub fn richter_roy() -> Self {
        NoveltyDetectorBuilder {
            preprocessing: Preprocessing::Raw,
            classifier: ClassifierConfig::paper_with_mse(),
            ..Self::paper()
        }
    }

    /// The VBP+MSE ablation (middle histogram of Fig. 5).
    pub fn vbp_mse_ablation() -> Self {
        NoveltyDetectorBuilder {
            preprocessing: Preprocessing::Vbp,
            classifier: ClassifierConfig::paper_with_mse(),
            ..Self::paper()
        }
    }

    /// Builder for one of the three named pipeline variants.
    pub fn for_kind(kind: PipelineKind) -> Self {
        match kind {
            PipelineKind::RawMse => Self::richter_roy(),
            PipelineKind::VbpMse => Self::vbp_mse_ablation(),
            PipelineKind::VbpSsim => Self::paper(),
        }
    }

    /// Sets the master seed (CNN init, AE init, shuffles).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the preprocessing layer.
    pub fn preprocessing(mut self, preprocessing: Preprocessing) -> Self {
        self.preprocessing = preprocessing;
        self
    }

    /// Overrides the classifier configuration.
    pub fn classifier_config(mut self, config: ClassifierConfig) -> Self {
        self.classifier = config;
        self
    }

    /// Overrides the reconstruction objective only.
    pub fn objective(mut self, objective: ReconstructionObjective) -> Self {
        self.classifier.objective = objective;
        self
    }

    /// Overrides the CNN architecture.
    pub fn cnn_config(mut self, config: PilotNetConfig) -> Self {
        self.cnn_config = config;
        self
    }

    /// Overrides the CNN training epochs.
    pub fn cnn_epochs(mut self, epochs: usize) -> Self {
        self.cnn_epochs = epochs;
        self
    }

    /// Overrides the autoencoder training epochs.
    pub fn ae_epochs(mut self, epochs: usize) -> Self {
        self.classifier.epochs = epochs;
        self
    }

    /// Overrides the train/calibration split fraction (paper: 0.8).
    pub fn train_fraction(mut self, fraction: f32) -> Self {
        self.train_fraction = fraction;
        self
    }

    /// Overrides the threshold percentile (paper: 99).
    pub fn percentile(mut self, percentile: f32) -> Self {
        self.percentile = percentile;
        self
    }

    /// The pipeline variant this builder currently describes.
    pub fn kind(&self) -> PipelineKind {
        match (self.preprocessing, &self.classifier.objective) {
            (Preprocessing::Raw, _) => PipelineKind::RawMse,
            (Preprocessing::Vbp, ReconstructionObjective::Mse) => PipelineKind::VbpMse,
            (Preprocessing::Vbp, ReconstructionObjective::Ssim { .. }) => PipelineKind::VbpSsim,
        }
    }

    /// Trains the steering CNN on a dataset (exposed separately so
    /// experiments can reuse one CNN across several detectors).
    ///
    /// # Errors
    ///
    /// Fails when the dataset is empty or image sizes are incompatible
    /// with the CNN configuration.
    pub fn train_steering_cnn(&self, dataset: &DrivingDataset) -> Result<Network> {
        self.train_steering_cnn_recorded(dataset, obs::noop())
    }

    /// [`NoveltyDetectorBuilder::train_steering_cnn`] with observability:
    /// the run is timed under a `cnn-train` span, with per-epoch loss and
    /// time in the `cnn-train.epoch_loss` / `cnn-train.epoch_secs` series.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetectorBuilder::train_steering_cnn`].
    pub fn train_steering_cnn_recorded(
        &self,
        dataset: &DrivingDataset,
        recorder: &dyn Recorder,
    ) -> Result<Network> {
        if dataset.is_empty() {
            return Err(NoveltyError::invalid(
                "train_steering_cnn",
                "dataset is empty",
            ));
        }
        let span = Span::root(recorder, "cnn-train");
        let cfg = PilotNetConfig {
            height: dataset.frames()[0].image.height(),
            width: dataset.frames()[0].image.width(),
            ..self.cnn_config.clone()
        };
        let mut net = pilotnet(&cfg, self.seed ^ 0xC44)?;
        let images: Vec<Image> = dataset.frames().iter().map(|f| f.image.clone()).collect();
        let flat = stack_images(&images)?;
        let n = images.len();
        let inputs = flat.reshape([n, 1, cfg.height, cfg.width])?;
        let targets = Tensor::from_vec([n, 1], dataset.frames().iter().map(|f| f.angle).collect())?;
        let mut opt = Adam::new(self.cnn_learning_rate)?;
        let train_cfg = TrainConfig::new(self.cnn_epochs, 32)
            .with_seed(self.seed ^ 0xC4F)
            .with_grad_clip(10.0);
        fit_recorded(
            &mut net,
            &MseLoss::new(),
            &mut opt,
            &inputs,
            &targets,
            &train_cfg,
            &Scoped::new(recorder, "cnn-train"),
        )?;
        span.finish();
        Ok(net)
    }

    /// Trains the full pipeline on a driving dataset, using the paper's
    /// protocol: `train_fraction` of the frames train the CNN and the
    /// autoencoder and provide the calibration distribution.
    ///
    /// # Errors
    ///
    /// Fails on empty datasets, incompatible image sizes, or divergent
    /// training.
    pub fn train(&self, dataset: &DrivingDataset) -> Result<NoveltyDetector> {
        self.train_with_cnn(dataset, None)
    }

    /// [`NoveltyDetectorBuilder::train`] with observability: each
    /// pipeline stage is timed under its own span (`cnn-train`, `vbp`,
    /// `ae-train`, `scoring`, `calibration` — raw pipelines skip the
    /// first two), per-epoch training curves land in the corresponding
    /// series, and the calibrated threshold is recorded as a gauge.
    ///
    /// Recording never changes what is trained: the resulting detector
    /// is identical (same weights, scores, threshold) with any recorder,
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetectorBuilder::train`].
    pub fn train_recorded(
        &self,
        dataset: &DrivingDataset,
        recorder: &dyn Recorder,
    ) -> Result<NoveltyDetector> {
        self.train_with_cnn_recorded(dataset, None, recorder)
    }

    /// Like [`NoveltyDetectorBuilder::train`], but reuses an
    /// already-trained steering CNN instead of training one — used by the
    /// figure experiments, which compare several autoencoder variants on
    /// the *same* VBP representation (and by deployments that retrain the
    /// one-class layer without touching the steering model).
    ///
    /// For [`Preprocessing::Raw`] pipelines the provided CNN is ignored.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetectorBuilder::train`].
    pub fn train_with_cnn(
        &self,
        dataset: &DrivingDataset,
        pretrained_cnn: Option<Network>,
    ) -> Result<NoveltyDetector> {
        self.train_with_cnn_recorded(dataset, pretrained_cnn, obs::noop())
    }

    /// [`NoveltyDetectorBuilder::train_with_cnn`] with observability; see
    /// [`NoveltyDetectorBuilder::train_recorded`] for the probes. When a
    /// pretrained CNN is supplied the `cnn-train` stage is (correctly)
    /// absent from the report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetectorBuilder::train_with_cnn`].
    pub fn train_with_cnn_recorded(
        &self,
        dataset: &DrivingDataset,
        pretrained_cnn: Option<Network>,
        recorder: &dyn Recorder,
    ) -> Result<NoveltyDetector> {
        if !(0.0..=1.0).contains(&self.train_fraction) {
            return Err(NoveltyError::invalid(
                "train",
                format!(
                    "train_fraction must be in [0, 1], got {}",
                    self.train_fraction
                ),
            ));
        }
        let (train_split, _held_out) = dataset.split(self.train_fraction);
        if train_split.is_empty() {
            return Err(NoveltyError::invalid("train", "training split is empty"));
        }
        recorder.add("train.images", train_split.len() as u64);
        recorder.gauge("train.fraction", self.train_fraction as f64);

        let steering = match self.preprocessing {
            Preprocessing::Raw => None,
            Preprocessing::Vbp => match pretrained_cnn {
                Some(net) => Some(net),
                None => Some(self.train_steering_cnn_recorded(&train_split, recorder)?),
            },
        };

        // Preprocess the training images into the classifier's input space
        // (VBP masks are computed batch-parallel; results are bit-identical
        // to the serial map for any thread count).
        let representations: Vec<Image> = match (&steering, self.preprocessing) {
            (None, _) => train_split
                .frames()
                .iter()
                .map(|f| f.image.clone())
                .collect(),
            (Some(net), _) => {
                let images: Vec<Image> = train_split
                    .frames()
                    .iter()
                    .map(|f| f.image.clone())
                    .collect();
                visual_backprop_batch_recorded(net, &images, recorder)?
            }
        };

        let ae_span = Span::root(recorder, "ae-train");
        let classifier = AutoencoderClassifier::train_recorded(
            &representations,
            &self.classifier,
            self.seed ^ 0xAE5,
            &Scoped::new(recorder, "ae-train"),
        )?;
        ae_span.finish();

        // Calibrate on the training distribution (Richter & Roy rule).
        // Scoring fans out over the work pool; order and values match the
        // serial map exactly.
        let score_work = representations
            .len()
            .saturating_mul(classifier.height() * classifier.width())
            .saturating_mul(64);
        let training_scores: Vec<f32> = obs::time(recorder, "scoring", || {
            ndtensor::par::try_parallel_map(representations.len(), score_work, |i| {
                classifier.score(&representations[i])
            })
        })?;
        recorder.add("scoring.scores_computed", training_scores.len() as u64);

        let cal_span = Span::root(recorder, "calibration");
        let threshold = Calibrator::new(self.percentile)?
            .calibrate(&training_scores, classifier.direction())?;
        cal_span.finish();
        recorder.add("calibration.samples", training_scores.len() as u64);
        recorder.gauge("calibration.threshold", threshold.value() as f64);
        recorder.gauge("calibration.percentile", self.percentile as f64);

        NoveltyDetector::from_parts(
            steering,
            classifier,
            threshold,
            self.preprocessing,
            training_scores,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdrive::DatasetConfig;

    /// A small, fast dataset for pipeline tests (images are tiny so VBP
    /// still works through the compact CNN's geometry).
    fn tiny_dataset(seed: u64) -> DrivingDataset {
        DatasetConfig::outdoor()
            .with_len(24)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(seed)
    }

    fn fast_builder() -> NoveltyDetectorBuilder {
        NoveltyDetectorBuilder::paper()
            .classifier_config(ClassifierConfig {
                hidden: vec![16, 8, 16],
                epochs: 6,
                warmup_epochs: 2,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Ssim { window: 7 },
            })
            .cnn_epochs(1)
            .seed(1)
    }

    #[test]
    fn kinds_and_presets_are_consistent() {
        assert_eq!(
            NoveltyDetectorBuilder::paper().kind(),
            PipelineKind::VbpSsim
        );
        assert_eq!(
            NoveltyDetectorBuilder::richter_roy().kind(),
            PipelineKind::RawMse
        );
        assert_eq!(
            NoveltyDetectorBuilder::vbp_mse_ablation().kind(),
            PipelineKind::VbpMse
        );
        for kind in PipelineKind::all() {
            assert_eq!(NoveltyDetectorBuilder::for_kind(kind).kind(), kind);
        }
        assert_eq!(PipelineKind::VbpSsim.name(), "vbp+ssim");
        assert_eq!(Preprocessing::Vbp.name(), "vbp");
    }

    #[test]
    fn raw_mse_pipeline_trains_and_classifies() {
        let data = tiny_dataset(3);
        let detector = NoveltyDetectorBuilder::richter_roy()
            .classifier_config(ClassifierConfig {
                hidden: vec![16, 8, 16],
                epochs: 10,
                warmup_epochs: 0,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Mse,
            })
            .seed(2)
            .train(&data)
            .unwrap();
        assert_eq!(detector.preprocessing(), Preprocessing::Raw);
        assert!(detector.steering_network().is_none());
        // In-distribution frames mostly not flagged.
        let verdicts: Vec<Verdict> = data
            .frames()
            .iter()
            .take(10)
            .map(|f| detector.classify(&f.image).unwrap())
            .collect();
        let flagged = verdicts.iter().filter(|v| v.is_novel).count();
        assert!(flagged <= 2, "{flagged} of 10 in-class frames flagged");
        // Preprocess is identity for raw pipelines.
        let img = &data.frames()[0].image;
        assert_eq!(&detector.preprocess(img).unwrap(), img);
        assert!(detector.predict_steering(img).is_err());
    }

    #[test]
    fn vbp_ssim_pipeline_trains_and_carries_cnn() {
        let data = tiny_dataset(5);
        let detector = fast_builder().train(&data).unwrap();
        assert!(detector.steering_network().is_some());
        let img = &data.frames()[0].image;
        // Steering prediction in [−1, 1].
        let angle = detector.predict_steering(img).unwrap();
        assert!((-1.0..=1.0).contains(&angle));
        // Preprocessing yields a same-size mask.
        let mask = detector.preprocess(img).unwrap();
        assert_eq!((mask.height(), mask.width()), (40, 80));
        // Reconstruction pair has consistent sizes.
        let (rep, recon) = detector.reconstruct(img).unwrap();
        assert_eq!((rep.height(), rep.width()), (recon.height(), recon.width()));
        // Training scores recorded, threshold consistent with them.
        assert!(!detector.training_scores().is_empty());
        let t = detector.threshold();
        assert_eq!(t.direction(), Direction::LowerIsNovel);
    }

    #[test]
    fn score_batch_matches_individual_scores() {
        let data = tiny_dataset(7);
        let detector = fast_builder().train(&data).unwrap();
        let images: Vec<Image> = data
            .frames()
            .iter()
            .take(3)
            .map(|f| f.image.clone())
            .collect();
        let batch = detector.score_batch(&images).unwrap();
        for (img, &s) in images.iter().zip(&batch) {
            assert_eq!(detector.score(img).unwrap(), s);
        }
    }

    #[test]
    fn training_validates_config() {
        let data = tiny_dataset(1);
        assert!(fast_builder().train_fraction(1.5).train(&data).is_err());
        assert!(fast_builder().percentile(0.0).train(&data).is_err());
        let empty = DatasetConfig::outdoor().with_len(0).generate(0);
        assert!(fast_builder().train(&empty).is_err());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = tiny_dataset(9);
        let a = fast_builder().seed(4).train(&data).unwrap();
        let b = fast_builder().seed(4).train(&data).unwrap();
        assert_eq!(a.training_scores(), b.training_scores());
        assert_eq!(a.threshold().value(), b.threshold().value());
    }
}
