//! The end-to-end novelty-detection pipeline (paper Fig. 1).
//!
//! `training images → steering CNN → score backend → threshold`.
//!
//! A [`NoveltyDetector`] is one calibrated [`ScoreBackend`] (see
//! [`crate::backend`]): the paper's VBP+SSIM pipeline, either of its two
//! Fig. 5 ablations, or the model-characterization backend of
//! [`crate::ModelCharBackend`]. [`NoveltyDetectorBuilder`] owns every
//! knob; its presets reproduce the pipelines the paper compares:
//!
//! | preset | backend | role |
//! |---|---|---|
//! | [`NoveltyDetectorBuilder::paper`] | `vbp+ssim` | the paper's method |
//! | [`NoveltyDetectorBuilder::vbp_mse_ablation`] | `vbp+mse` | middle histogram |
//! | [`NoveltyDetectorBuilder::richter_roy`] | `raw+mse` | prior work (reference 9) |
//! | [`NoveltyDetectorBuilder::model_characterization`] | `model-char` | Kwon et al. |

use metrics::ecdf::Ecdf;
use ndtensor::Tensor;
use neural::loss::MseLoss;
use neural::models::{pilotnet, PilotNetConfig};
use neural::optim::Adam;
use neural::{fit_recorded, Network, TrainConfig};
use obs::{Recorder, Scoped, Span};
use saliency::visual_backprop_batch_recorded;
use serde::Serialize;
use simdrive::DrivingDataset;
use vision::Image;

use crate::backend::{AutoencoderBackend, BackendKind, Detector, Preprocessing, ScoreBackend};
use crate::classifier::stack_images;
use crate::modelchar::ModelCharBackend;
use crate::{
    AutoencoderClassifier, Calibrator, ClassifierConfig, Direction, NoveltyError,
    ReconstructionObjective, Result, Threshold,
};

/// One backend's contribution to a [`Verdict`]: its raw score, the
/// calibrated threshold it was compared against, and where the score
/// sits in that backend's own training distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BackendScore {
    /// The backend's registry id (`raw+mse`, `vbp+ssim`, ...).
    pub backend: &'static str,
    /// The backend's raw score for this image.
    pub score: f32,
    /// The backend's calibrated threshold.
    pub threshold: f32,
    /// Which side of the threshold counts as novel for this backend.
    pub direction: Direction,
    /// Where the score falls in the backend's calibration distribution,
    /// in `[0, 100]`.
    pub percentile_rank: f32,
    /// The backend's own vote: `true` when it flags the image novel.
    pub is_novel: bool,
}

impl BackendScore {
    /// The rank reoriented so that higher always means *more novel*
    /// (inverts [`Direction::LowerIsNovel`] backends), in `[0, 100]`.
    /// This is the common scale ensemble fusion averages over.
    pub fn oriented_rank(&self) -> f32 {
        match self.direction {
            Direction::HigherIsNovel => self.percentile_rank,
            Direction::LowerIsNovel => 100.0 - self.percentile_rank,
        }
    }
}

/// One classification outcome, carrying the full decision context: not
/// just the flag but the score, the threshold it was compared against,
/// where the score sits in the calibration distribution, which backend
/// produced it, and — for ensemble verdicts — every member backend's
/// score and vote. Enough to log, audit, or replay the decision without
/// the detector at hand.
///
/// Single-backend verdicts have `total_votes == 1` and an empty
/// `backends` list (the top-level fields *are* the backend's entry);
/// ensemble verdicts carry one [`BackendScore`] per member, sorted by
/// backend id, and their top-level `score` / `percentile_rank` are the
/// fused top-2 oriented rank (see [`crate::fuse_verdict`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
#[must_use = "a Verdict is the detector's safety decision; dropping it discards the novelty flag"]
pub struct Verdict {
    /// `true` when the input was flagged novel.
    pub is_novel: bool,
    /// The score compared against `threshold` (a backend's raw score,
    /// or the fused top-2 oriented rank for ensembles).
    pub score: f32,
    /// The calibrated threshold the score was compared against.
    pub threshold: f32,
    /// Which side of the threshold counts as novel.
    pub direction: Direction,
    /// Where the score falls in the calibration distribution, in
    /// `[0, 100]`: the percentage of training scores `<=` this score
    /// (0.0 when the detector carries no training scores). For ensemble
    /// verdicts this equals the fused score (already a rank).
    pub percentile_rank: f32,
    /// The registry id of the backend that produced this verdict, or
    /// `"ensemble"` for fused verdicts.
    pub backend: &'static str,
    /// How many member backends voted novel (1 or 0 for single-backend
    /// verdicts).
    pub novel_votes: u32,
    /// How many member backends voted (1 for single-backend verdicts).
    pub total_votes: u32,
    /// Per-member scores for ensemble verdicts, sorted by backend id;
    /// empty for single-backend verdicts.
    pub backends: Vec<BackendScore>,
}

/// A trained novelty detector: one calibrated [`ScoreBackend`] plus the
/// threshold and training-score distribution calibrated on it.
#[derive(Debug)]
pub struct NoveltyDetector {
    backend: Box<dyn ScoreBackend>,
    threshold: Threshold,
    training_scores: Vec<f32>,
    /// ECDF over `training_scores`, cached so every [`Verdict`] can
    /// carry a percentile rank without re-sorting. `None` when there are
    /// no (finite) training scores.
    score_ecdf: Option<Ecdf>,
}

impl NoveltyDetector {
    /// Assembles a detector from a calibrated backend.
    ///
    /// # Errors
    ///
    /// Fails when the threshold's direction disagrees with the
    /// backend's.
    pub fn from_backend(
        backend: Box<dyn ScoreBackend>,
        threshold: Threshold,
        training_scores: Vec<f32>,
    ) -> Result<Self> {
        if threshold.direction() != backend.direction() {
            return Err(NoveltyError::invalid(
                "NoveltyDetector",
                format!(
                    "threshold direction {:?} disagrees with the {} backend",
                    threshold.direction(),
                    backend.kind().id()
                ),
            ));
        }
        let score_ecdf = Ecdf::new(training_scores.clone()).ok();
        Ok(NoveltyDetector {
            backend,
            threshold,
            training_scores,
            score_ecdf,
        })
    }

    pub(crate) fn from_parts(
        steering: Option<Network>,
        classifier: AutoencoderClassifier,
        threshold: Threshold,
        preprocessing: Preprocessing,
        training_scores: Vec<f32>,
    ) -> Result<Self> {
        let backend = AutoencoderBackend::new(steering, classifier, preprocessing)?;
        Self::from_backend(Box::new(backend), threshold, training_scores)
    }

    /// The score backend this detector calibrates.
    pub fn backend(&self) -> &dyn ScoreBackend {
        self.backend.as_ref()
    }

    /// The preprocessing layer in use, for backends that have one
    /// (`None` for model characterization, which consumes frames
    /// directly).
    pub fn preprocessing(&self) -> Option<Preprocessing> {
        self.backend.kind().preprocessing()
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// The `(height, width)` frame geometry the detector expects.
    pub fn input_size(&self) -> (usize, usize) {
        self.backend.input_size()
    }

    /// The one-class classifier, for autoencoder backends.
    pub fn classifier(&self) -> Option<&AutoencoderClassifier> {
        self.backend.classifier()
    }

    /// The trained steering network, when the backend carries one.
    pub fn steering_network(&self) -> Option<&Network> {
        self.backend.steering_network()
    }

    /// Short name of the scoring metric (`mse`, `ssim`, `layer-stats`).
    pub fn metric_name(&self) -> &'static str {
        self.backend.metric_name()
    }

    /// The classifier scores of the training images (the empirical
    /// distribution the threshold was calibrated on).
    pub fn training_scores(&self) -> &[f32] {
        &self.training_scores
    }

    /// The backend this detector implements.
    pub fn kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Where `score` falls in the calibration distribution, in
    /// `[0, 100]`: the percentage of training scores `<=` it. Returns
    /// 0.0 when the detector carries no training scores (e.g. a spec
    /// stripped for size).
    pub fn percentile_rank(&self, score: f32) -> f32 {
        match &self.score_ecdf {
            Some(ecdf) => 100.0 * ecdf.cdf(score),
            None => 0.0,
        }
    }

    /// This detector's [`BackendScore`] entry for an already-computed
    /// score — the per-member line an ensemble verdict carries.
    pub fn backend_score(&self, score: f32) -> BackendScore {
        BackendScore {
            backend: self.kind().id(),
            score,
            threshold: self.threshold.value(),
            direction: self.threshold.direction(),
            percentile_rank: self.percentile_rank(score),
            is_novel: self.threshold.is_novel(score),
        }
    }

    /// Builds the full-context [`Verdict`] for an already-computed score.
    fn verdict_for(&self, score: f32) -> Verdict {
        let is_novel = self.threshold.is_novel(score);
        Verdict {
            is_novel,
            score,
            threshold: self.threshold.value(),
            direction: self.threshold.direction(),
            percentile_rank: self.percentile_rank(score),
            backend: self.kind().id(),
            novel_votes: u32::from(is_novel),
            total_votes: 1,
            backends: Vec::new(),
        }
    }

    /// Applies the backend's preprocessing to an image (identity for
    /// raw pipelines, VBP mask for saliency pipelines, identity for
    /// model characterization).
    ///
    /// # Errors
    ///
    /// Fails when the image size is incompatible with the CNN.
    pub fn preprocess(&self, image: &Image) -> Result<Image> {
        self.backend.preprocess(image)
    }

    /// Scores an image under the backend's metric.
    ///
    /// # Errors
    ///
    /// Fails when the image size is incompatible with the pipeline.
    pub fn score(&self, image: &Image) -> Result<f32> {
        self.validate_input(image)?;
        self.backend.score(image)
    }

    /// The input checks [`NoveltyDetector::score`] performs before the
    /// backend is consulted.
    fn validate_input(&self, image: &Image) -> Result<()> {
        if image.tensor().has_non_finite() {
            return Err(NoveltyError::invalid(
                "score",
                "image contains NaN or infinite pixels",
            ));
        }
        // Every backend requires its training geometry (VBP masks are
        // input-sized, the profile is geometry-specific); checking here
        // gives a direct message instead of a deep conv-layer error.
        let (height, width) = self.backend.input_size();
        if image.height() != height || image.width() != width {
            return Err(NoveltyError::invalid(
                "score",
                format!(
                    "image is {}x{} but the detector was trained on {}x{} frames",
                    image.height(),
                    image.width(),
                    height,
                    width
                ),
            ));
        }
        Ok(())
    }

    /// [`NoveltyDetector::classify_each_recorded`] without observability.
    pub fn classify_each(&self, images: &[Image]) -> Vec<Result<Verdict>> {
        self.classify_each_recorded(images, obs::noop())
    }

    /// Classifies each image independently with batched scoring: valid
    /// images are scored together through the backend's batched path
    /// ([`ScoreBackend::score_each`] — one stacked autoencoder forward
    /// pass instead of per-frame batch-1 GEMMs), while invalid images
    /// fail only their own slot. Verdict `i` is bit-identical to
    /// [`NoveltyDetector::classify`] on image `i`, at any thread count,
    /// with any recorder.
    pub fn classify_each_recorded(
        &self,
        images: &[Image],
        recorder: &dyn Recorder,
    ) -> Vec<Result<Verdict>> {
        let pool_before = recorder.enabled().then(obs::par_snapshot);
        let scratch_before = recorder.enabled().then(obs::scratch_snapshot);
        let verdicts = obs::time(recorder, "scoring", || {
            let mut pre: Vec<Option<NoveltyError>> = Vec::with_capacity(images.len()); // sncheck:allow(hot-path-transitive-alloc): per-batch validation ledger, amortized across the batch
            let mut valid: Vec<&Image> = Vec::with_capacity(images.len()); // sncheck:allow(hot-path-transitive-alloc): borrowed-frame routing table, one per batch call
            for img in images {
                match self.validate_input(img) {
                    Err(e) => pre.push(Some(e)),
                    Ok(()) => {
                        pre.push(None);
                        valid.push(img);
                    }
                }
            }
            let mut batched = self.backend.score_each(&valid).into_iter();
            pre.into_iter()
                .map(|slot| match slot {
                    Some(e) => Err(e),
                    None => batched
                        .next()
                        .unwrap_or_else(|| {
                            Err(NoveltyError::invalid(
                                "classify_each",
                                "backend returned too few scores",
                            ))
                        })
                        .map(|score| self.verdict_for(score)),
                })
                .collect::<Vec<Result<Verdict>>>()
        });
        recorder.add(
            "scoring.scores_computed",
            verdicts.iter().filter(|v| v.is_ok()).count() as u64,
        );
        if let Some(before) = pool_before {
            obs::record_par_delta(&Scoped::new(recorder, "scoring"), before);
        }
        if let Some(before) = scratch_before {
            obs::record_scratch_delta(&Scoped::new(recorder, "scoring"), before);
        }
        verdicts
    }

    /// Scores a batch of images, fanning the work out over the pool
    /// configured in [`ndtensor::par`].
    ///
    /// Each image is scored exactly as [`NoveltyDetector::score`] would,
    /// so the result is bit-identical to serial scoring for any thread
    /// count.
    ///
    /// # Errors
    ///
    /// Fails on the first incompatible image (by index, matching serial
    /// iteration order).
    #[must_use = "the scores are the batch's only output; the call has no other effect"]
    pub fn score_batch(&self, images: &[Image]) -> Result<Vec<f32>> {
        self.score_batch_recorded(images, obs::noop())
    }

    /// [`NoveltyDetector::score_batch`] with observability: the batch
    /// runs under a `scoring` span, `scoring.scores_computed` counts the
    /// scores, per-image latency samples land in the
    /// `scoring.latency_secs` histogram, and the work pool's activity
    /// during the batch lands under `scoring.par.*`.
    ///
    /// Recording never changes the scores — they are bit-identical with
    /// any recorder, at any thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetector::score_batch`].
    pub fn score_batch_recorded(
        &self,
        images: &[Image],
        recorder: &dyn Recorder,
    ) -> Result<Vec<f32>> {
        let (height, width) = self.backend.input_size();
        let work = images
            .len()
            .saturating_mul(height * width)
            .saturating_mul(64);
        let pool_before = recorder.enabled().then(obs::par_snapshot);
        let scratch_before = recorder.enabled().then(obs::scratch_snapshot);
        let scores = obs::time(recorder, "scoring", || {
            ndtensor::par::try_parallel_map(images.len(), work, |i| {
                let timer = obs::Stopwatch::started_if(recorder.enabled());
                let score = self.score(&images[i]);
                if let Some(secs) = timer.elapsed_secs() {
                    recorder.observe("scoring.latency_secs", secs);
                }
                score
            })
        })?;
        recorder.add("scoring.scores_computed", scores.len() as u64);
        if let Some(before) = pool_before {
            obs::record_par_delta(&Scoped::new(recorder, "scoring"), before);
        }
        if let Some(before) = scratch_before {
            obs::record_scratch_delta(&Scoped::new(recorder, "scoring"), before);
        }
        Ok(scores)
    }

    /// Classifies an image as novel or in-distribution.
    ///
    /// # Errors
    ///
    /// Fails when the image size is incompatible with the pipeline.
    pub fn classify(&self, image: &Image) -> Result<Verdict> {
        Ok(self.verdict_for(self.score(image)?))
    }

    /// Classifies a batch of images, scoring them in parallel via
    /// [`NoveltyDetector::score_batch`]. Verdict `i` is exactly what
    /// [`NoveltyDetector::classify`] would return for image `i`.
    ///
    /// # Errors
    ///
    /// Fails on the first incompatible image (by index, matching serial
    /// iteration order).
    #[must_use = "the verdicts are the batch's only output; the call has no other effect"]
    pub fn classify_batch(&self, images: &[Image]) -> Result<Vec<Verdict>> {
        Ok(self
            .score_batch(images)?
            .into_iter()
            .map(|score| self.verdict_for(score))
            .collect())
    }

    /// Reconstructs the (preprocessed) image through the autoencoder —
    /// the qualitative comparison of the paper's Fig. 6.
    ///
    /// # Errors
    ///
    /// Fails for backends without a reconstruction pair (model
    /// characterization), or when the image size is incompatible.
    pub fn reconstruct(&self, image: &Image) -> Result<(Image, Image)> {
        self.backend.reconstruct(image)
    }

    /// Predicts the steering angle for a frame (only for backends that
    /// carry the trained CNN).
    ///
    /// # Errors
    ///
    /// Fails for raw pipelines or incompatible image sizes.
    pub fn predict_steering(&self, image: &Image) -> Result<f32> {
        let net = self.backend.steering_network().ok_or_else(|| {
            NoveltyError::invalid("predict_steering", "pipeline has no steering network")
        })?;
        let input = image
            .tensor()
            .reshape([1, 1, image.height(), image.width()])?;
        Ok(net.forward(&input)?.as_slice()[0])
    }
}

impl Detector for NoveltyDetector {
    fn input_size(&self) -> (usize, usize) {
        self.backend.input_size()
    }

    fn classify(&self, image: &Image) -> Result<Verdict> {
        NoveltyDetector::classify(self, image)
    }

    fn classify_batch_recorded(
        &self,
        images: &[Image],
        recorder: &dyn Recorder,
    ) -> Result<Vec<Verdict>> {
        Ok(self
            .score_batch_recorded(images, recorder)?
            .into_iter()
            .map(|score| self.verdict_for(score))
            .collect())
    }

    fn classify_each_recorded(
        &self,
        images: &[Image],
        recorder: &dyn Recorder,
    ) -> Vec<Result<Verdict>> {
        NoveltyDetector::classify_each_recorded(self, images, recorder)
    }

    fn label(&self) -> String {
        self.kind().id().to_string()
    }
}

/// Builder for [`NoveltyDetector`]: configure, then [`train`].
///
/// [`train`]: NoveltyDetectorBuilder::train
#[derive(Debug, Clone)]
pub struct NoveltyDetectorBuilder {
    preprocessing: Preprocessing,
    classifier: ClassifierConfig,
    /// When set, train the model-characterization backend instead of an
    /// autoencoder (the classifier config is then unused).
    model_char: bool,
    cnn_config: PilotNetConfig,
    cnn_epochs: usize,
    cnn_learning_rate: f32,
    train_fraction: f32,
    percentile: f32,
    seed: u64,
}

impl Default for NoveltyDetectorBuilder {
    fn default() -> Self {
        Self::paper()
    }
}

impl NoveltyDetectorBuilder {
    /// The paper's pipeline: VBP preprocessing + SSIM autoencoder +
    /// 99th-percentile threshold.
    pub fn paper() -> Self {
        NoveltyDetectorBuilder {
            preprocessing: Preprocessing::Vbp,
            classifier: ClassifierConfig::paper(),
            model_char: false,
            cnn_config: PilotNetConfig::compact(),
            cnn_epochs: 8,
            cnn_learning_rate: 1e-3,
            train_fraction: 0.8,
            percentile: 99.0,
            seed: 0,
        }
    }

    /// Alias for [`NoveltyDetectorBuilder::paper`] (used by the facade
    /// crate's quickstart).
    pub fn new() -> Self {
        Self::paper()
    }

    /// The Richter & Roy baseline: raw images + MSE autoencoder.
    pub fn richter_roy() -> Self {
        NoveltyDetectorBuilder {
            preprocessing: Preprocessing::Raw,
            classifier: ClassifierConfig::paper_with_mse(),
            ..Self::paper()
        }
    }

    /// The VBP+MSE ablation (middle histogram of Fig. 5).
    pub fn vbp_mse_ablation() -> Self {
        NoveltyDetectorBuilder {
            preprocessing: Preprocessing::Vbp,
            classifier: ClassifierConfig::paper_with_mse(),
            ..Self::paper()
        }
    }

    /// The model-characterization backend (Kwon et al.,
    /// arXiv:2008.06094): the steering CNN's own per-layer response
    /// statistics against a calibrated training profile.
    pub fn model_characterization() -> Self {
        NoveltyDetectorBuilder {
            model_char: true,
            ..Self::paper()
        }
    }

    /// Builder for one of the registered backends.
    pub fn for_kind(kind: BackendKind) -> Self {
        match kind {
            BackendKind::RawMse => Self::richter_roy(),
            BackendKind::VbpMse => Self::vbp_mse_ablation(),
            BackendKind::VbpSsim => Self::paper(),
            BackendKind::ModelChar => Self::model_characterization(),
        }
    }

    /// Retargets this builder at another backend, keeping every shared
    /// knob (epochs, seed, split, percentile, classifier capacity). The
    /// SSIM window is preserved when the builder already scores with
    /// SSIM; otherwise the paper's window is used.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.model_char = false;
        match kind {
            BackendKind::RawMse => {
                self.preprocessing = Preprocessing::Raw;
                self.classifier.objective = ReconstructionObjective::Mse;
            }
            BackendKind::VbpMse => {
                self.preprocessing = Preprocessing::Vbp;
                self.classifier.objective = ReconstructionObjective::Mse;
            }
            BackendKind::VbpSsim => {
                self.preprocessing = Preprocessing::Vbp;
                if !matches!(
                    self.classifier.objective,
                    ReconstructionObjective::Ssim { .. }
                ) {
                    self.classifier.objective = ReconstructionObjective::paper_ssim();
                }
            }
            BackendKind::ModelChar => {
                self.model_char = true;
            }
        }
        self
    }

    /// Sets the master seed (CNN init, AE init, shuffles).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the preprocessing layer (autoencoder backends only).
    pub fn preprocessing(mut self, preprocessing: Preprocessing) -> Self {
        self.preprocessing = preprocessing;
        self.model_char = false;
        self
    }

    /// Overrides the classifier configuration.
    pub fn classifier_config(mut self, config: ClassifierConfig) -> Self {
        self.classifier = config;
        self
    }

    /// Overrides the reconstruction objective only.
    pub fn objective(mut self, objective: ReconstructionObjective) -> Self {
        self.classifier.objective = objective;
        self
    }

    /// Overrides the CNN architecture.
    pub fn cnn_config(mut self, config: PilotNetConfig) -> Self {
        self.cnn_config = config;
        self
    }

    /// Overrides the CNN training epochs.
    pub fn cnn_epochs(mut self, epochs: usize) -> Self {
        self.cnn_epochs = epochs;
        self
    }

    /// Overrides the autoencoder training epochs.
    pub fn ae_epochs(mut self, epochs: usize) -> Self {
        self.classifier.epochs = epochs;
        self
    }

    /// Overrides the train/calibration split fraction (paper: 0.8).
    pub fn train_fraction(mut self, fraction: f32) -> Self {
        self.train_fraction = fraction;
        self
    }

    /// Overrides the threshold percentile (paper: 99).
    pub fn percentile(mut self, percentile: f32) -> Self {
        self.percentile = percentile;
        self
    }

    /// The backend this builder currently describes.
    pub fn kind(&self) -> BackendKind {
        if self.model_char {
            return BackendKind::ModelChar;
        }
        match (self.preprocessing, &self.classifier.objective) {
            (Preprocessing::Raw, _) => BackendKind::RawMse,
            (Preprocessing::Vbp, ReconstructionObjective::Mse) => BackendKind::VbpMse,
            (Preprocessing::Vbp, ReconstructionObjective::Ssim { .. }) => BackendKind::VbpSsim,
        }
    }

    /// The train/calibration split fraction currently configured.
    pub(crate) fn train_fraction_value(&self) -> f32 {
        self.train_fraction
    }

    /// Trains the steering CNN on a dataset (exposed separately so
    /// experiments can reuse one CNN across several detectors).
    ///
    /// # Errors
    ///
    /// Fails when the dataset is empty or image sizes are incompatible
    /// with the CNN configuration.
    pub fn train_steering_cnn(&self, dataset: &DrivingDataset) -> Result<Network> {
        self.train_steering_cnn_recorded(dataset, obs::noop())
    }

    /// [`NoveltyDetectorBuilder::train_steering_cnn`] with observability:
    /// the run is timed under a `cnn-train` span, with per-epoch loss and
    /// time in the `cnn-train.epoch_loss` / `cnn-train.epoch_secs` series.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetectorBuilder::train_steering_cnn`].
    pub fn train_steering_cnn_recorded(
        &self,
        dataset: &DrivingDataset,
        recorder: &dyn Recorder,
    ) -> Result<Network> {
        if dataset.is_empty() {
            return Err(NoveltyError::invalid(
                "train_steering_cnn",
                "dataset is empty",
            ));
        }
        let span = Span::root(recorder, "cnn-train");
        let cfg = PilotNetConfig {
            height: dataset.frames()[0].image.height(),
            width: dataset.frames()[0].image.width(),
            ..self.cnn_config.clone()
        };
        let mut net = pilotnet(&cfg, self.seed ^ 0xC44)?;
        let images: Vec<Image> = dataset.frames().iter().map(|f| f.image.clone()).collect();
        let flat = stack_images(&images)?;
        let n = images.len();
        let inputs = flat.reshape([n, 1, cfg.height, cfg.width])?;
        let targets = Tensor::from_vec([n, 1], dataset.frames().iter().map(|f| f.angle).collect())?;
        let mut opt = Adam::new(self.cnn_learning_rate)?;
        let train_cfg = TrainConfig::new(self.cnn_epochs, 32)
            .with_seed(self.seed ^ 0xC4F)
            .with_grad_clip(10.0);
        fit_recorded(
            &mut net,
            &MseLoss::new(),
            &mut opt,
            &inputs,
            &targets,
            &train_cfg,
            &Scoped::new(recorder, "cnn-train"),
        )?;
        span.finish();
        Ok(net)
    }

    /// Trains the full pipeline on a driving dataset, using the paper's
    /// protocol: `train_fraction` of the frames train the CNN and the
    /// one-class layer and provide the calibration distribution.
    ///
    /// # Errors
    ///
    /// Fails on empty datasets, incompatible image sizes, or divergent
    /// training.
    pub fn train(&self, dataset: &DrivingDataset) -> Result<NoveltyDetector> {
        self.train_recorded(dataset, obs::noop())
    }

    /// [`NoveltyDetectorBuilder::train`] with observability: each
    /// pipeline stage is timed under its own span (`cnn-train`, `vbp`,
    /// `ae-train`, `scoring`, `calibration` — raw pipelines skip the
    /// first two, and the model-characterization backend replaces the
    /// `vbp`/`ae-train` pair with a `profile` stage), per-epoch training
    /// curves land in the corresponding series, and the calibrated
    /// threshold is recorded as a gauge.
    ///
    /// Recording never changes what is trained: the resulting detector
    /// is identical (same weights, scores, threshold) with any recorder,
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetectorBuilder::train`].
    pub fn train_recorded(
        &self,
        dataset: &DrivingDataset,
        recorder: &dyn Recorder,
    ) -> Result<NoveltyDetector> {
        self.train_with_cnn_recorded(dataset, None, recorder)
    }

    /// Like [`NoveltyDetectorBuilder::train`], but reuses an
    /// already-trained steering CNN instead of training one — used by the
    /// figure experiments and the ensemble trainer, which compare several
    /// backends on the *same* steering model (and by deployments that
    /// retrain the one-class layer without touching the steering model).
    ///
    /// For the `raw+mse` backend the provided CNN is ignored.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetectorBuilder::train`].
    pub fn train_with_cnn(
        &self,
        dataset: &DrivingDataset,
        pretrained_cnn: Option<Network>,
    ) -> Result<NoveltyDetector> {
        self.train_with_cnn_recorded(dataset, pretrained_cnn, obs::noop())
    }

    /// [`NoveltyDetectorBuilder::train_with_cnn`] with observability; see
    /// [`NoveltyDetectorBuilder::train_recorded`] for the probes. When a
    /// pretrained CNN is supplied the `cnn-train` stage is (correctly)
    /// absent from the report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoveltyDetectorBuilder::train_with_cnn`].
    pub fn train_with_cnn_recorded(
        &self,
        dataset: &DrivingDataset,
        pretrained_cnn: Option<Network>,
        recorder: &dyn Recorder,
    ) -> Result<NoveltyDetector> {
        // Every training path funnels through here, so this is where
        // `SALIENCY_AUTOTUNE=on` gains its clock: the routine selector
        // degrades to the static heuristic until a timer is installed,
        // and ndtensor cannot read a wall clock itself. Idempotent, and
        // never read on a per-frame path.
        obs::install_kernel_timer();
        if !(0.0..=1.0).contains(&self.train_fraction) {
            return Err(NoveltyError::invalid(
                "train",
                format!(
                    "train_fraction must be in [0, 1], got {}",
                    self.train_fraction
                ),
            ));
        }
        let (train_split, _held_out) = dataset.split(self.train_fraction);
        if train_split.is_empty() {
            return Err(NoveltyError::invalid("train", "training split is empty"));
        }
        recorder.add("train.images", train_split.len() as u64);
        recorder.gauge("train.fraction", self.train_fraction as f64);

        if self.model_char {
            return self.train_model_char(&train_split, pretrained_cnn, recorder);
        }

        let steering = match self.preprocessing {
            Preprocessing::Raw => None,
            Preprocessing::Vbp => match pretrained_cnn {
                Some(net) => Some(net),
                None => Some(self.train_steering_cnn_recorded(&train_split, recorder)?),
            },
        };

        // Preprocess the training images into the classifier's input space
        // (VBP masks are computed batch-parallel; results are bit-identical
        // to the serial map for any thread count).
        let representations: Vec<Image> = match (&steering, self.preprocessing) {
            (None, _) => train_split
                .frames()
                .iter()
                .map(|f| f.image.clone())
                .collect(),
            (Some(net), _) => {
                let images: Vec<Image> = train_split
                    .frames()
                    .iter()
                    .map(|f| f.image.clone())
                    .collect();
                visual_backprop_batch_recorded(net, &images, recorder)?
            }
        };

        let ae_span = Span::root(recorder, "ae-train");
        let classifier = AutoencoderClassifier::train_recorded(
            &representations,
            &self.classifier,
            self.seed ^ 0xAE5,
            &Scoped::new(recorder, "ae-train"),
        )?;
        ae_span.finish();

        // Calibrate on the training distribution (Richter & Roy rule).
        // Scoring fans out over the work pool; order and values match the
        // serial map exactly.
        let score_work = representations
            .len()
            .saturating_mul(classifier.height() * classifier.width())
            .saturating_mul(64);
        let training_scores: Vec<f32> = obs::time(recorder, "scoring", || {
            ndtensor::par::try_parallel_map(representations.len(), score_work, |i| {
                classifier.score(&representations[i])
            })
        })?;
        recorder.add("scoring.scores_computed", training_scores.len() as u64);

        let threshold =
            self.calibrate_recorded(&training_scores, classifier.direction(), recorder)?;

        NoveltyDetector::from_parts(
            steering,
            classifier,
            threshold,
            self.preprocessing,
            training_scores,
        )
    }

    /// The model-characterization training path: train (or reuse) the
    /// steering CNN, then calibrate the per-layer statistics profile
    /// under a `profile` stage and the threshold under `calibration`.
    fn train_model_char(
        &self,
        train_split: &DrivingDataset,
        pretrained_cnn: Option<Network>,
        recorder: &dyn Recorder,
    ) -> Result<NoveltyDetector> {
        let steering = match pretrained_cnn {
            Some(net) => net,
            None => self.train_steering_cnn_recorded(train_split, recorder)?,
        };
        let images: Vec<Image> = train_split
            .frames()
            .iter()
            .map(|f| f.image.clone())
            .collect();
        let (backend, training_scores) = obs::time(recorder, "profile", || {
            ModelCharBackend::fit(steering, &images)
        })?;
        recorder.add("profile.frames", images.len() as u64);
        recorder.add("scoring.scores_computed", training_scores.len() as u64);
        let threshold = self.calibrate_recorded(&training_scores, backend.direction(), recorder)?;
        NoveltyDetector::from_backend(Box::new(backend), threshold, training_scores)
    }

    /// Calibrates the threshold under a `calibration` span, recording
    /// the sample count, threshold value, and percentile.
    fn calibrate_recorded(
        &self,
        training_scores: &[f32],
        direction: Direction,
        recorder: &dyn Recorder,
    ) -> Result<Threshold> {
        let cal_span = Span::root(recorder, "calibration");
        let threshold = Calibrator::new(self.percentile)?.calibrate(training_scores, direction)?;
        cal_span.finish();
        recorder.add("calibration.samples", training_scores.len() as u64);
        recorder.gauge("calibration.threshold", threshold.value() as f64);
        recorder.gauge("calibration.percentile", self.percentile as f64);
        Ok(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PipelineKind;
    use simdrive::DatasetConfig;

    /// A small, fast dataset for pipeline tests (images are tiny so VBP
    /// still works through the compact CNN's geometry).
    fn tiny_dataset(seed: u64) -> DrivingDataset {
        DatasetConfig::outdoor()
            .with_len(24)
            .with_size(40, 80)
            .with_supersample(1)
            .generate(seed)
    }

    fn fast_builder() -> NoveltyDetectorBuilder {
        NoveltyDetectorBuilder::paper()
            .classifier_config(ClassifierConfig {
                hidden: vec![16, 8, 16],
                epochs: 6,
                warmup_epochs: 2,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Ssim { window: 7 },
            })
            .cnn_epochs(1)
            .seed(1)
    }

    #[test]
    fn kinds_and_presets_are_consistent() {
        assert_eq!(
            NoveltyDetectorBuilder::paper().kind(),
            PipelineKind::VbpSsim
        );
        assert_eq!(
            NoveltyDetectorBuilder::richter_roy().kind(),
            PipelineKind::RawMse
        );
        assert_eq!(
            NoveltyDetectorBuilder::vbp_mse_ablation().kind(),
            PipelineKind::VbpMse
        );
        assert_eq!(
            NoveltyDetectorBuilder::model_characterization().kind(),
            BackendKind::ModelChar
        );
        for kind in BackendKind::all() {
            assert_eq!(NoveltyDetectorBuilder::for_kind(kind).kind(), kind);
            // Retargeting an arbitrary builder reaches the same backend.
            assert_eq!(fast_builder().backend(kind).kind(), kind);
        }
        // Retargeting at vbp+ssim preserves a pre-configured SSIM window.
        let retargeted = fast_builder().backend(BackendKind::VbpMse);
        assert_eq!(
            retargeted
                .backend(BackendKind::VbpSsim)
                .classifier
                .objective,
            ReconstructionObjective::paper_ssim()
        );
        assert_eq!(
            fast_builder()
                .backend(BackendKind::VbpSsim)
                .classifier
                .objective,
            ReconstructionObjective::Ssim { window: 7 }
        );
        assert_eq!(PipelineKind::VbpSsim.name(), "vbp+ssim");
        assert_eq!(Preprocessing::Vbp.name(), "vbp");
    }

    #[test]
    fn raw_mse_pipeline_trains_and_classifies() {
        let data = tiny_dataset(3);
        let detector = NoveltyDetectorBuilder::richter_roy()
            .classifier_config(ClassifierConfig {
                hidden: vec![16, 8, 16],
                epochs: 10,
                warmup_epochs: 0,
                batch_size: 8,
                learning_rate: 3e-3,
                objective: ReconstructionObjective::Mse,
            })
            .seed(2)
            .train(&data)
            .unwrap();
        assert_eq!(detector.preprocessing(), Some(Preprocessing::Raw));
        assert!(detector.steering_network().is_none());
        // In-distribution frames mostly not flagged.
        let verdicts: Vec<Verdict> = data
            .frames()
            .iter()
            .take(10)
            .map(|f| detector.classify(&f.image).unwrap())
            .collect();
        let flagged = verdicts.iter().filter(|v| v.is_novel).count();
        assert!(flagged <= 2, "{flagged} of 10 in-class frames flagged");
        // Single-backend verdicts carry their backend id and one vote.
        assert_eq!(verdicts[0].backend, "raw+mse");
        assert_eq!(verdicts[0].total_votes, 1);
        assert!(verdicts[0].backends.is_empty());
        // Preprocess is identity for raw pipelines.
        let img = &data.frames()[0].image;
        assert_eq!(&detector.preprocess(img).unwrap(), img);
        assert!(detector.predict_steering(img).is_err());
    }

    #[test]
    fn vbp_ssim_pipeline_trains_and_carries_cnn() {
        let data = tiny_dataset(5);
        let detector = fast_builder().train(&data).unwrap();
        assert!(detector.steering_network().is_some());
        let img = &data.frames()[0].image;
        // Steering prediction in [−1, 1].
        let angle = detector.predict_steering(img).unwrap();
        assert!((-1.0..=1.0).contains(&angle));
        // Preprocessing yields a same-size mask.
        let mask = detector.preprocess(img).unwrap();
        assert_eq!((mask.height(), mask.width()), (40, 80));
        // Reconstruction pair has consistent sizes.
        let (rep, recon) = detector.reconstruct(img).unwrap();
        assert_eq!((rep.height(), rep.width()), (recon.height(), recon.width()));
        // Training scores recorded, threshold consistent with them.
        assert!(!detector.training_scores().is_empty());
        let t = detector.threshold();
        assert_eq!(t.direction(), Direction::LowerIsNovel);
        assert_eq!(detector.input_size(), (40, 80));
        assert_eq!(detector.metric_name(), "ssim");
    }

    #[test]
    fn model_char_pipeline_trains_and_classifies() {
        let data = tiny_dataset(11);
        let detector = NoveltyDetectorBuilder::model_characterization()
            .cnn_epochs(1)
            .seed(3)
            .train(&data)
            .unwrap();
        assert_eq!(detector.kind(), BackendKind::ModelChar);
        assert_eq!(detector.preprocessing(), None);
        assert!(detector.steering_network().is_some());
        assert!(detector.classifier().is_none());
        assert!(detector.backend().stat_profile().is_some());
        assert_eq!(detector.metric_name(), "layer-stats");
        assert_eq!(detector.threshold().direction(), Direction::HigherIsNovel);
        let img = &data.frames()[0].image;
        let v = detector.classify(img).unwrap();
        assert_eq!(v.backend, "model-char");
        assert!(v.score.is_finite());
        // No reconstruction pair for this backend.
        assert!(detector.reconstruct(img).is_err());
        // Deterministic per seed.
        let again = NoveltyDetectorBuilder::model_characterization()
            .cnn_epochs(1)
            .seed(3)
            .train(&data)
            .unwrap();
        assert_eq!(detector.training_scores(), again.training_scores());
        assert_eq!(detector.threshold().value(), again.threshold().value());
    }

    #[test]
    fn score_batch_matches_individual_scores() {
        let data = tiny_dataset(7);
        let detector = fast_builder().train(&data).unwrap();
        let images: Vec<Image> = data
            .frames()
            .iter()
            .take(3)
            .map(|f| f.image.clone())
            .collect();
        let batch = detector.score_batch(&images).unwrap();
        for (img, &s) in images.iter().zip(&batch) {
            assert_eq!(detector.score(img).unwrap(), s);
        }
        // The Detector trait surface agrees with the inherent methods.
        let verdicts = Detector::classify_batch(&detector, &images).unwrap();
        for (img, v) in images.iter().zip(&verdicts) {
            assert_eq!(&detector.classify(img).unwrap(), v);
        }
        assert_eq!(Detector::label(&detector), "vbp+ssim");
    }

    #[test]
    fn training_validates_config() {
        let data = tiny_dataset(1);
        assert!(fast_builder().train_fraction(1.5).train(&data).is_err());
        assert!(fast_builder().percentile(0.0).train(&data).is_err());
        let empty = DatasetConfig::outdoor().with_len(0).generate(0);
        assert!(fast_builder().train(&empty).is_err());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = tiny_dataset(9);
        let a = fast_builder().seed(4).train(&data).unwrap();
        let b = fast_builder().seed(4).train(&data).unwrap();
        assert_eq!(a.training_scores(), b.training_scores());
        assert_eq!(a.threshold().value(), b.threshold().value());
    }
}
