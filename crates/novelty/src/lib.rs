#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! Novelty detection via network saliency — the paper's contribution.
//!
//! This crate assembles the substrates (`neural`, `saliency`, `metrics`,
//! `simdrive`) into the two-layer framework of *"Novelty Detection via
//! Network Saliency in Visual-based Deep Learning"* (DSN 2019):
//!
//! 1. a PilotNet-style CNN is trained to predict steering angles,
//! 2. **VisualBackProp** masks computed on that CNN become the
//!    representation of every image (preprocessing layer),
//! 3. a small feed-forward **autoencoder** (9600→64→16→64→9600, sigmoid
//!    output) is trained on those masks with an **SSIM** objective,
//! 4. an incoming image is **novel** when its reconstruction similarity
//!    falls outside the 99th percentile of the training distribution
//!    (the Richter & Roy rule, applied to SSIM).
//!
//! [`NoveltyDetectorBuilder`] trains the full pipeline from a
//! [`simdrive::DrivingDataset`]; presets exist for the paper's method
//! ([`NoveltyDetectorBuilder::paper`]) and both comparison pipelines
//! (raw+MSE Richter & Roy baseline, VBP+MSE ablation). [`eval`] scores
//! whole datasets and produces the separation reports behind Figs. 5
//! and 7.
//!
//! # Example
//!
//! ```no_run
//! use novelty::NoveltyDetectorBuilder;
//! use simdrive::DatasetConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = DatasetConfig::outdoor().with_len(500).generate(1);
//! let detector = NoveltyDetectorBuilder::paper().seed(7).train(&data)?;
//!
//! let frame = &data.frames()[0].image;
//! let verdict = detector.classify(frame)?;
//! println!("novel: {} (score {:.3})", verdict.is_novel, verdict.score);
//! # Ok(())
//! # }
//! ```

pub mod eval;
pub mod evalgrid;
pub mod monitor;

mod backend;
mod calibrate;
mod classifier;
mod ensemble;
mod error;
mod gate;
mod health;
mod modelchar;
mod persist;
mod pipeline;
mod runtime;
pub mod serve;

pub use backend::{
    AutoencoderBackend, BackendKind, Detector, PipelineKind, Preprocessing, ScoreBackend,
};
pub use calibrate::{Calibrator, Direction, Threshold};
pub use classifier::{AutoencoderClassifier, ClassifierConfig, ReconstructionObjective};
pub use ensemble::{fuse_verdict, EnsembleDetector};
pub use error::NoveltyError;
pub use gate::{FrameFault, FrameGate, GateConfig};
pub use health::{HealthConfig, HealthEvent, HealthState, HealthTracker, HealthTransition};
pub use modelchar::{ModelCharBackend, StatProfile};
pub use persist::{
    detector_from_spec, detector_to_spec, ensemble_from_spec, load_any, load_detector,
    save_detector, DetectorSpec, EnsembleSpec, LoadedDetector, DETECTOR_SCHEMA_VERSION,
    ENSEMBLE_SCHEMA_VERSION,
};
pub use pipeline::{BackendScore, NoveltyDetector, NoveltyDetectorBuilder, Verdict};
pub use runtime::{
    CostModel, DeadlineClock, DecisionSource, FallbackPolicy, FrameAdmission, ScoreOutcome,
    ShedReason, StreamConfig, StreamDecision, StreamRuntime,
};
pub use serve::{
    AlarmLog, AlarmLogEntry, QueueConfig, StreamServer, TenantSpec, TenantStats,
    ALARM_LOG_SCHEMA_VERSION,
};

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NoveltyError>;
