use std::fmt;

use metrics::MetricsError;
use ndtensor::TensorError;
use neural::NeuralError;
use saliency::SaliencyError;
use vision::VisionError;

/// Error type for pipeline construction, training and classification.
#[derive(Debug)]
pub enum NoveltyError {
    /// Network training or evaluation failed.
    Neural(NeuralError),
    /// Saliency computation failed.
    Saliency(SaliencyError),
    /// Metric computation failed.
    Metrics(MetricsError),
    /// Image processing failed.
    Vision(VisionError),
    /// Tensor math failed.
    Tensor(TensorError),
    /// A pipeline-level invariant was violated.
    Invalid {
        /// Short name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// Detector (de)serialization failed.
    Serde(String),
    /// File I/O failed.
    Io(std::io::Error),
}

impl NoveltyError {
    /// Builds an [`NoveltyError::Invalid`].
    pub fn invalid(op: &'static str, reason: impl Into<String>) -> Self {
        NoveltyError::Invalid {
            op,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NoveltyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoveltyError::Neural(e) => write!(f, "network error: {e}"),
            NoveltyError::Saliency(e) => write!(f, "saliency error: {e}"),
            NoveltyError::Metrics(e) => write!(f, "metrics error: {e}"),
            NoveltyError::Vision(e) => write!(f, "image error: {e}"),
            NoveltyError::Tensor(e) => write!(f, "tensor error: {e}"),
            NoveltyError::Invalid { op, reason } => write!(f, "{op}: {reason}"),
            NoveltyError::Serde(msg) => write!(f, "serialization error: {msg}"),
            NoveltyError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NoveltyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NoveltyError::Neural(e) => Some(e),
            NoveltyError::Saliency(e) => Some(e),
            NoveltyError::Metrics(e) => Some(e),
            NoveltyError::Vision(e) => Some(e),
            NoveltyError::Tensor(e) => Some(e),
            NoveltyError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NeuralError> for NoveltyError {
    fn from(e: NeuralError) -> Self {
        NoveltyError::Neural(e)
    }
}

impl From<SaliencyError> for NoveltyError {
    fn from(e: SaliencyError) -> Self {
        NoveltyError::Saliency(e)
    }
}

impl From<MetricsError> for NoveltyError {
    fn from(e: MetricsError) -> Self {
        NoveltyError::Metrics(e)
    }
}

impl From<VisionError> for NoveltyError {
    fn from(e: VisionError) -> Self {
        NoveltyError::Vision(e)
    }
}

impl From<TensorError> for NoveltyError {
    fn from(e: TensorError) -> Self {
        NoveltyError::Tensor(e)
    }
}

impl From<std::io::Error> for NoveltyError {
    fn from(e: std::io::Error) -> Self {
        NoveltyError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = NoveltyError::invalid("train", "empty dataset");
        assert!(e.to_string().contains("train"));
        assert!(e.source().is_none());
        let e = NoveltyError::from(NeuralError::invalid("fit", "x"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NoveltyError>();
    }
}
