//! Train-domain × score-domain evaluation grid.
//!
//! The paper's separation claim (Figs. 5/7) is demonstrated on a single
//! holdout pair (outdoor vs indoor). This module generalizes the
//! protocol to a full matrix over *scenario domains*: each domain is a
//! [`simdrive::ModifierStack`] spec (e.g. `"fog@0.7+night@0.5"`) applied
//! to a shared base world. One detector per configured backend is
//! trained per domain (sharing one steering CNN); every detector then
//! scores every domain's test set, yielding a grid whose diagonal is
//! in-distribution (AUROC ≈ 0.5) and whose off-diagonal cells measure
//! cross-domain novelty — the stratified generalization grid of Shekar
//! et al. (arXiv:2201.00531) applied to the VBP pipeline.
//!
//! Per cell `(train A, score B)` the grid records, for each backend and
//! (optionally) for the calibrated ensemble fusion:
//!
//! * **AUROC** of domain-B scores against held-out domain-A scores
//!   under the backend's orientation (ensemble scores are fused
//!   oriented percentile ranks, see [`crate::fuse_verdict`]),
//! * **exceedance**: the fraction of domain-B frames past the
//!   calibrated threshold (the paper's "detection rate"; for the
//!   ensemble, the fraction of frames whose fused vote flags novel),
//! * **mean SSIM** between domain-A and domain-B renderings of the
//!   *same* base scenes — a detector-free image-space distance that
//!   contextualizes the score-space separation (diagonal ≡ 1).
//!
//! Everything is a pure function of the config seed: the same
//! [`GridConfig`] produces a byte-identical [`GridReport`] at any thread
//! count, which is what lets CI `cmp` two runs of the smoke grid.

use metrics::separation::{auroc, detection_rate};
use metrics::{ssim, SsimConfig};
use obs::Recorder;
use serde::{Deserialize, Serialize};
use simdrive::{DatasetConfig, DrivingDataset, ModifierStack};
use vision::Image;

use crate::ensemble::{fuse_verdict, EnsembleDetector};
use crate::{
    BackendKind, Direction, NoveltyDetector, NoveltyDetectorBuilder, NoveltyError, Result,
};

/// Bump on breaking changes to the [`GridReport`] JSON layout.
/// Version 2 added per-backend columns and ensemble fusion.
pub const EVALGRID_SCHEMA_VERSION: u32 = 2;

/// One scenario domain: a short label plus the modifier-stack spec that
/// renders it (see [`ModifierStack::parse`]). `"clear"` is the
/// unmodified base world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridDomain {
    /// Short label used in stage names, table headers and cell keys.
    /// Must be non-empty ASCII alphanumeric/`_` (no separators, so
    /// `evalgrid-cell-<a>-<b>` stage names stay parseable).
    pub name: String,
    /// Modifier-stack spec, e.g. `"fog@0.7+night@0.5"` or `"clear"`.
    pub spec: String,
}

impl GridDomain {
    /// Builds a domain from a label and a spec.
    pub fn new(name: impl Into<String>, spec: impl Into<String>) -> GridDomain {
        GridDomain {
            name: name.into(),
            spec: spec.into(),
        }
    }
}

/// Sizing and seeding for one grid run. All fields are honest knobs —
/// the report embeds them so a committed JSON is self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridConfig {
    /// Frames per training dataset.
    pub train_len: usize,
    /// Frames per held-out / score dataset.
    pub test_len: usize,
    /// Steering-CNN epochs.
    pub cnn_epochs: usize,
    /// Autoencoder epochs.
    pub ae_epochs: usize,
    /// Master seed; train/target/score base datasets derive from
    /// `seed`, `seed+1`, `seed+2`.
    pub seed: u64,
    /// Frame height.
    pub height: usize,
    /// Frame width.
    pub width: usize,
    /// Renderer supersampling factor (1 = fastest).
    pub supersample: usize,
    /// Which score backends to train per domain. Stored (and reported)
    /// sorted by backend id; all non-raw backends share one steering
    /// CNN per domain.
    pub backends: Vec<BackendKind>,
    /// When set, each cell additionally fuses the per-backend verdicts
    /// with [`crate::fuse_verdict`] (majority quorum) and the top-level
    /// cell numbers become the ensemble's.
    pub ensemble: bool,
}

impl GridConfig {
    /// Smoke-test scale: seconds-long, used by CI and unit tests.
    pub fn quick(seed: u64) -> GridConfig {
        GridConfig {
            train_len: 24,
            test_len: 8,
            cnn_epochs: 2,
            ae_epochs: 10,
            seed,
            height: 40,
            width: 80,
            supersample: 1,
            backends: vec![BackendKind::VbpSsim],
            ensemble: false,
        }
    }

    /// Paper-geometry scale (60×160): minutes-long per domain. Trains
    /// every registered backend and reports the ensemble fusion.
    pub fn full(seed: u64) -> GridConfig {
        GridConfig {
            train_len: 300,
            test_len: 100,
            cnn_epochs: 6,
            ae_epochs: 40,
            seed,
            height: 60,
            width: 160,
            supersample: 2,
            backends: BackendKind::all().to_vec(),
            ensemble: true,
        }
    }

    /// Switches this config to train every registered backend and fuse
    /// their verdicts per cell.
    #[must_use]
    pub fn with_ensemble(mut self) -> GridConfig {
        self.backends = BackendKind::all().to_vec();
        self.ensemble = true;
        self
    }
}

/// Per-backend slice of one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendCellReport {
    /// Backend id (`vbp+ssim`, `model-char`, …).
    pub backend: String,
    /// AUROC of this backend's score-domain scores vs its held-out
    /// train-domain scores under its orientation.
    pub auroc: f32,
    /// Fraction of score-domain frames past this backend's calibrated
    /// threshold.
    pub exceedance: f32,
}

/// One cell of the matrix: detectors trained on `train_domain`, scored
/// on `score_domain`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Domain the detectors were trained (and calibrated) on.
    pub train_domain: String,
    /// Domain whose frames were scored.
    pub score_domain: String,
    /// Headline AUROC: the ensemble fusion's when the run fused, else
    /// the first backend's. ≈ 0.5 on the diagonal.
    pub auroc: f32,
    /// Headline exceedance (same selection rule as `auroc`).
    pub exceedance: f32,
    /// Mean SSIM between the two domains' renderings of the same base
    /// scenes (1.0 on the diagonal).
    pub mean_ssim: f32,
    /// Per-backend columns, sorted by backend id.
    pub backends: Vec<BackendCellReport>,
}

/// Calibrated threshold of one backend's detector in one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendThreshold {
    /// Backend id.
    pub backend: String,
    /// Calibrated novelty threshold.
    pub threshold: f32,
}

/// Per-domain training summary embedded in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridDomainReport {
    /// Domain label.
    pub name: String,
    /// Modifier-stack spec the domain was rendered with.
    pub spec: String,
    /// Calibrated threshold of the first backend's detector (kept as a
    /// headline; see `thresholds` for every backend).
    pub threshold: f32,
    /// Calibrated thresholds of every backend's detector, sorted by
    /// backend id.
    pub thresholds: Vec<BackendThreshold>,
}

/// The full grid: config echo, per-domain summaries, and
/// `domains² ` cells in row-major (train-domain outer) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridReport {
    /// [`EVALGRID_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Comma-joined backend ids trained per domain (`vbp+ssim` or
    /// `model-char,raw+mse,vbp+mse,vbp+ssim`).
    pub pipeline: String,
    /// Backend ids trained per domain, sorted.
    pub backends: Vec<String>,
    /// Whether the headline cell numbers are the ensemble fusion's.
    pub ensemble: bool,
    /// Master seed of the run.
    pub seed: u64,
    /// Training frames per domain.
    pub train_len: u64,
    /// Held-out / score frames per domain.
    pub test_len: u64,
    /// Frame height.
    pub height: u64,
    /// Frame width.
    pub width: u64,
    /// The domains, in grid order.
    pub domains: Vec<GridDomainReport>,
    /// Row-major cells: all score domains for the first train domain,
    /// then the second, …
    pub cells: Vec<GridCell>,
}

impl GridReport {
    /// Looks up the cell for `(train_domain, score_domain)`.
    pub fn cell(&self, train_domain: &str, score_domain: &str) -> Option<&GridCell> {
        self.cells
            .iter()
            .find(|c| c.train_domain == train_domain && c.score_domain == score_domain)
    }

    /// Mean AUROC over the diagonal (in-distribution) cells.
    pub fn diagonal_mean_auroc(&self) -> f32 {
        mean(
            self.cells
                .iter()
                .filter(|c| c.train_domain == c.score_domain)
                .map(|c| c.auroc),
        )
    }

    /// Mean AUROC over the off-diagonal (cross-domain) cells.
    pub fn off_diagonal_mean_auroc(&self) -> f32 {
        mean(
            self.cells
                .iter()
                .filter(|c| c.train_domain != c.score_domain)
                .map(|c| c.auroc),
        )
    }

    /// Mean AUROC over the off-diagonal cells of one backend's column.
    /// Returns 0.0 for an unknown backend id.
    pub fn backend_off_diagonal_mean_auroc(&self, backend: &str) -> f32 {
        mean(
            self.cells
                .iter()
                .filter(|c| c.train_domain != c.score_domain)
                .flat_map(|c| &c.backends)
                .filter(|b| b.backend == backend)
                .map(|b| b.auroc),
        )
    }

    /// Renders the matrix as a fixed-width text table; each cell shows
    /// the headline `AUROC/exceedance/SSIM`, followed by one
    /// off-diagonal summary line per backend.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<10}", "train\\score"));
        for d in &self.domains {
            out.push_str(&format!("  {:>20}", d.name));
        }
        out.push('\n');
        for a in &self.domains {
            out.push_str(&format!("{:<10}", a.name));
            for b in &self.domains {
                match self.cell(&a.name, &b.name) {
                    Some(c) => out.push_str(&format!(
                        "  {:>20}",
                        format!("{:.3}/{:.2}/{:.2}", c.auroc, c.exceedance, c.mean_ssim)
                    )),
                    None => out.push_str(&format!("  {:>20}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "diagonal mean AUROC {:.3} | off-diagonal mean AUROC {:.3}{}\n",
            self.diagonal_mean_auroc(),
            self.off_diagonal_mean_auroc(),
            if self.ensemble { " (ensemble)" } else { "" }
        ));
        for b in &self.backends {
            out.push_str(&format!(
                "backend {:<12} off-diagonal mean AUROC {:.3}\n",
                b,
                self.backend_off_diagonal_mean_auroc(b)
            ));
        }
        out
    }

    /// Serializes to JSON (the `BENCH_evalgrid.json` format).
    ///
    /// # Errors
    ///
    /// Fails when serialization fails (it cannot for this type).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| NoveltyError::Serde(e.to_string()))
    }

    /// Parses a report back from JSON, checking the schema version.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a schema-version mismatch.
    pub fn from_json(json: &str) -> Result<GridReport> {
        let report: GridReport =
            serde_json::from_str(json).map_err(|e| NoveltyError::Serde(e.to_string()))?;
        if report.schema_version != EVALGRID_SCHEMA_VERSION {
            return Err(NoveltyError::invalid(
                "evalgrid",
                format!(
                    "schema version {} != supported {}",
                    report.schema_version, EVALGRID_SCHEMA_VERSION
                ),
            ));
        }
        Ok(report)
    }
}

fn mean(iter: impl Iterator<Item = f32>) -> f32 {
    let mut sum = 0.0f32;
    let mut n = 0usize;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f32
    }
}

fn validate_domains(domains: &[GridDomain]) -> Result<Vec<ModifierStack>> {
    if domains.len() < 2 {
        return Err(NoveltyError::invalid(
            "evalgrid",
            "need at least two domains to form a grid",
        ));
    }
    let mut stacks = Vec::with_capacity(domains.len());
    for (i, d) in domains.iter().enumerate() {
        if d.name.is_empty()
            || !d
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(NoveltyError::invalid(
                "evalgrid",
                format!("domain name {:?} must be ASCII alphanumeric/_", d.name),
            ));
        }
        if domains[..i].iter().any(|prev| prev.name == d.name) {
            return Err(NoveltyError::invalid(
                "evalgrid",
                format!("duplicate domain name {:?}", d.name),
            ));
        }
        let stack = ModifierStack::parse(&d.spec)
            .map_err(|e| NoveltyError::invalid("evalgrid", format!("domain {:?}: {e}", d.name)))?;
        stacks.push(stack);
    }
    Ok(stacks)
}

fn validate_backends(cfg: &GridConfig) -> Result<Vec<BackendKind>> {
    if cfg.backends.is_empty() {
        return Err(NoveltyError::invalid(
            "evalgrid",
            "at least one backend is required",
        ));
    }
    let mut kinds = cfg.backends.clone();
    kinds.sort_by_key(|k| k.id());
    for pair in kinds.windows(2) {
        if pair[0] == pair[1] {
            return Err(NoveltyError::invalid(
                "evalgrid",
                format!("duplicate backend {:?}", pair[0].id()),
            ));
        }
    }
    Ok(kinds)
}

fn base_dataset(cfg: &GridConfig, len: usize, seed: u64) -> DrivingDataset {
    DatasetConfig::outdoor()
        .with_len(len)
        .with_size(cfg.height, cfg.width)
        .with_supersample(cfg.supersample)
        .generate(seed)
}

fn images_of(ds: &DrivingDataset) -> Vec<Image> {
    ds.frames().iter().map(|f| f.image.clone()).collect()
}

/// Fuses member-major per-image scores into per-image ensemble scores
/// (top-2 oriented percentile rank, see [`fuse_verdict`]) and the
/// fraction of images whose fused vote flagged novel.
fn fuse_columns(
    members: &[NoveltyDetector],
    per_member: &[Vec<f32>],
    quorum: u32,
) -> (Vec<f32>, f32) {
    let n_images = per_member.first().map_or(0, Vec::len);
    let mut scores = Vec::with_capacity(members.len());
    let mut fused = Vec::with_capacity(n_images);
    let mut flagged = 0usize;
    for i in 0..n_images {
        scores.clear();
        for (det, column) in members.iter().zip(per_member) {
            scores.push(det.backend_score(column[i]));
        }
        let v = fuse_verdict(&scores, quorum);
        flagged += usize::from(v.is_novel);
        fused.push(v.score);
    }
    let rate = if n_images == 0 {
        0.0
    } else {
        flagged as f32 / n_images as f32
    };
    (fused, rate)
}

/// Runs the full grid: trains one detector per (domain, backend) pair
/// with a per-domain shared steering CNN (stage
/// `evalgrid-train-<name>`), then scores every (train, score) pair
/// (stage `evalgrid-cell-<a>-<b>`).
///
/// Train, held-out and score base scenes come from three disjoint seeds;
/// the score-side base scenes are *shared* across domains so the per-cell
/// mean SSIM compares renderings of identical geometry.
///
/// # Errors
///
/// Fails on invalid domains (bad name, bad spec, duplicates, fewer than
/// two), an empty or duplicated backend list, zero-length datasets, or
/// any training/scoring failure.
pub fn run_evalgrid(
    domains: &[GridDomain],
    cfg: &GridConfig,
    recorder: &dyn Recorder,
) -> Result<GridReport> {
    let stacks = validate_domains(domains)?;
    let kinds = validate_backends(cfg)?;
    if cfg.train_len == 0 || cfg.test_len == 0 {
        return Err(NoveltyError::invalid(
            "evalgrid",
            "train_len and test_len must be non-zero",
        ));
    }

    let train_base = base_dataset(cfg, cfg.train_len, cfg.seed);
    let target_base = base_dataset(cfg, cfg.test_len, cfg.seed.wrapping_add(1));
    let score_base = base_dataset(cfg, cfg.test_len, cfg.seed.wrapping_add(2));

    // Per-domain artifacts. `ensembles[d]` holds the domain's member
    // detectors sorted by backend id (matching `kinds`);
    // `target_scores[d][m]` the held-out scores of member `m`.
    let mut ensembles = Vec::with_capacity(domains.len());
    let mut target_scores: Vec<Vec<Vec<f32>>> = Vec::with_capacity(domains.len());
    let mut target_fused: Vec<Vec<f32>> = Vec::with_capacity(domains.len());
    let mut score_images: Vec<Vec<Image>> = Vec::with_capacity(domains.len());
    let mut domain_reports = Vec::with_capacity(domains.len());
    for (d, stack) in domains.iter().zip(&stacks) {
        let train_ds = train_base.modified(stack, cfg.seed);
        let target_ds = target_base.modified(stack, cfg.seed.wrapping_add(1));
        let score_ds = score_base.modified(stack, cfg.seed.wrapping_add(2));
        let base = NoveltyDetectorBuilder::paper()
            .cnn_epochs(cfg.cnn_epochs)
            .ae_epochs(cfg.ae_epochs)
            .seed(cfg.seed);
        let ensemble = obs::time(recorder, &format!("evalgrid-train-{}", d.name), || {
            EnsembleDetector::train_recorded(&base, &kinds, &train_ds, recorder)
        })?;
        let held_out = images_of(&target_ds);
        let mut member_scores = Vec::with_capacity(kinds.len());
        for member in ensemble.members() {
            member_scores.push(member.score_batch_recorded(&held_out, recorder)?);
        }
        let (fused, _) = fuse_columns(ensemble.members(), &member_scores, ensemble.quorum());
        let thresholds: Vec<BackendThreshold> = ensemble
            .members()
            .iter()
            .map(|m| BackendThreshold {
                backend: m.kind().id().to_string(),
                threshold: m.threshold().value(),
            })
            .collect();
        let first_threshold = thresholds.first().map_or(0.0, |t| t.threshold);
        recorder.gauge(
            &format!("evalgrid.threshold.{}", d.name),
            first_threshold as f64,
        );
        domain_reports.push(GridDomainReport {
            name: d.name.clone(),
            spec: stack.spec(),
            threshold: first_threshold,
            thresholds,
        });
        ensembles.push(ensemble);
        target_scores.push(member_scores);
        target_fused.push(fused);
        score_images.push(images_of(&score_ds));
    }

    // Detector-free image-space distances between domains, over shared
    // base scenes (symmetric; computed once per unordered pair).
    let n = domains.len();
    let ssim_cfg = SsimConfig::default();
    let mut pair_ssim = vec![0.0f32; n * n];
    for a in 0..n {
        for b in a..n {
            let mut sum = 0.0f32;
            for (x, y) in score_images[a].iter().zip(&score_images[b]) {
                sum += ssim(x, y, &ssim_cfg)?;
            }
            let m = sum / score_images[a].len() as f32;
            pair_ssim[a * n + b] = m;
            pair_ssim[b * n + a] = m;
        }
    }

    let fused_orientation = Direction::HigherIsNovel.orientation();
    let mut cells = Vec::with_capacity(n * n);
    for (a, ens) in ensembles.iter().enumerate() {
        for b in 0..n {
            let cell = obs::time(
                recorder,
                &format!("evalgrid-cell-{}-{}", domains[a].name, domains[b].name),
                || -> Result<GridCell> {
                    let mut member_scores = Vec::with_capacity(kinds.len());
                    let mut backends = Vec::with_capacity(kinds.len());
                    for (m, member) in ens.members().iter().enumerate() {
                        let scores = member.score_batch_recorded(&score_images[b], recorder)?;
                        let orientation = member.threshold().direction().orientation();
                        backends.push(BackendCellReport {
                            backend: member.kind().id().to_string(),
                            auroc: auroc(&target_scores[a][m], &scores, orientation)?,
                            exceedance: detection_rate(
                                &scores,
                                member.threshold().value(),
                                orientation,
                            )?,
                        });
                        member_scores.push(scores);
                    }
                    let (cell_auroc, cell_exceedance) = if cfg.ensemble {
                        let (fused, flagged) =
                            fuse_columns(ens.members(), &member_scores, ens.quorum());
                        (auroc(&target_fused[a], &fused, fused_orientation)?, flagged)
                    } else {
                        backends
                            .first()
                            .map_or((0.0, 0.0), |c| (c.auroc, c.exceedance))
                    };
                    let cell = GridCell {
                        train_domain: domains[a].name.clone(),
                        score_domain: domains[b].name.clone(),
                        auroc: cell_auroc,
                        exceedance: cell_exceedance,
                        mean_ssim: pair_ssim[a * n + b],
                        backends,
                    };
                    recorder.gauge(
                        &format!("evalgrid.auroc.{}.{}", cell.train_domain, cell.score_domain),
                        cell.auroc as f64,
                    );
                    Ok(cell)
                },
            )?;
            cells.push(cell);
        }
    }

    let backend_ids: Vec<String> = kinds.iter().map(|k| k.id().to_string()).collect();
    Ok(GridReport {
        schema_version: EVALGRID_SCHEMA_VERSION,
        pipeline: backend_ids.join(","),
        backends: backend_ids,
        ensemble: cfg.ensemble,
        seed: cfg.seed,
        train_len: cfg.train_len as u64,
        test_len: cfg.test_len as u64,
        height: cfg.height as u64,
        width: cfg.width as u64,
        domains: domain_reports,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_domains() -> Vec<GridDomain> {
        vec![
            GridDomain::new("clear", "clear"),
            GridDomain::new("fognight", "fog@0.8+night@0.6"),
        ]
    }

    #[test]
    fn grid_shape_and_diagonal_properties() {
        let report = run_evalgrid(&quick_domains(), &GridConfig::quick(5), obs::noop()).unwrap();
        assert_eq!(report.schema_version, EVALGRID_SCHEMA_VERSION);
        assert_eq!(report.domains.len(), 2);
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.backends, vec!["vbp+ssim".to_string()]);
        assert_eq!(report.pipeline, "vbp+ssim");
        assert!(!report.ensemble);
        for c in &report.cells {
            assert!((0.0..=1.0).contains(&c.auroc), "auroc {}", c.auroc);
            assert!((0.0..=1.0).contains(&c.exceedance));
            assert!(c.mean_ssim.is_finite());
            // Single-backend run: headline numbers are the backend's.
            assert_eq!(c.backends.len(), 1);
            assert_eq!(c.backends[0].backend, "vbp+ssim");
            assert_eq!(c.backends[0].auroc, c.auroc);
            assert_eq!(c.backends[0].exceedance, c.exceedance);
        }
        for d in &report.domains {
            assert_eq!(d.thresholds.len(), 1);
            assert_eq!(d.thresholds[0].threshold, d.threshold);
        }
        // Diagonal SSIM compares identical renderings.
        let diag = report.cell("clear", "clear").unwrap();
        assert!(
            (diag.mean_ssim - 1.0).abs() < 1e-5,
            "ssim {}",
            diag.mean_ssim
        );
        // Off-diagonal image distance is strictly smaller.
        let off = report.cell("clear", "fognight").unwrap();
        assert!(off.mean_ssim < diag.mean_ssim);
        // Symmetric detector-free distance.
        let rev = report.cell("fognight", "clear").unwrap();
        assert!((off.mean_ssim - rev.mean_ssim).abs() < 1e-6);
        let table = report.render_table();
        assert!(table.contains("fognight"));
        assert!(table.contains("diagonal mean AUROC"));
        assert!(table.contains("backend vbp+ssim"));
    }

    #[test]
    fn ensemble_grid_reports_backends_side_by_side() {
        let mut cfg = GridConfig::quick(5);
        cfg.backends = vec![BackendKind::VbpSsim, BackendKind::RawMse];
        cfg.ensemble = true;
        let report = run_evalgrid(&quick_domains(), &cfg, obs::noop()).unwrap();
        // Backend order is sorted by id regardless of config order.
        assert_eq!(
            report.backends,
            vec!["raw+mse".to_string(), "vbp+ssim".to_string()]
        );
        assert_eq!(report.pipeline, "raw+mse,vbp+ssim");
        assert!(report.ensemble);
        for c in &report.cells {
            assert_eq!(c.backends.len(), 2);
            assert_eq!(c.backends[0].backend, "raw+mse");
            assert_eq!(c.backends[1].backend, "vbp+ssim");
            assert!((0.0..=1.0).contains(&c.auroc), "auroc {}", c.auroc);
            assert!((0.0..=1.0).contains(&c.exceedance));
            for bc in &c.backends {
                assert!((0.0..=1.0).contains(&bc.auroc));
                assert!((0.0..=1.0).contains(&bc.exceedance));
            }
        }
        for d in &report.domains {
            assert_eq!(d.thresholds.len(), 2);
            assert_eq!(d.thresholds[0].backend, "raw+mse");
        }
        let table = report.render_table();
        assert!(table.contains("(ensemble)"));
        assert!(table.contains("backend raw+mse"));
        // The vbp+ssim column must match a single-backend run of the
        // same seed (shared-CNN training is bit-identical).
        let single = run_evalgrid(&quick_domains(), &GridConfig::quick(5), obs::noop()).unwrap();
        for c in &report.cells {
            let s = single.cell(&c.train_domain, &c.score_domain).unwrap();
            let vbp = &c.backends[1];
            assert_eq!(vbp.auroc, s.auroc, "{}→{}", c.train_domain, c.score_domain);
            assert_eq!(vbp.exceedance, s.exceedance);
        }
    }

    #[test]
    fn report_round_trips_and_is_deterministic() {
        let a = run_evalgrid(&quick_domains(), &GridConfig::quick(7), obs::noop()).unwrap();
        let b = run_evalgrid(&quick_domains(), &GridConfig::quick(7), obs::noop()).unwrap();
        let ja = a.to_json().unwrap();
        let jb = b.to_json().unwrap();
        assert_eq!(ja, jb, "same config must produce byte-identical JSON");
        let back = GridReport::from_json(&ja).unwrap();
        assert_eq!(back, a);
        // Schema guard.
        let mut tampered = a.clone();
        tampered.schema_version = 99;
        assert!(GridReport::from_json(&tampered.to_json().unwrap()).is_err());
    }

    #[test]
    fn validation_rejects_bad_grids() {
        let cfg = GridConfig::quick(1);
        let rec = obs::noop();
        // Too few domains.
        let one = vec![GridDomain::new("clear", "clear")];
        assert!(run_evalgrid(&one, &cfg, rec).is_err());
        // Bad name (separator would corrupt stage names).
        let bad_name = vec![
            GridDomain::new("cl-ear", "clear"),
            GridDomain::new("x", "clear"),
        ];
        assert!(run_evalgrid(&bad_name, &cfg, rec).is_err());
        // Duplicate names.
        let dup = vec![
            GridDomain::new("a", "clear"),
            GridDomain::new("a", "fog@0.5"),
        ];
        assert!(run_evalgrid(&dup, &cfg, rec).is_err());
        // Unknown modifier.
        let bad_spec = vec![
            GridDomain::new("a", "clear"),
            GridDomain::new("b", "blizzard@0.5"),
        ];
        assert!(run_evalgrid(&bad_spec, &cfg, rec).is_err());
        // No backends.
        let mut no_backends = GridConfig::quick(1);
        no_backends.backends.clear();
        assert!(run_evalgrid(&quick_domains(), &no_backends, rec).is_err());
        // Duplicate backends.
        let mut dup_backends = GridConfig::quick(1);
        dup_backends.backends = vec![BackendKind::VbpSsim, BackendKind::VbpSsim];
        assert!(run_evalgrid(&quick_domains(), &dup_backends, rec).is_err());
    }

    #[test]
    fn recording_does_not_change_the_report() {
        let rec = obs::RunRecorder::new();
        let with = run_evalgrid(&quick_domains(), &GridConfig::quick(3), &rec).unwrap();
        let without = run_evalgrid(&quick_domains(), &GridConfig::quick(3), obs::noop()).unwrap();
        assert_eq!(with, without);
        let report = rec.report("evalgrid-test");
        assert!(report.stage("evalgrid-train-clear").is_some());
        assert!(report.stage("evalgrid-cell-clear-fognight").is_some());
    }
}
