//! Train-domain × score-domain evaluation grid.
//!
//! The paper's separation claim (Figs. 5/7) is demonstrated on a single
//! holdout pair (outdoor vs indoor). This module generalizes the
//! protocol to a full matrix over *scenario domains*: each domain is a
//! [`simdrive::ModifierStack`] spec (e.g. `"fog@0.7+night@0.5"`) applied
//! to a shared base world. One detector is trained per domain; every
//! detector then scores every domain's test set, yielding a grid whose
//! diagonal is in-distribution (AUROC ≈ 0.5) and whose off-diagonal
//! cells measure cross-domain novelty — the stratified generalization
//! grid of Shekar et al. (arXiv:2201.00531) applied to the VBP pipeline.
//!
//! Per cell `(train A, score B)` the grid records:
//!
//! * **AUROC** of detector-A scores on domain-B frames against
//!   detector-A scores on held-out domain-A frames,
//! * **exceedance**: the fraction of domain-B frames past detector-A's
//!   calibrated threshold (the paper's "detection rate"),
//! * **mean SSIM** between domain-A and domain-B renderings of the
//!   *same* base scenes — a detector-free image-space distance that
//!   contextualizes the score-space separation (diagonal ≡ 1).
//!
//! Everything is a pure function of the config seed: the same
//! [`GridConfig`] produces a byte-identical [`GridReport`] at any thread
//! count, which is what lets CI `cmp` two runs of the smoke grid.

use metrics::separation::{auroc, detection_rate};
use metrics::{ssim, SsimConfig};
use obs::Recorder;
use serde::{Deserialize, Serialize};
use simdrive::{DatasetConfig, DrivingDataset, ModifierStack};
use vision::Image;

use crate::{NoveltyDetectorBuilder, NoveltyError, PipelineKind, Result};

/// Bump on breaking changes to the [`GridReport`] JSON layout.
pub const EVALGRID_SCHEMA_VERSION: u32 = 1;

/// One scenario domain: a short label plus the modifier-stack spec that
/// renders it (see [`ModifierStack::parse`]). `"clear"` is the
/// unmodified base world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridDomain {
    /// Short label used in stage names, table headers and cell keys.
    /// Must be non-empty ASCII alphanumeric/`_` (no separators, so
    /// `evalgrid-cell-<a>-<b>` stage names stay parseable).
    pub name: String,
    /// Modifier-stack spec, e.g. `"fog@0.7+night@0.5"` or `"clear"`.
    pub spec: String,
}

impl GridDomain {
    /// Builds a domain from a label and a spec.
    pub fn new(name: impl Into<String>, spec: impl Into<String>) -> GridDomain {
        GridDomain {
            name: name.into(),
            spec: spec.into(),
        }
    }
}

/// Sizing and seeding for one grid run. All fields are honest knobs —
/// the report embeds them so a committed JSON is self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridConfig {
    /// Frames per training dataset.
    pub train_len: usize,
    /// Frames per held-out / score dataset.
    pub test_len: usize,
    /// Steering-CNN epochs.
    pub cnn_epochs: usize,
    /// Autoencoder epochs.
    pub ae_epochs: usize,
    /// Master seed; train/target/score base datasets derive from
    /// `seed`, `seed+1`, `seed+2`.
    pub seed: u64,
    /// Frame height.
    pub height: usize,
    /// Frame width.
    pub width: usize,
    /// Renderer supersampling factor (1 = fastest).
    pub supersample: usize,
    /// Which of the paper's three pipelines to train per domain.
    pub kind: PipelineKind,
}

impl GridConfig {
    /// Smoke-test scale: seconds-long, used by CI and unit tests.
    pub fn quick(seed: u64) -> GridConfig {
        GridConfig {
            train_len: 24,
            test_len: 8,
            cnn_epochs: 2,
            ae_epochs: 10,
            seed,
            height: 40,
            width: 80,
            supersample: 1,
            kind: PipelineKind::VbpSsim,
        }
    }

    /// Paper-geometry scale (60×160): minutes-long per domain.
    pub fn full(seed: u64) -> GridConfig {
        GridConfig {
            train_len: 300,
            test_len: 100,
            cnn_epochs: 6,
            ae_epochs: 40,
            seed,
            height: 60,
            width: 160,
            supersample: 2,
            kind: PipelineKind::VbpSsim,
        }
    }
}

/// One cell of the matrix: detector trained on `train_domain`, scored
/// on `score_domain`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Domain the detector was trained (and calibrated) on.
    pub train_domain: String,
    /// Domain whose frames were scored.
    pub score_domain: String,
    /// AUROC of score-domain scores vs held-out train-domain scores
    /// under the detector's orientation. ≈ 0.5 on the diagonal.
    pub auroc: f32,
    /// Fraction of score-domain frames past the calibrated threshold.
    pub exceedance: f32,
    /// Mean SSIM between the two domains' renderings of the same base
    /// scenes (1.0 on the diagonal).
    pub mean_ssim: f32,
}

/// Per-domain training summary embedded in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridDomainReport {
    /// Domain label.
    pub name: String,
    /// Modifier-stack spec the domain was rendered with.
    pub spec: String,
    /// Calibrated novelty threshold of this domain's detector.
    pub threshold: f32,
}

/// The full grid: config echo, per-domain summaries, and
/// `domains² ` cells in row-major (train-domain outer) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridReport {
    /// [`EVALGRID_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Pipeline variant trained per domain (`vbp+ssim` etc.).
    pub pipeline: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Training frames per domain.
    pub train_len: u64,
    /// Held-out / score frames per domain.
    pub test_len: u64,
    /// Frame height.
    pub height: u64,
    /// Frame width.
    pub width: u64,
    /// The domains, in grid order.
    pub domains: Vec<GridDomainReport>,
    /// Row-major cells: all score domains for the first train domain,
    /// then the second, …
    pub cells: Vec<GridCell>,
}

impl GridReport {
    /// Looks up the cell for `(train_domain, score_domain)`.
    pub fn cell(&self, train_domain: &str, score_domain: &str) -> Option<&GridCell> {
        self.cells
            .iter()
            .find(|c| c.train_domain == train_domain && c.score_domain == score_domain)
    }

    /// Mean AUROC over the diagonal (in-distribution) cells.
    pub fn diagonal_mean_auroc(&self) -> f32 {
        mean(
            self.cells
                .iter()
                .filter(|c| c.train_domain == c.score_domain)
                .map(|c| c.auroc),
        )
    }

    /// Mean AUROC over the off-diagonal (cross-domain) cells.
    pub fn off_diagonal_mean_auroc(&self) -> f32 {
        mean(
            self.cells
                .iter()
                .filter(|c| c.train_domain != c.score_domain)
                .map(|c| c.auroc),
        )
    }

    /// Renders the matrix as a fixed-width text table; each cell shows
    /// `AUROC/exceedance/SSIM`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<10}", "train\\score"));
        for d in &self.domains {
            out.push_str(&format!("  {:>20}", d.name));
        }
        out.push('\n');
        for a in &self.domains {
            out.push_str(&format!("{:<10}", a.name));
            for b in &self.domains {
                match self.cell(&a.name, &b.name) {
                    Some(c) => out.push_str(&format!(
                        "  {:>20}",
                        format!("{:.3}/{:.2}/{:.2}", c.auroc, c.exceedance, c.mean_ssim)
                    )),
                    None => out.push_str(&format!("  {:>20}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "diagonal mean AUROC {:.3} | off-diagonal mean AUROC {:.3}\n",
            self.diagonal_mean_auroc(),
            self.off_diagonal_mean_auroc()
        ));
        out
    }

    /// Serializes to JSON (the `BENCH_evalgrid.json` format).
    ///
    /// # Errors
    ///
    /// Fails when serialization fails (it cannot for this type).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| NoveltyError::Serde(e.to_string()))
    }

    /// Parses a report back from JSON, checking the schema version.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a schema-version mismatch.
    pub fn from_json(json: &str) -> Result<GridReport> {
        let report: GridReport =
            serde_json::from_str(json).map_err(|e| NoveltyError::Serde(e.to_string()))?;
        if report.schema_version != EVALGRID_SCHEMA_VERSION {
            return Err(NoveltyError::invalid(
                "evalgrid",
                format!(
                    "schema version {} != supported {}",
                    report.schema_version, EVALGRID_SCHEMA_VERSION
                ),
            ));
        }
        Ok(report)
    }
}

fn mean(iter: impl Iterator<Item = f32>) -> f32 {
    let mut sum = 0.0f32;
    let mut n = 0usize;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f32
    }
}

fn validate_domains(domains: &[GridDomain]) -> Result<Vec<ModifierStack>> {
    if domains.len() < 2 {
        return Err(NoveltyError::invalid(
            "evalgrid",
            "need at least two domains to form a grid",
        ));
    }
    let mut stacks = Vec::with_capacity(domains.len());
    for (i, d) in domains.iter().enumerate() {
        if d.name.is_empty()
            || !d
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(NoveltyError::invalid(
                "evalgrid",
                format!("domain name {:?} must be ASCII alphanumeric/_", d.name),
            ));
        }
        if domains[..i].iter().any(|prev| prev.name == d.name) {
            return Err(NoveltyError::invalid(
                "evalgrid",
                format!("duplicate domain name {:?}", d.name),
            ));
        }
        let stack = ModifierStack::parse(&d.spec)
            .map_err(|e| NoveltyError::invalid("evalgrid", format!("domain {:?}: {e}", d.name)))?;
        stacks.push(stack);
    }
    Ok(stacks)
}

fn base_dataset(cfg: &GridConfig, len: usize, seed: u64) -> DrivingDataset {
    DatasetConfig::outdoor()
        .with_len(len)
        .with_size(cfg.height, cfg.width)
        .with_supersample(cfg.supersample)
        .generate(seed)
}

fn images_of(ds: &DrivingDataset) -> Vec<Image> {
    ds.frames().iter().map(|f| f.image.clone()).collect()
}

/// Runs the full grid: trains one detector per domain (stage
/// `evalgrid-train-<name>`), then scores every (train, score) pair
/// (stage `evalgrid-cell-<a>-<b>`).
///
/// Train, held-out and score base scenes come from three disjoint seeds;
/// the score-side base scenes are *shared* across domains so the per-cell
/// mean SSIM compares renderings of identical geometry.
///
/// # Errors
///
/// Fails on invalid domains (bad name, bad spec, duplicates, fewer than
/// two), zero-length datasets, or any training/scoring failure.
pub fn run_evalgrid(
    domains: &[GridDomain],
    cfg: &GridConfig,
    recorder: &dyn Recorder,
) -> Result<GridReport> {
    let stacks = validate_domains(domains)?;
    if cfg.train_len == 0 || cfg.test_len == 0 {
        return Err(NoveltyError::invalid(
            "evalgrid",
            "train_len and test_len must be non-zero",
        ));
    }

    let train_base = base_dataset(cfg, cfg.train_len, cfg.seed);
    let target_base = base_dataset(cfg, cfg.test_len, cfg.seed.wrapping_add(1));
    let score_base = base_dataset(cfg, cfg.test_len, cfg.seed.wrapping_add(2));

    // Per-domain artifacts.
    let mut detectors = Vec::with_capacity(domains.len());
    let mut target_scores = Vec::with_capacity(domains.len());
    let mut score_images: Vec<Vec<Image>> = Vec::with_capacity(domains.len());
    let mut domain_reports = Vec::with_capacity(domains.len());
    for (d, stack) in domains.iter().zip(&stacks) {
        let train_ds = train_base.modified(stack, cfg.seed);
        let target_ds = target_base.modified(stack, cfg.seed.wrapping_add(1));
        let score_ds = score_base.modified(stack, cfg.seed.wrapping_add(2));
        let detector = obs::time(recorder, &format!("evalgrid-train-{}", d.name), || {
            NoveltyDetectorBuilder::for_kind(cfg.kind)
                .cnn_epochs(cfg.cnn_epochs)
                .ae_epochs(cfg.ae_epochs)
                .seed(cfg.seed)
                .train_recorded(&train_ds, recorder)
        })?;
        let held_out = images_of(&target_ds);
        let scores = detector.score_batch_recorded(&held_out, recorder)?;
        recorder.gauge(
            &format!("evalgrid.threshold.{}", d.name),
            detector.threshold().value() as f64,
        );
        domain_reports.push(GridDomainReport {
            name: d.name.clone(),
            spec: stack.spec(),
            threshold: detector.threshold().value(),
        });
        detectors.push(detector);
        target_scores.push(scores);
        score_images.push(images_of(&score_ds));
    }

    // Detector-free image-space distances between domains, over shared
    // base scenes (symmetric; computed once per unordered pair).
    let n = domains.len();
    let ssim_cfg = SsimConfig::default();
    let mut pair_ssim = vec![0.0f32; n * n];
    for a in 0..n {
        for b in a..n {
            let mut sum = 0.0f32;
            for (x, y) in score_images[a].iter().zip(&score_images[b]) {
                sum += ssim(x, y, &ssim_cfg)?;
            }
            let m = sum / score_images[a].len() as f32;
            pair_ssim[a * n + b] = m;
            pair_ssim[b * n + a] = m;
        }
    }

    let mut cells = Vec::with_capacity(n * n);
    for (a, det) in detectors.iter().enumerate() {
        let orientation = det.threshold().direction().orientation();
        let threshold = det.threshold().value();
        for b in 0..n {
            let cell = obs::time(
                recorder,
                &format!("evalgrid-cell-{}-{}", domains[a].name, domains[b].name),
                || -> Result<GridCell> {
                    let scores = det.score_batch_recorded(&score_images[b], recorder)?;
                    let cell = GridCell {
                        train_domain: domains[a].name.clone(),
                        score_domain: domains[b].name.clone(),
                        auroc: auroc(&target_scores[a], &scores, orientation)?,
                        exceedance: detection_rate(&scores, threshold, orientation)?,
                        mean_ssim: pair_ssim[a * n + b],
                    };
                    recorder.gauge(
                        &format!("evalgrid.auroc.{}.{}", cell.train_domain, cell.score_domain),
                        cell.auroc as f64,
                    );
                    Ok(cell)
                },
            )?;
            cells.push(cell);
        }
    }

    Ok(GridReport {
        schema_version: EVALGRID_SCHEMA_VERSION,
        pipeline: cfg.kind.name().to_string(),
        seed: cfg.seed,
        train_len: cfg.train_len as u64,
        test_len: cfg.test_len as u64,
        height: cfg.height as u64,
        width: cfg.width as u64,
        domains: domain_reports,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_domains() -> Vec<GridDomain> {
        vec![
            GridDomain::new("clear", "clear"),
            GridDomain::new("fognight", "fog@0.8+night@0.6"),
        ]
    }

    #[test]
    fn grid_shape_and_diagonal_properties() {
        let report = run_evalgrid(&quick_domains(), &GridConfig::quick(5), obs::noop()).unwrap();
        assert_eq!(report.schema_version, EVALGRID_SCHEMA_VERSION);
        assert_eq!(report.domains.len(), 2);
        assert_eq!(report.cells.len(), 4);
        for c in &report.cells {
            assert!((0.0..=1.0).contains(&c.auroc), "auroc {}", c.auroc);
            assert!((0.0..=1.0).contains(&c.exceedance));
            assert!(c.mean_ssim.is_finite());
        }
        // Diagonal SSIM compares identical renderings.
        let diag = report.cell("clear", "clear").unwrap();
        assert!(
            (diag.mean_ssim - 1.0).abs() < 1e-5,
            "ssim {}",
            diag.mean_ssim
        );
        // Off-diagonal image distance is strictly smaller.
        let off = report.cell("clear", "fognight").unwrap();
        assert!(off.mean_ssim < diag.mean_ssim);
        // Symmetric detector-free distance.
        let rev = report.cell("fognight", "clear").unwrap();
        assert!((off.mean_ssim - rev.mean_ssim).abs() < 1e-6);
        let table = report.render_table();
        assert!(table.contains("fognight"));
        assert!(table.contains("diagonal mean AUROC"));
    }

    #[test]
    fn report_round_trips_and_is_deterministic() {
        let a = run_evalgrid(&quick_domains(), &GridConfig::quick(7), obs::noop()).unwrap();
        let b = run_evalgrid(&quick_domains(), &GridConfig::quick(7), obs::noop()).unwrap();
        let ja = a.to_json().unwrap();
        let jb = b.to_json().unwrap();
        assert_eq!(ja, jb, "same config must produce byte-identical JSON");
        let back = GridReport::from_json(&ja).unwrap();
        assert_eq!(back, a);
        // Schema guard.
        let mut tampered = a.clone();
        tampered.schema_version = 99;
        assert!(GridReport::from_json(&tampered.to_json().unwrap()).is_err());
    }

    #[test]
    fn validation_rejects_bad_grids() {
        let cfg = GridConfig::quick(1);
        let rec = obs::noop();
        // Too few domains.
        let one = vec![GridDomain::new("clear", "clear")];
        assert!(run_evalgrid(&one, &cfg, rec).is_err());
        // Bad name (separator would corrupt stage names).
        let bad_name = vec![
            GridDomain::new("cl-ear", "clear"),
            GridDomain::new("x", "clear"),
        ];
        assert!(run_evalgrid(&bad_name, &cfg, rec).is_err());
        // Duplicate names.
        let dup = vec![
            GridDomain::new("a", "clear"),
            GridDomain::new("a", "fog@0.5"),
        ];
        assert!(run_evalgrid(&dup, &cfg, rec).is_err());
        // Unknown modifier.
        let bad_spec = vec![
            GridDomain::new("a", "clear"),
            GridDomain::new("b", "blizzard@0.5"),
        ];
        assert!(run_evalgrid(&bad_spec, &cfg, rec).is_err());
    }

    #[test]
    fn recording_does_not_change_the_report() {
        let rec = obs::RunRecorder::new();
        let with = run_evalgrid(&quick_domains(), &GridConfig::quick(3), &rec).unwrap();
        let without = run_evalgrid(&quick_domains(), &GridConfig::quick(3), obs::noop()).unwrap();
        assert_eq!(with, without);
        let report = rec.report("evalgrid-test");
        assert!(report.stage("evalgrid-train-clear").is_some());
        assert!(report.stage("evalgrid-cell-clear-fognight").is_some());
    }
}
