//! Pluggable score backends: the (preprocess, score) pair behind a
//! [`NoveltyDetector`], factored out of the pipeline so new detectors
//! are *instances*, not forks.
//!
//! The paper's detector is one fixed triple — VBP preprocess →
//! autoencoder reconstruct → SSIM score. [`ScoreBackend`] abstracts that
//! triple: the three pipelines of Fig. 5 ([`BackendKind::RawMse`],
//! [`BackendKind::VbpMse`], [`BackendKind::VbpSsim`]) are all the single
//! [`AutoencoderBackend`] type, and [`BackendKind::ModelChar`]
//! ([`crate::ModelCharBackend`]) scores novelty from the steering CNN's
//! *own* per-layer response statistics (Kwon et al., arXiv:2008.06094)
//! with no autoencoder at all.
//!
//! The contract every backend must uphold (see `DESIGN.md`):
//!
//! * `score` is a pure function of `(backend state, image)` —
//!   bit-identical at any thread count, with or without recording;
//! * `preprocess`/`score` never mutate observable state (interior
//!   mutability is allowed only when call order cannot change results);
//! * the backend is `Send + Sync` so `score_batch` can fan out over the
//!   [`ndtensor::par`] work pool.
//!
//! [`Detector`] is the counterpart one level up: the common face of
//! [`NoveltyDetector`] (one backend + one calibrated threshold) and
//! [`crate::EnsembleDetector`] (several backends + vote fusion), which is
//! what the stream runtime, the evaluator and the CLI program against.

use neural::Network;
use obs::Recorder;
use saliency::visual_backprop;
use serde::{Deserialize, Serialize};
use vision::Image;

use crate::modelchar::StatProfile;
use crate::{AutoencoderClassifier, Direction, NoveltyError, ReconstructionObjective, Result};

/// The preprocessing layer: feed raw frames to the one-class classifier,
/// or VisualBackProp masks computed on the trained steering CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preprocessing {
    /// Raw grayscale frames (Richter & Roy baseline).
    Raw,
    /// VisualBackProp saliency masks (the paper's preprocessing).
    Vbp,
}

impl Preprocessing {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Preprocessing::Raw => "raw",
            Preprocessing::Vbp => "vbp",
        }
    }
}

/// The registered score backends. The first three are the pipelines the
/// paper compares in Fig. 5; the fourth characterizes the steering model
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// Raw images + MSE autoencoder (Richter & Roy, reference 9).
    RawMse,
    /// VBP masks + MSE autoencoder (ablation).
    VbpMse,
    /// VBP masks + SSIM autoencoder (the paper's method).
    VbpSsim,
    /// Model characterization: per-layer activation/gradient statistics
    /// of the steering CNN against a calibrated training profile
    /// (Kwon et al., arXiv:2008.06094).
    ModelChar,
}

/// Deprecated alias for [`BackendKind`], kept so call sites written
/// against the closed three-variant enum keep compiling for one release.
/// Note that [`BackendKind::all`] now has four entries; iterate
/// [`BackendKind::legacy`] for the paper's original three pipelines.
pub type PipelineKind = BackendKind;

impl BackendKind {
    /// The stable registry id (used in CLI flags, detector files and
    /// report columns): `raw+mse`, `vbp+mse`, `vbp+ssim`, `model-char`.
    pub fn id(&self) -> &'static str {
        match self {
            BackendKind::RawMse => "raw+mse",
            BackendKind::VbpMse => "vbp+mse",
            BackendKind::VbpSsim => "vbp+ssim",
            BackendKind::ModelChar => "model-char",
        }
    }

    /// Alias of [`BackendKind::id`] (matches the paper's figure labels
    /// for the legacy three).
    pub fn name(&self) -> &'static str {
        self.id()
    }

    /// Every registered backend, in registry order.
    pub fn all() -> [BackendKind; 4] {
        [
            BackendKind::RawMse,
            BackendKind::VbpMse,
            BackendKind::VbpSsim,
            BackendKind::ModelChar,
        ]
    }

    /// The paper's three autoencoder pipelines in Fig. 5's
    /// left-to-right order (what `PipelineKind::all()` used to return).
    pub fn legacy() -> [BackendKind; 3] {
        [
            BackendKind::RawMse,
            BackendKind::VbpMse,
            BackendKind::VbpSsim,
        ]
    }

    /// Looks a backend up by its registry id.
    pub fn from_id(id: &str) -> Option<BackendKind> {
        BackendKind::all().into_iter().find(|k| k.id() == id)
    }

    /// The preprocessing layer the backend applies, when it has one
    /// (model characterization consumes the frame directly).
    pub fn preprocessing(&self) -> Option<Preprocessing> {
        match self {
            BackendKind::RawMse => Some(Preprocessing::Raw),
            BackendKind::VbpMse | BackendKind::VbpSsim => Some(Preprocessing::Vbp),
            BackendKind::ModelChar => None,
        }
    }

    /// Short name of the scoring metric.
    pub fn metric_name(&self) -> &'static str {
        match self {
            BackendKind::RawMse | BackendKind::VbpMse => "mse",
            BackendKind::VbpSsim => "ssim",
            BackendKind::ModelChar => "layer-stats",
        }
    }

    /// One-line description for the `backends` CLI listing.
    pub fn describe(&self) -> &'static str {
        match self {
            BackendKind::RawMse => "raw frames reconstructed by an MSE autoencoder (Richter & Roy baseline)",
            BackendKind::VbpMse => "VisualBackProp masks reconstructed by an MSE autoencoder (ablation)",
            BackendKind::VbpSsim => "VisualBackProp masks reconstructed by an SSIM autoencoder (the paper's method)",
            BackendKind::ModelChar => "per-layer activation/gradient statistics of the steering CNN vs a calibrated training profile",
        }
    }
}

/// One pluggable scoring strategy: the (preprocess, score) pair a
/// [`NoveltyDetector`] wraps with calibration.
///
/// Implementations must be pure: `score` is a function of the backend's
/// frozen state and the image only, bit-identical at any thread count.
/// Input validation (non-finite pixels, geometry) is performed by the
/// detector before the backend is consulted, so implementations may
/// assume a finite, correctly-sized image.
pub trait ScoreBackend: std::fmt::Debug + Send + Sync {
    /// Which registered backend this is.
    fn kind(&self) -> BackendKind;

    /// Which side of a calibrated threshold counts as novel for this
    /// backend's scores.
    fn direction(&self) -> Direction;

    /// The `(height, width)` geometry the backend was trained on.
    fn input_size(&self) -> (usize, usize);

    /// The representation the score is computed on (identity for raw
    /// pipelines, a VBP mask for saliency pipelines, and the frame
    /// itself for model characterization).
    ///
    /// # Errors
    ///
    /// Fails when the image is incompatible with the backend's networks.
    fn preprocess(&self, image: &Image) -> Result<Image>;

    /// Scores one (finite, correctly-sized) image.
    ///
    /// # Errors
    ///
    /// Fails when the image is incompatible with the backend's networks.
    fn score(&self, image: &Image) -> Result<f32>;

    /// Scores several (finite, correctly-sized) images, one result per
    /// image, in order. Unlike a fail-fast batch, a bad image fails
    /// only its own slot — the serving layer's cross-tenant mega-batch
    /// depends on that isolation. Implementations may batch internally
    /// but must keep score `i` bit-identical to [`ScoreBackend::score`]
    /// on image `i`, at any thread count.
    fn score_each(&self, images: &[&Image]) -> Vec<Result<f32>> {
        images.iter().map(|img| self.score(img)).collect()
    }

    /// The (representation, reconstruction) pair of Fig. 6, for backends
    /// built around a reconstruction model.
    ///
    /// # Errors
    ///
    /// Fails for backends that do not reconstruct (model
    /// characterization), or on incompatible images.
    fn reconstruct(&self, image: &Image) -> Result<(Image, Image)> {
        let _ = image;
        Err(NoveltyError::invalid(
            "reconstruct",
            format!(
                "the {} backend has no reconstruction pair",
                self.kind().id()
            ),
        ))
    }

    /// The trained steering network, when the backend carries one.
    fn steering_network(&self) -> Option<&Network> {
        None
    }

    /// The autoencoder classifier, for backends built around one.
    fn classifier(&self) -> Option<&AutoencoderClassifier> {
        None
    }

    /// The calibrated per-layer statistics profile, for the
    /// model-characterization backend.
    fn stat_profile(&self) -> Option<&StatProfile> {
        None
    }

    /// Short name of the scoring metric (`mse`, `ssim`, `layer-stats`).
    fn metric_name(&self) -> &'static str {
        self.kind().metric_name()
    }
}

/// The autoencoder-reconstruction backend behind the paper's three
/// pipelines: an optional steering CNN (for VBP preprocessing) plus a
/// one-class reconstruction classifier.
#[derive(Debug)]
pub struct AutoencoderBackend {
    steering: Option<Network>,
    classifier: AutoencoderClassifier,
    preprocessing: Preprocessing,
}

impl AutoencoderBackend {
    /// Assembles the backend, validating that VBP preprocessing has a
    /// steering network to backprop through.
    ///
    /// # Errors
    ///
    /// Fails when `preprocessing` is [`Preprocessing::Vbp`] but no
    /// steering network is provided.
    pub fn new(
        steering: Option<Network>,
        classifier: AutoencoderClassifier,
        preprocessing: Preprocessing,
    ) -> Result<Self> {
        if preprocessing == Preprocessing::Vbp && steering.is_none() {
            return Err(NoveltyError::invalid(
                "AutoencoderBackend",
                "VBP preprocessing requires a steering network",
            ));
        }
        Ok(AutoencoderBackend {
            steering,
            classifier,
            preprocessing,
        })
    }
}

impl ScoreBackend for AutoencoderBackend {
    fn kind(&self) -> BackendKind {
        match (self.preprocessing, self.classifier.objective()) {
            (Preprocessing::Raw, _) => BackendKind::RawMse,
            (Preprocessing::Vbp, ReconstructionObjective::Mse) => BackendKind::VbpMse,
            (Preprocessing::Vbp, ReconstructionObjective::Ssim { .. }) => BackendKind::VbpSsim,
        }
    }

    fn direction(&self) -> Direction {
        self.classifier.direction()
    }

    fn input_size(&self) -> (usize, usize) {
        (self.classifier.height(), self.classifier.width())
    }

    fn preprocess(&self, image: &Image) -> Result<Image> {
        match (self.preprocessing, &self.steering) {
            (Preprocessing::Raw, _) => Ok(image.clone()),
            (Preprocessing::Vbp, Some(net)) => Ok(visual_backprop(net, image)?),
            (Preprocessing::Vbp, None) => Err(NoveltyError::invalid(
                "preprocess",
                "VBP preprocessing requires a steering network",
            )),
        }
    }

    fn score(&self, image: &Image) -> Result<f32> {
        let rep = self.preprocess(image)?;
        self.classifier.score(&rep)
    }

    fn score_each(&self, images: &[&Image]) -> Vec<Result<f32>> {
        if images.is_empty() {
            return Vec::new();
        }
        // Per-image preprocessing (identity or VBP), fanned over the
        // pool; each image's failure stays its own slot.
        let (h, w) = self.input_size();
        let work = images.len().saturating_mul(h * w).saturating_mul(64);
        let reps = match ndtensor::par::try_parallel_map::<Result<Image>, NoveltyError>(
            images.len(),
            work,
            |i| Ok(self.preprocess(images[i])),
        ) {
            Ok(reps) => reps,
            // Unreachable (the closure never errors), but degrade to a
            // per-slot error rather than panic.
            Err(e) => {
                let msg = e.to_string();
                return images
                    .iter()
                    .map(|_| Err(NoveltyError::invalid("score_each", msg.clone())))
                    .collect();
            }
        };
        let valid: Vec<&Image> = reps.iter().filter_map(|r| r.as_ref().ok()).collect();
        let scores: Vec<Result<f32>> = if valid.is_empty() {
            Vec::new()
        } else {
            match self.classifier.score_many(&valid) {
                Ok(scores) => scores.into_iter().map(Ok).collect(),
                // Structurally unreachable after per-image validation;
                // fall back to per-image scoring so one frame's failure
                // cannot poison the rest of the batch.
                Err(_) => valid.iter().map(|rep| self.classifier.score(rep)).collect(),
            }
        };
        let mut batched = scores.into_iter();
        reps.into_iter()
            .map(|rep| match rep {
                Err(e) => Err(e),
                Ok(_) => batched.next().unwrap_or_else(|| {
                    Err(NoveltyError::invalid(
                        "score_each",
                        "batched scorer returned too few scores",
                    ))
                }),
            })
            .collect()
    }

    fn reconstruct(&self, image: &Image) -> Result<(Image, Image)> {
        let rep = self.preprocess(image)?;
        let recon = self.classifier.reconstruct(&rep)?;
        Ok((rep, recon))
    }

    fn steering_network(&self) -> Option<&Network> {
        self.steering.as_ref()
    }

    fn classifier(&self) -> Option<&AutoencoderClassifier> {
        Some(&self.classifier)
    }

    fn metric_name(&self) -> &'static str {
        self.classifier.objective().name()
    }
}

/// The common face of anything that turns an image into a
/// [`crate::Verdict`]: a single calibrated [`NoveltyDetector`] or a
/// fused [`crate::EnsembleDetector`]. The stream runtime, the evaluator
/// and the CLI program against this trait.
pub trait Detector: std::fmt::Debug {
    /// The `(height, width)` frame geometry the detector expects.
    fn input_size(&self) -> (usize, usize);

    /// Classifies one image.
    ///
    /// # Errors
    ///
    /// Fails on non-finite pixels or incompatible geometry.
    fn classify(&self, image: &Image) -> Result<crate::Verdict>;

    /// Classifies a batch with observability; verdict `i` is exactly
    /// what [`Detector::classify`] returns for image `i`, bit-identical
    /// at any thread count and with any recorder.
    ///
    /// # Errors
    ///
    /// Fails on the first incompatible image (by index, matching serial
    /// iteration order).
    fn classify_batch_recorded(
        &self,
        images: &[Image],
        recorder: &dyn Recorder,
    ) -> Result<Vec<crate::Verdict>>;

    /// [`Detector::classify_batch_recorded`] without observability.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Detector::classify_batch_recorded`].
    fn classify_batch(&self, images: &[Image]) -> Result<Vec<crate::Verdict>> {
        self.classify_batch_recorded(images, obs::noop())
    }

    /// Classifies each image independently: one result per image, in
    /// order. Unlike the fail-fast [`Detector::classify_batch_recorded`],
    /// one incompatible image never poisons its neighbours — the serving
    /// layer's cross-tenant mega-batch ([`crate::serve::StreamServer`])
    /// depends on that isolation. Verdict `i` is bit-identical to
    /// [`Detector::classify`] on image `i`, at any thread count, with
    /// any recorder.
    fn classify_each_recorded(
        &self,
        images: &[Image],
        recorder: &dyn Recorder,
    ) -> Vec<Result<crate::Verdict>> {
        let _ = recorder;
        images.iter().map(|img| self.classify(img)).collect()
    }

    /// Human-readable label for logs and reports (a backend id, or an
    /// `ensemble(...)` summary).
    fn label(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_round_trip() {
        assert_eq!(BackendKind::all().len(), 4);
        assert_eq!(BackendKind::legacy().len(), 3);
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::from_id(kind.id()), Some(kind));
            assert!(!kind.describe().is_empty());
        }
        assert_eq!(BackendKind::from_id("no-such-backend"), None);
        assert_eq!(BackendKind::VbpSsim.id(), "vbp+ssim");
        assert_eq!(BackendKind::ModelChar.id(), "model-char");
        assert_eq!(BackendKind::ModelChar.metric_name(), "layer-stats");
        assert_eq!(BackendKind::ModelChar.preprocessing(), None);
        assert_eq!(
            BackendKind::RawMse.preprocessing(),
            Some(Preprocessing::Raw)
        );
    }

    #[test]
    fn legacy_alias_still_names_the_original_three() {
        // The deprecated `PipelineKind` alias must keep old call sites
        // compiling: variant paths and the original names.
        let k: PipelineKind = PipelineKind::VbpSsim;
        assert_eq!(k.name(), "vbp+ssim");
        assert_eq!(
            BackendKind::legacy(),
            [
                PipelineKind::RawMse,
                PipelineKind::VbpMse,
                PipelineKind::VbpSsim
            ]
        );
    }
}
