//! Streaming alarm logic on top of per-frame verdicts.
//!
//! A deployed safety monitor (the paper's motivating setting) should not
//! disengage on a single flagged frame — transient glare or one noisy
//! frame is not a novel *situation*. [`StreamMonitor`] debounces
//! per-frame verdicts with an `m`-of-`k` sliding-window policy: the alarm
//! raises when at least `min_novel` of the last `window` frames were
//! flagged, and clears when the window drains below the bound.

use std::collections::VecDeque;

use crate::{NoveltyError, Result, Verdict};

/// Alarm state after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlarmState {
    /// Fewer than `min_novel` of the recent frames were novel.
    Nominal,
    /// The alarm condition holds: the model's inputs have left the
    /// training distribution persistently.
    Raised,
}

/// An `m`-of-`k` sliding-window alarm over novelty verdicts.
///
/// # Example
///
/// ```
/// use novelty::monitor::{AlarmState, StreamMonitor};
///
/// # fn main() -> Result<(), novelty::NoveltyError> {
/// let mut monitor = StreamMonitor::new(4, 3)?;
/// assert_eq!(monitor.observe_flag(true), AlarmState::Nominal);
/// assert_eq!(monitor.observe_flag(true), AlarmState::Nominal);
/// assert_eq!(monitor.observe_flag(true), AlarmState::Raised);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamMonitor {
    window: usize,
    min_novel: usize,
    recent: VecDeque<bool>,
    novel_in_window: usize,
    total_observed: u64,
    total_novel: u64,
}

impl StreamMonitor {
    /// Creates a monitor that raises when `min_novel` of the last
    /// `window` frames are novel.
    ///
    /// # Errors
    ///
    /// Fails when `window` is zero or `min_novel` is zero or exceeds
    /// `window`.
    pub fn new(window: usize, min_novel: usize) -> Result<Self> {
        if window == 0 {
            return Err(NoveltyError::invalid(
                "StreamMonitor::new",
                "window must be non-zero",
            ));
        }
        if min_novel == 0 || min_novel > window {
            return Err(NoveltyError::invalid(
                "StreamMonitor::new",
                format!("min_novel must be in 1..={window}, got {min_novel}"),
            ));
        }
        Ok(StreamMonitor {
            window,
            min_novel,
            recent: VecDeque::with_capacity(window),
            novel_in_window: 0,
            total_observed: 0,
            total_novel: 0,
        })
    }

    /// Feeds one verdict and returns the updated alarm state.
    pub fn observe(&mut self, verdict: &Verdict) -> AlarmState {
        self.observe_flag(verdict.is_novel)
    }

    /// Feeds one pre-extracted novelty flag.
    pub fn observe_flag(&mut self, is_novel: bool) -> AlarmState {
        if self.recent.len() == self.window && self.recent.pop_front() == Some(true) {
            self.novel_in_window -= 1;
        }
        self.recent.push_back(is_novel);
        if is_novel {
            self.novel_in_window += 1;
            self.total_novel += 1;
        }
        self.total_observed += 1;
        self.state()
    }

    /// The current alarm state without observing anything.
    pub fn state(&self) -> AlarmState {
        if self.novel_in_window >= self.min_novel {
            AlarmState::Raised
        } else {
            AlarmState::Nominal
        }
    }

    /// Number of novel frames currently inside the window.
    pub fn novel_in_window(&self) -> usize {
        self.novel_in_window
    }

    /// Lifetime observation count.
    pub fn total_observed(&self) -> u64 {
        self.total_observed
    }

    /// Lifetime fraction of frames flagged novel (0.0 before any
    /// observation).
    pub fn lifetime_novel_rate(&self) -> f32 {
        if self.total_observed == 0 {
            0.0
        } else {
            self.total_novel as f32 / self.total_observed as f32
        }
    }

    /// Clears the window (e.g. after an operator acknowledges the alarm),
    /// keeping lifetime statistics.
    pub fn reset_window(&mut self) {
        self.recent.clear();
        self.novel_in_window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, PipelineKind};

    fn verdict(is_novel: bool) -> Verdict {
        Verdict {
            is_novel,
            score: if is_novel { 0.1 } else { 0.7 },
            threshold: 0.5,
            direction: Direction::LowerIsNovel,
            percentile_rank: if is_novel { 0.5 } else { 60.0 },
            kind: PipelineKind::VbpSsim,
        }
    }

    #[test]
    fn construction_validates() {
        assert!(StreamMonitor::new(0, 1).is_err());
        assert!(StreamMonitor::new(4, 0).is_err());
        assert!(StreamMonitor::new(4, 5).is_err());
        assert!(StreamMonitor::new(4, 4).is_ok());
    }

    #[test]
    fn single_novel_frame_does_not_raise() {
        let mut m = StreamMonitor::new(5, 3).unwrap();
        assert_eq!(m.observe(&verdict(true)), AlarmState::Nominal);
        for _ in 0..10 {
            assert_eq!(m.observe(&verdict(false)), AlarmState::Nominal);
        }
        assert_eq!(m.lifetime_novel_rate(), 1.0 / 11.0);
    }

    #[test]
    fn persistent_novelty_raises_and_clears() {
        let mut m = StreamMonitor::new(4, 3).unwrap();
        m.observe_flag(true);
        m.observe_flag(true);
        assert_eq!(m.state(), AlarmState::Nominal);
        assert_eq!(m.observe_flag(true), AlarmState::Raised);
        // Window slides: three nominal frames push the novel ones out.
        m.observe_flag(false);
        assert_eq!(m.state(), AlarmState::Raised); // still 3 of last 4
        m.observe_flag(false);
        assert_eq!(m.state(), AlarmState::Nominal); // 2 of last 4
        assert_eq!(m.novel_in_window(), 2);
    }

    #[test]
    fn window_eviction_is_exact() {
        let mut m = StreamMonitor::new(3, 2).unwrap();
        let pattern = [true, false, true, false, false, true, true];
        let mut expected_states = Vec::new();
        for (i, &f) in pattern.iter().enumerate() {
            let lo = i.saturating_sub(2);
            let count = pattern[lo..=i].iter().filter(|&&b| b).count();
            expected_states.push(if count >= 2 {
                AlarmState::Raised
            } else {
                AlarmState::Nominal
            });
            assert_eq!(m.observe_flag(f), expected_states[i], "step {i}");
        }
        assert_eq!(m.total_observed(), pattern.len() as u64);
    }

    #[test]
    fn reset_clears_window_but_keeps_lifetime_stats() {
        let mut m = StreamMonitor::new(2, 1).unwrap();
        m.observe_flag(true);
        assert_eq!(m.state(), AlarmState::Raised);
        m.reset_window();
        assert_eq!(m.state(), AlarmState::Nominal);
        assert_eq!(m.novel_in_window(), 0);
        assert_eq!(m.total_observed(), 1);
        assert!(m.lifetime_novel_rate() > 0.99);
    }
}
