//! Streaming alarm logic on top of per-frame verdicts.
//!
//! A deployed safety monitor (the paper's motivating setting) should not
//! disengage on a single flagged frame — transient glare or one noisy
//! frame is not a novel *situation*. [`StreamMonitor`] debounces
//! per-frame verdicts with an `m`-of-`k` sliding-window policy: the alarm
//! raises when at least `min_novel` of the last `window` frames were
//! flagged, and clears when the window drains below the bound.

use std::collections::VecDeque;

use crate::{NoveltyError, Result, Verdict};

/// Alarm state after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlarmState {
    /// Fewer than `min_novel` of the recent frames were novel.
    Nominal,
    /// The alarm condition holds: the model's inputs have left the
    /// training distribution persistently.
    Raised,
}

/// An `m`-of-`k` sliding-window alarm over novelty verdicts.
///
/// # Example
///
/// ```
/// use novelty::monitor::{AlarmState, StreamMonitor};
///
/// # fn main() -> Result<(), novelty::NoveltyError> {
/// let mut monitor = StreamMonitor::new(4, 3)?;
/// assert_eq!(monitor.observe_flag(true), AlarmState::Nominal);
/// assert_eq!(monitor.observe_flag(true), AlarmState::Nominal);
/// assert_eq!(monitor.observe_flag(true), AlarmState::Raised);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamMonitor {
    window: usize,
    min_novel: usize,
    recent: VecDeque<bool>,
    novel_in_window: usize,
    total_observed: u64,
    total_novel: u64,
}

impl StreamMonitor {
    /// Creates a monitor that raises when `min_novel` of the last
    /// `window` frames are novel.
    ///
    /// # Errors
    ///
    /// Fails when `window` is zero or `min_novel` is zero or exceeds
    /// `window`.
    pub fn new(window: usize, min_novel: usize) -> Result<Self> {
        if window == 0 {
            return Err(NoveltyError::invalid(
                "StreamMonitor::new",
                "window must be non-zero",
            ));
        }
        if min_novel == 0 || min_novel > window {
            return Err(NoveltyError::invalid(
                "StreamMonitor::new",
                format!("min_novel must be in 1..={window}, got {min_novel}"),
            ));
        }
        Ok(StreamMonitor {
            window,
            min_novel,
            recent: VecDeque::with_capacity(window),
            novel_in_window: 0,
            total_observed: 0,
            total_novel: 0,
        })
    }

    /// Feeds one verdict and returns the updated alarm state.
    pub fn observe(&mut self, verdict: &Verdict) -> AlarmState {
        self.observe_flag(verdict.is_novel)
    }

    /// Feeds one pre-extracted novelty flag.
    pub fn observe_flag(&mut self, is_novel: bool) -> AlarmState {
        if self.recent.len() == self.window && self.recent.pop_front() == Some(true) {
            self.novel_in_window -= 1;
        }
        self.recent.push_back(is_novel);
        if is_novel {
            self.novel_in_window += 1;
            self.total_novel += 1;
        }
        self.total_observed += 1;
        self.state()
    }

    /// The current alarm state without observing anything.
    pub fn state(&self) -> AlarmState {
        if self.novel_in_window >= self.min_novel {
            AlarmState::Raised
        } else {
            AlarmState::Nominal
        }
    }

    /// Number of novel frames currently inside the window.
    pub fn novel_in_window(&self) -> usize {
        self.novel_in_window
    }

    /// Lifetime observation count.
    pub fn total_observed(&self) -> u64 {
        self.total_observed
    }

    /// Lifetime fraction of frames flagged novel (0.0 before any
    /// observation). `f64` so the rate stays exact over long streams:
    /// an `f32` ratio loses resolution once `total_observed` passes
    /// 2^24 frames (~6.5 days at 30 fps).
    pub fn lifetime_novel_rate(&self) -> f64 {
        if self.total_observed == 0 {
            0.0
        } else {
            self.total_novel as f64 / self.total_observed as f64
        }
    }

    /// Clears the window (e.g. after an operator acknowledges the alarm),
    /// keeping lifetime statistics.
    pub fn reset_window(&mut self) {
        self.recent.clear();
        self.novel_in_window = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;
    use proptest::prelude::*;

    fn verdict(is_novel: bool) -> Verdict {
        Verdict {
            is_novel,
            score: if is_novel { 0.1 } else { 0.7 },
            threshold: 0.5,
            direction: Direction::LowerIsNovel,
            percentile_rank: if is_novel { 0.5 } else { 60.0 },
            backend: "vbp+ssim",
            novel_votes: u32::from(is_novel),
            total_votes: 1,
            backends: Vec::new(),
        }
    }

    #[test]
    fn construction_validates() {
        assert!(StreamMonitor::new(0, 1).is_err());
        assert!(StreamMonitor::new(4, 0).is_err());
        assert!(StreamMonitor::new(4, 5).is_err());
        assert!(StreamMonitor::new(4, 4).is_ok());
    }

    #[test]
    fn single_novel_frame_does_not_raise() {
        let mut m = StreamMonitor::new(5, 3).unwrap();
        assert_eq!(m.observe(&verdict(true)), AlarmState::Nominal);
        for _ in 0..10 {
            assert_eq!(m.observe(&verdict(false)), AlarmState::Nominal);
        }
        assert_eq!(m.lifetime_novel_rate(), 1.0 / 11.0);
    }

    #[test]
    fn persistent_novelty_raises_and_clears() {
        let mut m = StreamMonitor::new(4, 3).unwrap();
        m.observe_flag(true);
        m.observe_flag(true);
        assert_eq!(m.state(), AlarmState::Nominal);
        assert_eq!(m.observe_flag(true), AlarmState::Raised);
        // Window slides: three nominal frames push the novel ones out.
        m.observe_flag(false);
        assert_eq!(m.state(), AlarmState::Raised); // still 3 of last 4
        m.observe_flag(false);
        assert_eq!(m.state(), AlarmState::Nominal); // 2 of last 4
        assert_eq!(m.novel_in_window(), 2);
    }

    /// The oracle [`StreamMonitor`] must agree with: recount the last
    /// `window` flags from scratch at every step.
    fn brute_force_states(flags: &[bool], window: usize, min_novel: usize) -> Vec<AlarmState> {
        (0..flags.len())
            .map(|i| {
                let lo = (i + 1).saturating_sub(window);
                let count = flags[lo..=i].iter().filter(|&&b| b).count();
                if count >= min_novel {
                    AlarmState::Raised
                } else {
                    AlarmState::Nominal
                }
            })
            .collect()
    }

    #[test]
    fn window_eviction_is_exact() {
        let mut m = StreamMonitor::new(3, 2).unwrap();
        let pattern = [true, false, true, false, false, true, true];
        let expected = brute_force_states(&pattern, 3, 2);
        for (i, &f) in pattern.iter().enumerate() {
            assert_eq!(m.observe_flag(f), expected[i], "step {i}");
        }
        assert_eq!(m.total_observed(), pattern.len() as u64);
    }

    proptest! {
        /// The incremental window bookkeeping matches a brute-force
        /// recount for arbitrary flag sequences and (window, min_novel)
        /// pairs — including windows larger than the stream and
        /// mid-stream resets of nothing (the monitor is never reset here,
        /// so eviction alone must stay exact).
        #[test]
        fn monitor_matches_brute_force_recount(
            raw_flags in proptest::collection::vec(0u8..2, 0..80),
            window in 1usize..12,
            min_novel_raw in 0usize..12,
        ) {
            let flags: Vec<bool> = raw_flags.iter().map(|&b| b == 1).collect();
            let min_novel = 1 + min_novel_raw % window;
            let mut m = StreamMonitor::new(window, min_novel).unwrap();
            let expected = brute_force_states(&flags, window, min_novel);
            let mut novel_so_far = 0u64;
            for (i, &f) in flags.iter().enumerate() {
                prop_assert_eq!(m.observe_flag(f), expected[i], "step {}", i);
                novel_so_far += u64::from(f);
                // Lifetime stats track exactly alongside the window.
                prop_assert_eq!(m.total_observed(), (i + 1) as u64);
                let expected_rate = novel_so_far as f64 / (i + 1) as f64;
                prop_assert!((m.lifetime_novel_rate() - expected_rate).abs() < 1e-12);
                prop_assert!(m.novel_in_window() <= window.min(i + 1));
            }
        }
    }

    #[test]
    fn reset_clears_window_but_keeps_lifetime_stats() {
        let mut m = StreamMonitor::new(2, 1).unwrap();
        m.observe_flag(true);
        assert_eq!(m.state(), AlarmState::Raised);
        m.reset_window();
        assert_eq!(m.state(), AlarmState::Nominal);
        assert_eq!(m.novel_in_window(), 0);
        assert_eq!(m.total_observed(), 1);
        assert!(m.lifetime_novel_rate() > 0.99);
    }
}
