//! Resampling kernels for rank-2 tensors (single-channel maps).
//!
//! These back two users: image resizing in the `vision` crate and the
//! mask-upscaling steps of VisualBackProp in the `saliency` crate (which
//! upsamples averaged feature maps back to the resolution of the previous
//! layer).

use crate::{scratch, Result, Tensor, TensorError};

fn require_map(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    let (h, w) = (t.shape().dims()[0], t.shape().dims()[1]);
    if h == 0 || w == 0 {
        return Err(TensorError::invalid(op, "input map must be non-empty"));
    }
    Ok((h, w))
}

fn require_target(out_h: usize, out_w: usize, op: &'static str) -> Result<()> {
    if out_h == 0 || out_w == 0 {
        return Err(TensorError::invalid(op, "target size must be non-zero"));
    }
    Ok(())
}

/// Nearest-neighbour resize of a `[H, W]` map to `[out_h, out_w]`.
///
/// # Errors
///
/// Fails for non-rank-2 input or empty source/target sizes.
pub fn resize_nearest(map: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    let (h, w) = require_map(map, "resize_nearest")?;
    require_target(out_h, out_w, "resize_nearest")?;
    let data = map.as_slice();
    let mut out = scratch::take(out_h * out_w);
    for oy in 0..out_h {
        let sy = ((oy as f32 + 0.5) * h as f32 / out_h as f32 - 0.5)
            .round()
            .clamp(0.0, (h - 1) as f32) as usize;
        for ox in 0..out_w {
            let sx = ((ox as f32 + 0.5) * w as f32 / out_w as f32 - 0.5)
                .round()
                .clamp(0.0, (w - 1) as f32) as usize;
            out.push(data[sy * w + sx]);
        }
    }
    Tensor::from_vec([out_h, out_w], out)
}

/// Bilinear resize of a `[H, W]` map to `[out_h, out_w]` with half-pixel
/// centre alignment.
///
/// # Errors
///
/// Fails for non-rank-2 input or empty source/target sizes.
pub fn resize_bilinear(map: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    let (h, w) = require_map(map, "resize_bilinear")?;
    require_target(out_h, out_w, "resize_bilinear")?;
    let data = map.as_slice();
    let mut out = scratch::take(out_h * out_w);
    let scale_y = h as f32 / out_h as f32;
    let scale_x = w as f32 / out_w as f32;
    for oy in 0..out_h {
        let fy = ((oy as f32 + 0.5) * scale_y - 0.5).clamp(0.0, (h - 1) as f32);
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(h - 1);
        let ty = fy - y0 as f32;
        for ox in 0..out_w {
            let fx = ((ox as f32 + 0.5) * scale_x - 0.5).clamp(0.0, (w - 1) as f32);
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(w - 1);
            let tx = fx - x0 as f32;
            let top = data[y0 * w + x0] * (1.0 - tx) + data[y0 * w + x1] * tx;
            let bot = data[y1 * w + x0] * (1.0 - tx) + data[y1 * w + x1] * tx;
            out.push(top * (1.0 - ty) + bot * ty);
        }
    }
    Tensor::from_vec([out_h, out_w], out)
}

/// Transposed-convolution-style upsampling with an all-ones `kh × kw`
/// kernel and stride `(sh, sw)`: every source value is *added* into the
/// `kh × kw` window anchored at its strided position.
///
/// This mirrors the deconvolution step in VisualBackProp, which scales an
/// averaged feature map up through the geometry of the convolution layer it
/// came from. The output size is `(h-1)*sh + kh` by `(w-1)*sw + kw`.
///
/// # Errors
///
/// Fails for non-rank-2 input, an empty kernel or a zero stride.
pub fn upsample_sum(map: &Tensor, kh: usize, kw: usize, sh: usize, sw: usize) -> Result<Tensor> {
    let (h, w) = require_map(map, "upsample_sum")?;
    if kh == 0 || kw == 0 {
        return Err(TensorError::invalid(
            "upsample_sum",
            "kernel must be non-empty",
        ));
    }
    if sh == 0 || sw == 0 {
        return Err(TensorError::invalid(
            "upsample_sum",
            "stride must be non-zero",
        ));
    }
    let out_h = (h - 1) * sh + kh;
    let out_w = (w - 1) * sw + kw;
    let data = map.as_slice();
    let mut out = scratch::take(out_h * out_w);
    out.resize(out_h * out_w, 0.0);
    for y in 0..h {
        for x in 0..w {
            let v = data[y * w + x];
            // sncheck:allow(no-float-eq): exact-zero sparsity skip, not
            // a tolerance check.
            if v == 0.0 {
                continue;
            }
            for ky in 0..kh {
                let oy = y * sh + ky;
                let row = &mut out[oy * out_w..(oy + 1) * out_w];
                for kx in 0..kw {
                    row[x * sw + kx] += v;
                }
            }
        }
    }
    Tensor::from_vec([out_h, out_w], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map(h: usize, w: usize, f: impl Fn(usize, usize) -> f32) -> Tensor {
        Tensor::from_fn([h, w], |idx| f(idx[0], idx[1]))
    }

    #[test]
    fn nearest_identity_when_same_size() {
        let m = map(3, 4, |y, x| (y * 4 + x) as f32);
        assert_eq!(resize_nearest(&m, 3, 4).unwrap(), m);
    }

    #[test]
    fn bilinear_identity_when_same_size() {
        let m = map(3, 4, |y, x| (y * 4 + x) as f32);
        let r = resize_bilinear(&m, 3, 4).unwrap();
        for (a, b) in r.as_slice().iter().zip(m.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn nearest_doubling_replicates_pixels() {
        let m = map(2, 2, |y, x| (y * 2 + x) as f32);
        let r = resize_nearest(&m, 4, 4).unwrap();
        assert_eq!(
            r.as_slice(),
            &[0., 0., 1., 1., 0., 0., 1., 1., 2., 2., 3., 3., 2., 2., 3., 3.]
        );
    }

    #[test]
    fn bilinear_preserves_constant_maps() {
        let m = Tensor::full([3, 5], 0.7);
        let r = resize_bilinear(&m, 7, 11).unwrap();
        for &v in r.as_slice() {
            assert!((v - 0.7).abs() < 1e-6);
        }
    }

    #[test]
    fn bilinear_interpolates_midpoint() {
        let m = map(1, 2, |_, x| x as f32); // [0, 1]
        let r = resize_bilinear(&m, 1, 4).unwrap();
        // Half-pixel alignment: centres at 0.25/0.75 source coords → clamped
        // edges stay exact, interior points interpolate monotonically.
        let v = r.as_slice();
        assert!(v[0] <= v[1] && v[1] <= v[2] && v[2] <= v[3]);
        assert!((v[0] - 0.0).abs() < 1e-6);
        assert!((v[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn downsampling_stays_in_range() {
        let m = map(8, 8, |y, x| ((y * 8 + x) % 5) as f32);
        for r in [
            resize_bilinear(&m, 3, 3).unwrap(),
            resize_nearest(&m, 3, 3).unwrap(),
        ] {
            assert!(r.min_value() >= 0.0 && r.max_value() <= 4.0);
        }
    }

    #[test]
    fn resize_rejects_bad_inputs() {
        let m = map(2, 2, |_, _| 0.0);
        assert!(resize_nearest(&m, 0, 2).is_err());
        assert!(resize_bilinear(&m, 2, 0).is_err());
        assert!(resize_nearest(&Tensor::zeros([2]), 2, 2).is_err());
        assert!(resize_bilinear(&Tensor::zeros([0, 2]), 2, 2).is_err());
    }

    #[test]
    fn upsample_sum_single_pixel() {
        let m = Tensor::from_vec([1, 1], vec![2.0]).unwrap();
        let r = upsample_sum(&m, 3, 3, 2, 2).unwrap();
        assert_eq!(r.shape().dims(), &[3, 3]);
        assert!(r.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn upsample_sum_overlapping_windows_accumulate() {
        // Two adjacent pixels, stride 1, kernel 2 → middle column covered twice.
        let m = Tensor::from_vec([1, 2], vec![1.0, 1.0]).unwrap();
        let r = upsample_sum(&m, 1, 2, 1, 1).unwrap();
        assert_eq!(r.shape().dims(), &[1, 3]);
        assert_eq!(r.as_slice(), &[1.0, 2.0, 1.0]);
    }

    #[test]
    fn upsample_sum_geometry_matches_conv_inverse() {
        // A conv layer maps H → (H - kh)/sh + 1; upsample_sum maps back.
        let (h, w, kh, kw, sh, sw) = (5usize, 7usize, 3usize, 3usize, 2usize, 2usize);
        let oh = (h - kh) / sh + 1;
        let ow = (w - kw) / sw + 1;
        let m = Tensor::ones([oh, ow]);
        let r = upsample_sum(&m, kh, kw, sh, sw).unwrap();
        assert_eq!(r.shape().dims(), &[h, w]);
    }

    #[test]
    fn upsample_sum_rejects_bad_inputs() {
        let m = Tensor::ones([2, 2]);
        assert!(upsample_sum(&m, 0, 1, 1, 1).is_err());
        assert!(upsample_sum(&m, 1, 1, 0, 1).is_err());
        assert!(upsample_sum(&Tensor::ones([2]), 1, 1, 1, 1).is_err());
    }

    proptest! {
        #[test]
        fn upsample_sum_preserves_mass_times_kernel(
            h in 1usize..5, w in 1usize..5, kh in 1usize..4, kw in 1usize..4,
            sh in 1usize..3, sw in 1usize..3
        ) {
            let m = map(h, w, |y, x| (y + x) as f32);
            let r = upsample_sum(&m, kh, kw, sh, sw).unwrap();
            // Every source value lands in exactly kh*kw cells.
            let expect = m.sum() * (kh * kw) as f32;
            prop_assert!((r.sum() - expect).abs() < 1e-3 * (1.0 + expect.abs()));
        }

        #[test]
        fn bilinear_output_within_input_range(
            h in 1usize..6, w in 1usize..6, oh in 1usize..10, ow in 1usize..10
        ) {
            let m = map(h, w, |y, x| ((y * 31 + x * 17) % 11) as f32);
            let r = resize_bilinear(&m, oh, ow).unwrap();
            prop_assert!(r.min_value() >= m.min_value() - 1e-4);
            prop_assert!(r.max_value() <= m.max_value() + 1e-4);
        }
    }
}
