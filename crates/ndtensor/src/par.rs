//! Scoped-thread work pool for data-parallel kernels.
//!
//! Every parallel kernel in the workspace funnels through this module, so
//! one knob controls them all: the pool size defaults to the machine's
//! available parallelism and can be overridden with the
//! `SALIENCY_THREADS` environment variable or programmatically via
//! [`set_thread_config`].
//!
//! # Determinism
//!
//! Parallelism here never changes *what* is computed, only *which thread*
//! computes it. Work is split into contiguous index ranges, each worker
//! writes a disjoint output region, and reductions (when a caller needs
//! one) are performed by the caller in index order. As a result every
//! kernel produces bit-identical output for any thread count, including 1
//! — the serial-parity test suite (`tests/parallel_parity.rs`) enforces
//! this from GEMM all the way up to novelty scores.
//!
//! # Nesting
//!
//! Worker closures run with a thread-local "serial" flag set, so a
//! parallel kernel called from inside another parallel kernel (e.g. GEMM
//! inside a batch-parallel convolution) stays on its worker thread
//! instead of over-subscribing the machine. [`with_serial`] exposes the
//! same mechanism to callers.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Minimum number of scalar operations before threads are spawned; below
/// this, spawn overhead dominates any speedup.
pub const PARALLEL_THRESHOLD: usize = 1 << 18;

/// Size of the work pool used by parallel kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadConfig {
    threads: usize,
}

impl ThreadConfig {
    /// A pool of `threads` workers. Zero is clamped to one.
    pub fn new(threads: usize) -> Self {
        ThreadConfig {
            threads: threads.max(1),
        }
    }

    /// Single-threaded execution: kernels run entirely on the calling
    /// thread and spawn nothing.
    pub fn serial() -> Self {
        ThreadConfig { threads: 1 }
    }

    /// One worker per available hardware thread.
    pub fn available() -> Self {
        ThreadConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Reads `SALIENCY_THREADS`. Unset means [`ThreadConfig::available`];
    /// a zero or unparsable value falls back to the same default with a
    /// warning on stderr (never a panic).
    pub fn from_env() -> Self {
        match std::env::var("SALIENCY_THREADS") {
            Err(_) => Self::available(),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => ThreadConfig { threads: n },
                _ => {
                    // sncheck:allow(no-stdout-in-lib): one-shot env-var
                    // misconfiguration warning; no recorder exists this
                    // early in process startup.
                    eprintln!(
                        "warning: ignoring invalid SALIENCY_THREADS={raw:?} \
                         (expected a positive integer); using {} threads",
                        Self::available().threads
                    );
                    Self::available()
                }
            },
        }
    }

    /// The worker count (always ≥ 1).
    pub fn threads(self) -> usize {
        self.threads
    }
}

impl Default for ThreadConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The process-wide pool size; 0 = not yet resolved from the environment.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Replaces the process-wide thread configuration.
pub fn set_thread_config(config: ThreadConfig) {
    GLOBAL_THREADS.store(config.threads, Ordering::Relaxed);
}

/// The process-wide thread configuration, resolving `SALIENCY_THREADS`
/// on first use.
pub fn thread_config() -> ThreadConfig {
    let cached = GLOBAL_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return ThreadConfig { threads: cached };
    }
    let resolved = ThreadConfig::from_env();
    GLOBAL_THREADS.store(resolved.threads, Ordering::Relaxed);
    resolved
}

/// Cumulative pool activity since process start.
///
/// Counters are process-global and monotonic; observers snapshot with
/// [`stats`] before and after a region of interest and diff with
/// [`ParStats::since`]. Updates are a handful of relaxed atomic adds per
/// *job* (not per item), so keeping them always-on costs nothing
/// measurable and never perturbs what the kernels compute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Jobs submitted to [`for_each_block`]/[`try_for_each_block`]/
    /// [`try_parallel_map`] (empty jobs excluded).
    pub jobs: u64,
    /// Jobs that ran on the calling thread: too small, nested inside a
    /// worker, or the pool is configured serial.
    pub serial_jobs: u64,
    /// Jobs that spawned workers.
    pub parallel_jobs: u64,
    /// Worker tasks spawned across all parallel jobs.
    pub tasks_dispatched: u64,
    /// Items (blocks or map indices) processed across all jobs.
    pub items_processed: u64,
}

impl ParStats {
    /// Counter increase from `earlier` to `self` (saturating, so a stale
    /// or swapped snapshot yields zeros rather than wrap-around garbage).
    pub fn since(self, earlier: ParStats) -> ParStats {
        ParStats {
            jobs: self.jobs.saturating_sub(earlier.jobs),
            serial_jobs: self.serial_jobs.saturating_sub(earlier.serial_jobs),
            parallel_jobs: self.parallel_jobs.saturating_sub(earlier.parallel_jobs),
            tasks_dispatched: self
                .tasks_dispatched
                .saturating_sub(earlier.tasks_dispatched),
            items_processed: self.items_processed.saturating_sub(earlier.items_processed),
        }
    }
}

static STAT_JOBS: AtomicU64 = AtomicU64::new(0);
static STAT_SERIAL_JOBS: AtomicU64 = AtomicU64::new(0);
static STAT_PARALLEL_JOBS: AtomicU64 = AtomicU64::new(0);
static STAT_TASKS: AtomicU64 = AtomicU64::new(0);
static STAT_ITEMS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide [`ParStats`] counters.
pub fn stats() -> ParStats {
    ParStats {
        jobs: STAT_JOBS.load(Ordering::Relaxed),
        serial_jobs: STAT_SERIAL_JOBS.load(Ordering::Relaxed),
        parallel_jobs: STAT_PARALLEL_JOBS.load(Ordering::Relaxed),
        tasks_dispatched: STAT_TASKS.load(Ordering::Relaxed),
        items_processed: STAT_ITEMS.load(Ordering::Relaxed),
    }
}

/// Books one job: `tasks` is the number of spawned workers (0 when the
/// job ran on the caller).
fn note_job(items: usize, tasks: usize) {
    STAT_JOBS.fetch_add(1, Ordering::Relaxed);
    STAT_ITEMS.fetch_add(items as u64, Ordering::Relaxed);
    if tasks == 0 {
        STAT_SERIAL_JOBS.fetch_add(1, Ordering::Relaxed);
    } else {
        STAT_PARALLEL_JOBS.fetch_add(1, Ordering::Relaxed);
        STAT_TASKS.fetch_add(tasks as u64, Ordering::Relaxed);
    }
}

thread_local! {
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// Restores the thread-local serial flag even on unwind.
struct SerialGuard {
    prev: bool,
}

impl SerialGuard {
    fn engage() -> Self {
        let prev = FORCE_SERIAL.with(|s| s.replace(true));
        SerialGuard { prev }
    }
}

impl Drop for SerialGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        FORCE_SERIAL.with(|s| s.set(prev));
    }
}

/// Runs `f` with all parallel kernels forced onto the calling thread.
pub fn with_serial<R>(f: impl FnOnce() -> R) -> R {
    let _guard = SerialGuard::engage();
    f()
}

/// Worker count for a job of `items` independent pieces totalling `work`
/// scalar operations: 1 when the job is too small, nested inside another
/// parallel kernel, or the pool is configured serial.
fn effective_threads(items: usize, work: usize) -> usize {
    if items <= 1 || work < PARALLEL_THRESHOLD || FORCE_SERIAL.with(|s| s.get()) {
        return 1;
    }
    thread_config().threads().min(items)
}

/// Runs `body(first_block, blocks)` over disjoint ranges of `out`, where
/// `out` is a sequence of `block_len`-sized blocks. `work` is the job's
/// total scalar-operation estimate, used to decide whether spawning pays.
///
/// Each invocation receives the index of its first block and a mutable
/// slice of whole blocks; together the invocations cover `out` exactly
/// once, in order. With one thread the single call `body(0, out)` runs on
/// the caller.
pub fn for_each_block(
    out: &mut [f32],
    block_len: usize,
    work: usize,
    body: impl Fn(usize, &mut [f32]) + Sync,
) {
    try_for_each_block(out, block_len, work, |first, chunk| {
        body(first, chunk);
        Ok::<(), std::convert::Infallible>(())
    })
    .unwrap_or_else(|e| match e {});
}

/// Fallible variant of [`for_each_block`]. Returns the error of the
/// lowest-indexed failing chunk, which (because chunks are contiguous
/// ranges and `body` reports its first internal failure) is the same
/// error the serial execution would have produced.
pub fn try_for_each_block<E: Send>(
    out: &mut [f32],
    block_len: usize,
    work: usize,
    body: impl Fn(usize, &mut [f32]) -> std::result::Result<(), E> + Sync,
) -> std::result::Result<(), E> {
    if out.is_empty() || block_len == 0 {
        return Ok(());
    }
    debug_assert_eq!(out.len() % block_len, 0, "out must be whole blocks");
    let items = out.len() / block_len;
    let threads = effective_threads(items, work);
    if threads <= 1 {
        note_job(items, 0);
        return body(0, out);
    }
    let per = items.div_ceil(threads);
    note_job(items, items.div_ceil(per));
    let mut outcomes: Vec<std::result::Result<(), E>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads); // sncheck:allow(hot-path-transitive-alloc): one handle vector per parallel job launch, amortized over the whole batch it fans out
        let mut rest = out;
        let mut first = 0usize;
        while !rest.is_empty() {
            let take = (per * block_len).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let start = first;
            let body = &body;
            handles.push(scope.spawn(move || {
                let _guard = SerialGuard::engage();
                body(start, chunk)
            }));
            first += take / block_len;
            rest = tail;
        }
        outcomes = handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked")) // sncheck:allow(no-panic-in-lib, hot-path-transitive-panic): deliberate panic propagation from a poisoned worker
            .collect();
    });
    for outcome in outcomes {
        outcome?;
    }
    Ok(())
}

/// Applies `f` to every index in `0..items` in parallel, collecting the
/// results in index order. `work` is the job's total scalar-operation
/// estimate. On failure, returns the error of the lowest index that
/// failed — the same error serial iteration would surface.
pub fn try_parallel_map<T, E>(
    items: usize,
    work: usize,
    f: impl Fn(usize) -> std::result::Result<T, E> + Sync,
) -> std::result::Result<Vec<T>, E>
where
    T: Send,
    E: Send,
{
    if items == 0 {
        return Ok(Vec::new());
    }
    let threads = effective_threads(items, work);
    if threads <= 1 {
        note_job(items, 0);
        return (0..items).map(f).collect();
    }
    let mut slots: Vec<Option<std::result::Result<T, E>>> = Vec::new();
    slots.resize_with(items, || None);
    let per = items.div_ceil(threads);
    note_job(items, items.div_ceil(per));
    std::thread::scope(|scope| {
        let mut rest = slots.as_mut_slice();
        let mut first = 0usize;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let start = first;
            let f = &f;
            scope.spawn(move || {
                let _guard = SerialGuard::engage();
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(start + offset));
                }
            });
            first += take;
            rest = tail;
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("parallel worker panicked")) // sncheck:allow(no-panic-in-lib, hot-path-transitive-panic): an empty slot means a worker died; propagate, don't mask
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    /// Big enough to clear [`PARALLEL_THRESHOLD`] regardless of shape.
    const BIG: usize = PARALLEL_THRESHOLD + 1;

    #[test]
    fn config_constructors() {
        assert_eq!(ThreadConfig::serial().threads(), 1);
        assert_eq!(ThreadConfig::new(0).threads(), 1);
        assert_eq!(ThreadConfig::new(6).threads(), 6);
        assert!(ThreadConfig::available().threads() >= 1);
    }

    #[test]
    fn blocks_cover_output_exactly_once() {
        let mut out = vec![0.0f32; 64];
        for_each_block(&mut out, 4, BIG, |first, chunk| {
            for (local, block) in chunk.chunks_mut(4).enumerate() {
                for v in block.iter_mut() {
                    *v += (first + local) as f32;
                }
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i / 4) as f32);
        }
    }

    #[test]
    fn small_work_stays_on_caller_thread() {
        let caller = std::thread::current().id();
        let seen = Mutex::new(HashSet::new());
        let mut out = vec![0.0f32; 8];
        for_each_block(&mut out, 1, 1, |_, _| {
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(*seen.lock().unwrap(), HashSet::from([caller]));
    }

    #[test]
    fn with_serial_suppresses_spawning() {
        let caller = std::thread::current().id();
        let seen = Mutex::new(HashSet::new());
        with_serial(|| {
            let mut out = vec![0.0f32; 64];
            for_each_block(&mut out, 1, BIG, |_, _| {
                seen.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert_eq!(*seen.lock().unwrap(), HashSet::from([caller]));
        // The flag is restored after the closure.
        assert!(!FORCE_SERIAL.with(|s| s.get()));
    }

    #[test]
    fn workers_inherit_serial_flag() {
        // A nested kernel inside a worker must not spawn further threads.
        let outer_ids = Mutex::new(HashSet::new());
        let mut out = vec![0.0f32; 64];
        for_each_block(&mut out, 8, BIG, |_, chunk| {
            let my_id = std::thread::current().id();
            let mut inner = vec![0.0f32; 64];
            for_each_block(&mut inner, 1, BIG, |_, _| {
                assert_eq!(std::thread::current().id(), my_id);
            });
            chunk[0] = 1.0;
            outer_ids.lock().unwrap().insert(my_id);
        });
        assert!(!outer_ids.lock().unwrap().is_empty());
    }

    #[test]
    fn try_map_collects_in_order_and_reports_first_error() {
        let ok: Result<Vec<usize>, &str> = try_parallel_map(100, BIG, |i| Ok(i * 2));
        assert_eq!(ok.unwrap(), (0..100).map(|i| i * 2).collect::<Vec<_>>());

        let err: Result<Vec<usize>, usize> =
            try_parallel_map(100, BIG, |i| if i >= 40 { Err(i) } else { Ok(i) });
        assert_eq!(err.unwrap_err(), 40);
    }

    #[test]
    fn try_for_each_block_reports_first_error() {
        let mut out = vec![0.0f32; 100];
        let err = try_for_each_block(&mut out, 1, BIG, |first, chunk| {
            for local in 0..chunk.len() {
                if first + local >= 23 {
                    return Err(first + local);
                }
            }
            Ok(())
        });
        assert_eq!(err.unwrap_err(), 23);
    }

    #[test]
    fn zero_items_are_a_no_op() {
        for_each_block(&mut [], 4, BIG, |_, _| panic!("must not run"));
        let r: Result<Vec<u8>, ()> = try_parallel_map(0, BIG, |_| Ok(0));
        assert_eq!(r.unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn stats_track_jobs_and_items() {
        // Counters are process-global and other tests run concurrently,
        // so only assert monotone growth attributable to this test.
        let before = stats();
        let mut out = vec![0.0f32; 8];
        for_each_block(&mut out, 1, 1, |_, _| {});
        let r: Result<Vec<usize>, ()> = try_parallel_map(64, BIG, Ok);
        assert_eq!(r.unwrap().len(), 64);
        let d = stats().since(before);
        assert!(d.jobs >= 2);
        assert!(d.serial_jobs >= 1);
        assert!(d.items_processed >= 72);
        assert_eq!(d.jobs, d.serial_jobs + d.parallel_jobs);
        // since() saturates instead of wrapping around.
        assert_eq!(before.since(stats()).jobs, 0);
    }
}
