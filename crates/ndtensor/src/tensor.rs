use crate::{scratch, Result, Shape, TensorError};

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the single numeric container used throughout the workspace:
/// network activations, convolution kernels, images and saliency masks are
/// all tensors of different ranks. Storage is always contiguous, which keeps
/// every kernel simple and cache-friendly.
///
/// Storage is recycled through [`crate::scratch`]: every constructor takes
/// its buffer from the current thread's scratch pool and `Drop` files the
/// buffer back, so tensor-churning loops (scoring a video stream frame by
/// frame) stop allocating once warmed up. Recycling is invisible in the
/// API — buffers are always (re)initialised before use and values are
/// identical with the pool on or off.
///
/// # Example
///
/// ```
/// use ndtensor::Tensor;
///
/// # fn main() -> Result<(), ndtensor::TensorError> {
/// let t = Tensor::from_fn([2, 2], |idx| (idx[0] * 2 + idx[1]) as f32);
/// assert_eq!(t.at(&[1, 0])?, 2.0);
/// assert_eq!(t.sum(), 0.0 + 1.0 + 2.0 + 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = scratch::take(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // Donate the storage back to this thread's scratch pool. A tensor
        // whose buffer was already moved out (`into_vec`) holds a
        // capacity-0 vec, which `give` ignores.
        scratch::give(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: scratch::take_zeroed(shape.volume()),
            shape,
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let volume = shape.volume();
        let mut data = scratch::take(volume);
        data.resize(volume, value);
        Tensor { data, shape }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        let mut data = scratch::take(1);
        data.push(value);
        Tensor {
            data,
            shape: Shape::scalar(),
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor by copying existing data out of a slice. The
    /// backing buffer comes from the scratch pool, so this is the
    /// allocation-free way to materialise a sub-slice as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs
    /// from the shape volume.
    pub fn from_slice(shape: impl Into<Shape>, data: &[f32]) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        let mut buf = scratch::take(data.len());
        buf.extend_from_slice(data);
        Ok(Tensor { data: buf, shape })
    }

    /// Creates a tensor by evaluating `f` at every multi-dimensional index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = shape.into();
        let volume = shape.volume();
        let mut data = scratch::take(volume);
        // Odometer-style index: one rank-length buffer incremented in
        // place, instead of unravelling (and allocating) per element.
        let mut idx = vec![0usize; shape.rank()]; // sncheck:allow(hot-path-transitive-alloc): one rank-length buffer per tensor construction, amortized over all `volume` evaluations
        for _ in 0..volume {
            data.push(f(&idx));
            for axis in (0..shape.rank()).rev() {
                idx[axis] += 1;
                if idx[axis] < shape.dims()[axis] {
                    break;
                }
                idx[axis] = 0;
            }
        }
        Tensor { data, shape }
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements (some dimension is zero).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    ///
    /// The returned buffer is detached from the scratch pool; dropping it
    /// frees the memory normally.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for wrong-rank or
    /// out-of-range indices.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        self.shape
            .offset(index)
            .map(|off| self.data[off])
            .ok_or_else(|| TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            })
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for wrong-rank or
    /// out-of-range indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.offset(index) {
            Some(off) => {
                self.data[off] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            }),
        }
    }

    /// Returns a tensor with the same data reinterpreted under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.len(),
            });
        }
        let mut data = scratch::take(self.data.len());
        data.extend_from_slice(&self.data);
        Ok(Tensor { data, shape })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = scratch::take(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut data = scratch::take(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Ok(Tensor {
            data,
            shape: self.shape.clone(),
        })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not rank 2.
    pub fn transpose2d(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose2d",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut out = scratch::take(r * c);
        for j in 0..c {
            for i in 0..r {
                out.push(self.data[i * c + j]);
            }
        }
        Ok(Tensor {
            data: out,
            shape: Shape::new([c, r]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let o = Tensor::ones([4]);
        assert!(o.as_slice().iter().all(|&v| v == 1.0));
        let f = Tensor::full([2, 2], 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(3.25);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.at(&[]).unwrap(), 3.25);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 3], vec![0.0; 6]).is_ok());
        let err = Tensor::from_vec([2, 3], vec![0.0; 5]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros([3, 4]);
        t.set(&[2, 1], 9.0).unwrap();
        assert_eq!(t.at(&[2, 1]).unwrap(), 9.0);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
        assert!(t.at(&[3, 0]).is_err());
        assert!(t.set(&[0, 4], 1.0).is_err());
        assert!(t.at(&[1]).is_err());
    }

    #[test]
    fn from_fn_orders_row_major() {
        let t = Tensor::from_fn([2, 3], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.as_slice(), &[0., 1., 2., 10., 11., 12.]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape().dims(), &[3, 2]);
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec([3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec([3], vec![10., 20., 30.]).unwrap();
        assert_eq!(a.map(|v| v * 2.0).as_slice(), &[2., 4., 6.]);
        let c = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(c.as_slice(), &[11., 22., 33.]);
        let bad = Tensor::zeros([4]);
        assert!(a.zip_map(&bad, |x, _| x).is_err());
    }

    #[test]
    fn map_inplace_mutates() {
        let mut t = Tensor::from_vec([2], vec![1., -2.]).unwrap();
        t.map_inplace(f32::abs);
        assert_eq!(t.as_slice(), &[1., 2.]);
    }

    #[test]
    fn transpose2d_swaps_axes() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[1., 4., 2., 5., 3., 6.]);
        assert!(Tensor::zeros([2, 2, 2]).transpose2d().is_err());
    }

    #[test]
    fn dropped_tensor_storage_is_recycled_on_this_thread() {
        let t = Tensor::zeros([4, 8]);
        let ptr = t.as_slice().as_ptr();
        drop(t);
        // Same thread, same size class: the next tensor of that class
        // reuses the storage.
        let t2 = Tensor::zeros([32]);
        assert_eq!(t2.as_slice().as_ptr(), ptr);
        assert!(t2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clone_is_deep_and_reuse_does_not_leak_values() {
        let a = Tensor::from_vec([3], vec![1., 2., 3.]).unwrap();
        let b = a.clone();
        drop(a);
        assert_eq!(b.as_slice(), &[1., 2., 3.]);
        let fresh = Tensor::zeros([3]);
        assert_eq!(fresh.as_slice(), &[0., 0., 0.]);
    }

    #[test]
    fn into_vec_detaches_storage() {
        let t = Tensor::from_vec([2], vec![5., 6.]).unwrap();
        let v = t.into_vec();
        assert_eq!(v, vec![5., 6.]);
        // Dropping the detached vec must not corrupt later tensors.
        drop(v);
        let t2 = Tensor::ones([2]);
        assert_eq!(t2.as_slice(), &[1., 1.]);
    }

    #[test]
    fn from_slice_copies() {
        let src = [1.0f32, 2.0, 3.0, 4.0];
        let t = Tensor::from_slice([2, 2], &src).unwrap();
        assert_eq!(t.as_slice(), &src);
        assert!(Tensor::from_slice([3], &src).is_err());
    }

    #[test]
    fn empty_tensor() {
        let t = Tensor::zeros([0, 5]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    proptest! {
        #[test]
        fn transpose_is_involutive(r in 1usize..6, c in 1usize..6, seed in 0u64..1000) {
            let t = Tensor::from_fn([r, c], |idx| {
                ((idx[0] * 31 + idx[1] * 7 + seed as usize) % 13) as f32
            });
            let back = t.transpose2d().unwrap().transpose2d().unwrap();
            prop_assert_eq!(back, t);
        }

        #[test]
        fn from_fn_at_agree(dims in proptest::collection::vec(1usize..5, 1..4)) {
            let t = Tensor::from_fn(dims.clone(), |idx| {
                idx.iter().enumerate().map(|(i, &v)| v * (i + 1)).sum::<usize>() as f32
            });
            let shape = Shape::from(dims);
            for off in 0..shape.volume() {
                let idx = shape.unravel(off).unwrap();
                let expect = idx.iter().enumerate().map(|(i, &v)| v * (i + 1)).sum::<usize>() as f32;
                prop_assert_eq!(t.at(&idx).unwrap(), expect);
            }
        }
    }
}
