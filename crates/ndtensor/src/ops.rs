//! Elementwise arithmetic, scalar broadcasting and reductions.
//!
//! Binary operators on `&Tensor` panic on shape mismatch (consistent with
//! arithmetic on primitives); the fallible equivalents are available through
//! [`Tensor::zip_map`]. Reductions over empty tensors return identity-like
//! values documented per method.

use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::{Result, Tensor, TensorError};

macro_rules! binary_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Tensor {
            type Output = Tensor;

            /// Elementwise operation on two same-shape tensors.
            ///
            /// # Panics
            ///
            /// Panics when the shapes differ; use [`Tensor::zip_map`] for a
            /// fallible variant.
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip_map(rhs, |a, b| a $op b)
                    .unwrap_or_else(|e| panic!("tensor {}: {e}", stringify!($method))) // sncheck:allow(no-panic-in-lib): std::ops traits are infallible by signature; zip_map is the fallible variant
            }
        }
    };
}

binary_op!(Add, add, +);
binary_op!(Sub, sub, -);
binary_op!(Mul, mul, *);
binary_op!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.map(|v| -v)
    }
}

impl Tensor {
    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Adds `other * s` into `self` in place (the BLAS `axpy` primitive).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, s: f32, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += s * b;
        }
        Ok(())
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp_values(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Sum of all elements (0.0 for empty tensors).
    pub fn sum(&self) -> f32 {
        // Kahan summation: reductions feed loss values and calibration
        // thresholds, where drift across large tensors is observable.
        let mut sum = 0.0f32;
        let mut c = 0.0f32;
        for &v in self.as_slice() {
            let y = v - c;
            let t = sum + y;
            c = (t - sum) - y;
            sum = t;
        }
        sum
    }

    /// Arithmetic mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Population variance of all elements (0.0 for empty tensors).
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let mut acc = 0.0f64;
        for &v in self.as_slice() {
            let d = (v - mean) as f64;
            acc += d * d;
        }
        (acc / self.len() as f64) as f32
    }

    /// Minimum element (`+inf` for empty tensors).
    pub fn min_value(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for empty tensors).
    pub fn max_value(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Linear index of the maximum element, or `None` for empty tensors.
    ///
    /// Ties resolve to the first occurrence.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.as_slice().iter().enumerate() {
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm_l2(&self) -> f32 {
        let mut acc = 0.0f64;
        for &v in self.as_slice() {
            acc += (v as f64) * (v as f64);
        }
        acc.sqrt() as f32
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape().clone(),
                rhs: other.shape().clone(),
            });
        }
        let mut acc = 0.0f64;
        for (&a, &b) in self.as_slice().iter().zip(other.as_slice()) {
            acc += (a as f64) * (b as f64);
        }
        Ok(acc as f32)
    }

    /// Rescales values linearly so the minimum maps to 0 and the maximum
    /// to 1. A constant tensor maps to all zeros.
    pub fn normalize_minmax(&self) -> Tensor {
        let lo = self.min_value();
        let hi = self.max_value();
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Tensor::zeros(self.shape().clone());
        }
        let inv = 1.0 / (hi - lo);
        self.map(|v| (v - lo) * inv)
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.as_slice().iter().any(|v| !v.is_finite())
    }

    /// Sums along `axis`, removing that dimension
    /// (`[d0, …, daxis, …, dn] → [d0, …, dn]`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] when `axis >= rank`.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        if axis >= self.rank() {
            return Err(TensorError::invalid(
                "sum_axis",
                format!("axis {axis} out of range for rank {}", self.rank()),
            ));
        }
        let dims = self.shape().dims();
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![0.0f32; outer * inner];
        let data = self.as_slice();
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let orow = &mut out[o * inner..(o + 1) * inner];
                for (acc, &v) in orow.iter_mut().zip(&data[base..base + inner]) {
                    *acc += v;
                }
            }
        }
        let mut new_dims: Vec<usize> = dims[..axis].to_vec();
        new_dims.extend_from_slice(&dims[axis + 1..]);
        Tensor::from_vec(crate::Shape::from(new_dims), out)
    }

    /// Arithmetic mean along `axis`, removing that dimension. An axis of
    /// length zero yields zeros (consistent with [`Tensor::mean`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] when `axis >= rank`.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let axis_len = self.shape().dims()[axis.min(self.rank().saturating_sub(1))];
        let sums = self.sum_axis(axis)?;
        if axis_len == 0 {
            return Ok(sums);
        }
        Ok(sums.scale(1.0 / axis_len as f32))
    }

    /// Maximum along `axis`, removing that dimension (`-inf` entries for
    /// a zero-length axis).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] when `axis >= rank`.
    pub fn max_axis(&self, axis: usize) -> Result<Tensor> {
        if axis >= self.rank() {
            return Err(TensorError::invalid(
                "max_axis",
                format!("axis {axis} out of range for rank {}", self.rank()),
            ));
        }
        let dims = self.shape().dims();
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![f32::NEG_INFINITY; outer * inner];
        let data = self.as_slice();
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let orow = &mut out[o * inner..(o + 1) * inner];
                for (acc, &v) in orow.iter_mut().zip(&data[base..base + inner]) {
                    *acc = acc.max(v);
                }
            }
        }
        let mut new_dims: Vec<usize> = dims[..axis].to_vec();
        new_dims.extend_from_slice(&dims[axis + 1..]);
        Tensor::from_vec(crate::Shape::from(new_dims), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec([n], v).unwrap()
    }

    #[test]
    fn operators_work_elementwise() {
        let a = t(vec![1., 2., 3.]);
        let b = t(vec![4., 5., 6.]);
        assert_eq!((&a + &b).as_slice(), &[5., 7., 9.]);
        assert_eq!((&b - &a).as_slice(), &[3., 3., 3.]);
        assert_eq!((&a * &b).as_slice(), &[4., 10., 18.]);
        assert_eq!((&b / &a).as_slice(), &[4., 2.5, 2.]);
        assert_eq!((-&a).as_slice(), &[-1., -2., -3.]);
    }

    #[test]
    #[should_panic(expected = "add")]
    fn operator_panics_on_shape_mismatch() {
        let _ = &t(vec![1.]) + &t(vec![1., 2.]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(vec![1., -2.]);
        assert_eq!(a.scale(3.0).as_slice(), &[3., -6.]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2., -1.]);
        assert_eq!(a.clamp_values(0.0, 1.0).as_slice(), &[1., 0.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(vec![1., 2.]);
        a.axpy(2.0, &t(vec![10., 20.])).unwrap();
        assert_eq!(a.as_slice(), &[21., 42.]);
        assert!(a.axpy(1.0, &t(vec![1.])).is_err());
    }

    #[test]
    fn reductions() {
        let a = t(vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.min_value(), 1.0);
        assert_eq!(a.max_value(), 4.0);
        assert_eq!(a.argmax(), Some(3));
        assert!((a.variance() - 1.25).abs() < 1e-6);
        assert!((a.norm_l2() - 30.0f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn empty_reductions_have_documented_values() {
        let e = Tensor::zeros([0]);
        assert_eq!(e.sum(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.min_value(), f32::INFINITY);
        assert_eq!(e.max_value(), f32::NEG_INFINITY);
        assert_eq!(e.argmax(), None);
    }

    #[test]
    fn argmax_prefers_first_tie() {
        assert_eq!(t(vec![5., 1., 5.]).argmax(), Some(0));
    }

    #[test]
    fn dot_product() {
        let a = t(vec![1., 2., 3.]);
        let b = t(vec![4., 5., 6.]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&t(vec![1.])).is_err());
    }

    #[test]
    fn normalize_minmax_maps_to_unit_interval() {
        let a = t(vec![2., 4., 6.]);
        assert_eq!(a.normalize_minmax().as_slice(), &[0., 0.5, 1.]);
        let c = t(vec![3., 3., 3.]);
        assert_eq!(c.normalize_minmax().as_slice(), &[0., 0., 0.]);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!t(vec![1., 2.]).has_non_finite());
        assert!(t(vec![1., f32::NAN]).has_non_finite());
        assert!(t(vec![f32::INFINITY]).has_non_finite());
    }

    #[test]
    fn axis_reductions_small_cases() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        // Sum over rows (axis 0) → per-column sums.
        let s0 = t.sum_axis(0).unwrap();
        assert_eq!(s0.shape().dims(), &[3]);
        assert_eq!(s0.as_slice(), &[5., 7., 9.]);
        // Sum over columns (axis 1) → per-row sums.
        let s1 = t.sum_axis(1).unwrap();
        assert_eq!(s1.shape().dims(), &[2]);
        assert_eq!(s1.as_slice(), &[6., 15.]);
        let m1 = t.mean_axis(1).unwrap();
        assert_eq!(m1.as_slice(), &[2., 5.]);
        let x0 = t.max_axis(0).unwrap();
        assert_eq!(x0.as_slice(), &[4., 5., 6.]);
        assert!(t.sum_axis(2).is_err());
        assert!(t.max_axis(5).is_err());
    }

    #[test]
    fn axis_reductions_middle_axis() {
        let t = Tensor::from_fn([2, 3, 4], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let s = t.sum_axis(1).unwrap();
        assert_eq!(s.shape().dims(), &[2, 4]);
        // Entry (0, 0): 0 + 10 + 20 = 30.
        assert_eq!(s.at(&[0, 0]).unwrap(), 30.0);
        // Entry (1, 3): 103 + 113 + 123 = 339.
        assert_eq!(s.at(&[1, 3]).unwrap(), 339.0);
        let mx = t.max_axis(2).unwrap();
        assert_eq!(mx.shape().dims(), &[2, 3]);
        assert_eq!(mx.at(&[1, 2]).unwrap(), 123.0);
    }

    proptest! {
        #[test]
        fn sum_axis_preserves_total(dims in proptest::collection::vec(1usize..5, 1..4), axis_pick in 0usize..3) {
            let t = Tensor::from_fn(dims.clone(), |i| i.iter().sum::<usize>() as f32 + 1.0);
            let axis = axis_pick % dims.len();
            let reduced = t.sum_axis(axis).unwrap();
            prop_assert!((reduced.sum() - t.sum()).abs() < 1e-3 * (1.0 + t.sum().abs()));
        }

        #[test]
        fn addition_commutes(v in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
            let a = t(v.clone());
            let b = t(v.iter().rev().copied().collect());
            let ab = &a + &b;
            let ba = &b + &a;
            prop_assert_eq!(ab.as_slice(), ba.as_slice());
        }

        #[test]
        fn normalize_bounds(v in proptest::collection::vec(-1e3f32..1e3, 2..64)) {
            let n = t(v).normalize_minmax();
            for &x in n.as_slice() {
                prop_assert!((0.0..=1.0).contains(&x));
            }
        }

        #[test]
        fn dot_matches_norm(v in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
            let a = t(v);
            let d = a.dot(&a).unwrap();
            let n = a.norm_l2();
            prop_assert!((d - n * n).abs() <= 1e-3 * (1.0 + d.abs()));
        }
    }
}
