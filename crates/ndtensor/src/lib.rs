#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! Dense `f32` tensor math substrate for the `saliency-novelty` workspace.
//!
//! This crate provides the numeric foundation used by every other crate in
//! the reproduction of *"Novelty Detection via Network Saliency in
//! Visual-based Deep Learning"* (DSN 2019): shapes, contiguous row-major
//! tensors, elementwise and reduction kernels, a blocked multi-threaded
//! GEMM, im2col-based 2-D convolution (forward and backward), resampling,
//! and random initialisation.
//!
//! The design goals are, in order: correctness (every kernel has a naive
//! reference implementation it is tested against), determinism (no
//! platform-dependent math, seeded RNG everywhere), and enough speed to
//! train the paper's networks on a CPU in minutes.
//!
//! # Example
//!
//! ```
//! use ndtensor::{Tensor, matmul};
//!
//! # fn main() -> Result<(), ndtensor::TensorError> {
//! let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.])?;
//! let c = matmul(&a, &b)?;
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
//! # Ok(())
//! # }
//! ```

mod conv;
mod error;
mod init;
mod matmul;
mod ops;
pub mod par;
mod resample;
pub mod routines;
pub mod scratch;
mod shape;
mod tensor;

pub use conv::{
    col2im, col2im_into, conv2d, conv2d_backward, conv2d_backward_into, conv2d_into, im2col,
    im2col_into, Conv2dGrads, Conv2dSpec,
};
pub use error::TensorError;
pub use init::{fill_he_normal, fill_normal, fill_uniform, fill_xavier_uniform};
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_into, matmul_at_b, matmul_at_b_into, matmul_into,
};
pub use par::{set_thread_config, thread_config, with_serial, ThreadConfig};
pub use resample::{resize_bilinear, resize_nearest, upsample_sum};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, TensorError>;
