//! Per-shape routine selection: static heuristic or one-shot autotune.
//!
//! [`select`] maps `(op, m, k, n)` to one registered [`Routine`]. Two
//! policies exist, switched by the `SALIENCY_AUTOTUNE` environment
//! variable (or [`set_autotune`]):
//!
//! * **off** (default) — a pure arithmetic heuristic over the shape. No
//!   locks, no clocks, no state: the same build always selects the same
//!   routine.
//! * **on** — first sight of a shape measures every applicable candidate
//!   on seeded synthetic data and caches the winner in a process-global
//!   table. Timing goes through an injected [`KernelTimer`] (installed
//!   by `obs` from its sanctioned `Stopwatch` — `ndtensor` itself never
//!   touches a clock); without an installed timer, autotune degrades to
//!   the heuristic. Measurements are taken serially, min-of-N, and
//!   quantized to half-octave (×1.5) buckets before comparison, with
//!   ties broken by `(priority, name)` — never by registration order —
//!   so the cached table is reproducible run to run on a quiet machine.
//!
//! Selection policy is *performance only*: every candidate of a family
//! is bitwise-equal on all inputs (see `tests/kernel_parity.rs`), so
//! detector output is byte-identical whichever policy runs — the
//! autotune-on/off CI job proves this end to end.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use super::base::{candidates, default_routine, registry_index, GemmOp, Routine, REGISTRY};
use super::run_serial;
use crate::scratch;

/// Selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutotuneMode {
    /// Static shape heuristic (the default).
    Off,
    /// One-shot measured selection, cached per shape.
    On,
}

/// 0 = unresolved, 1 = off, 2 = on (same lazy-env pattern as
/// `par::thread_config`).
static MODE: AtomicUsize = AtomicUsize::new(0);

/// Replaces the process-wide autotune mode and clears the cached
/// selection table so the new policy is applied from scratch.
pub fn set_autotune(mode: AutotuneMode) {
    MODE.store(
        match mode {
            AutotuneMode::Off => 1,
            AutotuneMode::On => 2,
        },
        Ordering::Relaxed,
    );
    clear_selection_table();
}

/// The process-wide autotune mode, resolving `SALIENCY_AUTOTUNE` on
/// first use. Accepted values: `on`/`1` and `off`/`0` (unset means off);
/// anything else warns on stderr and falls back to off, never panicking.
pub fn autotune_mode() -> AutotuneMode {
    match MODE.load(Ordering::Relaxed) {
        1 => return AutotuneMode::Off,
        2 => return AutotuneMode::On,
        _ => {}
    }
    let resolved = match std::env::var("SALIENCY_AUTOTUNE") {
        Err(_) => AutotuneMode::Off,
        Ok(raw) => match raw.trim() {
            "on" | "1" => AutotuneMode::On,
            "off" | "0" | "" => AutotuneMode::Off,
            _ => {
                // sncheck:allow(no-stdout-in-lib): one-shot env-var
                // misconfiguration warning; no recorder exists this
                // early in process startup.
                eprintln!(
                    "warning: ignoring invalid SALIENCY_AUTOTUNE={raw:?} \
                     (expected on/off); autotune stays off"
                );
                AutotuneMode::Off
            }
        },
    };
    MODE.store(
        match resolved {
            AutotuneMode::Off => 1,
            AutotuneMode::On => 2,
        },
        Ordering::Relaxed,
    );
    resolved
}

/// Injected timing primitive: runs the closure and returns elapsed
/// nanoseconds. `obs::install_kernel_timer` provides the only sanctioned
/// implementation (backed by `obs::Stopwatch`); `ndtensor` deliberately
/// has no clock of its own, so autotune without an installed timer falls
/// back to the heuristic.
pub type KernelTimer = fn(&mut dyn FnMut()) -> u64;

static TIMER: OnceLock<KernelTimer> = OnceLock::new();

/// Installs the process-wide kernel timer. The first installation wins;
/// returns whether this call installed it.
pub fn install_timer(timer: KernelTimer) -> bool {
    TIMER.set(timer).is_ok()
}

/// Whether a kernel timer has been installed.
pub fn timer_installed() -> bool {
    TIMER.get().is_some()
}

/// Selection-table key: `(op index, m, k, n)`.
type ShapeKey = (u8, usize, usize, usize);

/// Cached selections: [`ShapeKey`] → `(registry index, measured)`.
/// BTreeMap so [`selection_table`] iterates in one deterministic order.
static TABLE: Mutex<BTreeMap<ShapeKey, (usize, bool)>> = Mutex::new(BTreeMap::new());

static STAT_LOOKUPS: AtomicU64 = AtomicU64::new(0);
static STAT_HITS: AtomicU64 = AtomicU64::new(0);
static STAT_MEASURED: AtomicU64 = AtomicU64::new(0);
static STAT_HEURISTIC: AtomicU64 = AtomicU64::new(0);

/// Cumulative selector activity since process start (monotonic; snapshot
/// and diff like `par::stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutotuneStats {
    /// Total [`select`] calls.
    pub lookups: u64,
    /// Lookups answered from the cached selection table.
    pub table_hits: u64,
    /// Shapes decided by measurement (one per table entry with
    /// `measured`).
    pub measured: u64,
    /// Lookups decided by the static heuristic (mode off, or no timer).
    pub heuristic: u64,
}

/// Snapshot of the selector counters.
pub fn stats() -> AutotuneStats {
    AutotuneStats {
        lookups: STAT_LOOKUPS.load(Ordering::Relaxed),
        table_hits: STAT_HITS.load(Ordering::Relaxed),
        measured: STAT_MEASURED.load(Ordering::Relaxed),
        heuristic: STAT_HEURISTIC.load(Ordering::Relaxed),
    }
}

/// One row of the cached selection table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionEntry {
    /// GEMM family.
    pub op: GemmOp,
    /// Problem rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Problem columns.
    pub n: usize,
    /// Stable name of the selected routine.
    pub routine: &'static str,
    /// Whether the entry came from measurement (false: heuristic
    /// fallback cached under autotune without a timer).
    pub measured: bool,
}

/// The cached selection table in deterministic (op, m, k, n) order.
/// Empty while autotune is off (the heuristic caches nothing).
pub fn selection_table() -> Vec<SelectionEntry> {
    let table = TABLE.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for (&(op, m, k, n), &(idx, measured)) in table.iter() {
        let op = match op {
            0 => GemmOp::MatMul,
            1 => GemmOp::MatMulAtB,
            _ => GemmOp::MatMulABt,
        };
        out.push(SelectionEntry {
            op,
            m,
            k,
            n,
            routine: REGISTRY[idx].name,
            measured,
        });
    }
    out
}

/// Drops every cached selection (tests and mode changes).
pub fn clear_selection_table() {
    TABLE.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Static shape heuristic: the selection used when autotune is off.
///
/// * Accumulating families: the two-row 64-wide register kernel where
///   its accumulator block fits the problem — output wide enough for the
///   64-column block (`n ≥ 64`) and `k` small enough that the `k × 64` B
///   block stays L1-resident (`k ≤ 128`, i.e. ≤ 32 KB of f32). That is
///   every conv-as-GEMM forward shape and the wide backward GEMMs, where
///   register accumulation beats the panel-packed axpy default by
///   1.5–2×. Outside that region the PR 5 axpy default wins (its packed
///   panel amortizes over long `k`), so the heuristic stays on proven
///   behaviour.
/// * `A·Bᵀ`: the dedicated GEMV for single-row problems (streaming dense
///   layers at batch 1), the PR 5 tiled kernel otherwise.
pub fn heuristic(op: GemmOp, m: usize, k: usize, n: usize) -> &'static Routine {
    let wide_small_k = n >= 64 && k <= 128;
    let name = match op {
        GemmOp::MatMul => {
            if wide_small_k {
                "mm-rr2-w64"
            } else {
                "mm-axpy-c256"
            }
        }
        GemmOp::MatMulAtB => {
            if wide_small_k {
                "atb-rr2-w64"
            } else {
                "atb-axpy-c256"
            }
        }
        GemmOp::MatMulABt => {
            if m == 1 {
                "abt-gemv"
            } else {
                "abt-dot8-t64"
            }
        }
    };
    REGISTRY
        .iter()
        .find(|r| r.name == name && r.applies_to(m, k, n))
        .unwrap_or_else(|| default_routine(op))
}

/// Selects the routine for one full problem shape.
///
/// Call once per entry-point invocation on the caller thread, *before*
/// row-splitting — workers receive the chosen kernel fn and never touch
/// the selector, so there is no per-chunk lock traffic and the choice
/// cannot depend on the thread count.
pub fn select(op: GemmOp, m: usize, k: usize, n: usize) -> &'static Routine {
    STAT_LOOKUPS.fetch_add(1, Ordering::Relaxed);
    if autotune_mode() == AutotuneMode::Off {
        STAT_HEURISTIC.fetch_add(1, Ordering::Relaxed);
        return heuristic(op, m, k, n);
    }
    let key = (op.index(), m, k, n);
    // The table lock is held across a miss's measurement so concurrent
    // first sightings of one shape serialize and cache a single verdict.
    let mut table = TABLE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&(idx, _)) = table.get(&key) {
        STAT_HITS.fetch_add(1, Ordering::Relaxed);
        return &REGISTRY[idx];
    }
    let entry = match TIMER.get() {
        Some(&timer) => {
            STAT_MEASURED.fetch_add(1, Ordering::Relaxed);
            (measure_shape(op, m, k, n, timer), true)
        }
        None => {
            STAT_HEURISTIC.fetch_add(1, Ordering::Relaxed);
            (registry_index(heuristic(op, m, k, n)), false)
        }
    };
    table.insert(key, entry);
    &REGISTRY[entry.0]
}

/// Half-octave quantization: maps nanoseconds to a ×1.5 bucket index so
/// run-to-run timing jitter inside a bucket cannot flip a selection.
/// Integer arithmetic only; everything below 64 ns shares bucket 0
/// (below timer resolution).
pub fn quantize_ns(ns: u64) -> u32 {
    let mut bucket = 0u32;
    let mut x = ns;
    while x >= 64 {
        x = x * 2 / 3;
        bucket += 1;
    }
    bucket
}

/// Pure selection over measured candidates `(name, priority, ns/iter)`:
/// returns the index of the winner. Ranking is `(quantized ns, priority,
/// name)` ascending, so the result is independent of input order — the
/// selector-determinism proptest shuffles the slice and expects the same
/// winning name.
pub fn pick(measured: &[(&str, u8, u64)]) -> Option<usize> {
    measured
        .iter()
        .enumerate()
        .min_by_key(|(_, &(name, priority, ns))| (quantize_ns(ns), priority, name))
        .map(|(i, _)| i)
}

/// Trials per candidate; the minimum is kept (noise on a busy machine is
/// one-sided, so min-of-N converges on the true floor).
const TRIALS: usize = 4;

/// Target duration of one timed trial: repetitions are scaled so even
/// microsecond kernels are measured over ≥ ~200 µs, keeping timer
/// resolution out of the quantized buckets.
const TARGET_TRIAL_NS: u64 = 200_000;

/// Fills `buf` with a seeded LCG sequence in (-1, 1); every `zero_every`-th
/// element (when > 0) is an exact zero so the accumulating families'
/// sparsity skip is exercised the way post-ReLU activations exercise it.
fn fill_seeded(buf: &mut [f32], seed: u64, zero_every: usize) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for (i, v) in buf.iter_mut().enumerate() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = if zero_every > 0 && i % zero_every == 0 {
            0.0
        } else {
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
    }
}

/// Measures every applicable candidate on seeded synthetic operands and
/// returns the registry index of the winner ([`pick`] semantics).
///
/// Measurement is serial (direct kernel invocation through
/// [`run_serial`], no row-splitting) so the verdict cannot depend on the
/// thread configuration, and the synthetic operands depend only on the
/// shape — same build, same knob, same table.
fn measure_shape(op: GemmOp, m: usize, k: usize, n: usize, timer: KernelTimer) -> usize {
    let (a_len, b_len) = match op {
        GemmOp::MatMul => (m * k, k * n),
        GemmOp::MatMulAtB => (k * m, k * n),
        GemmOp::MatMulABt => (m * k, n * k),
    };
    let mut a = scratch::take(a_len);
    a.resize(a_len, 0.0);
    let seed = 0x5EED ^ (op.index() as u64) << 48 ^ (m as u64) << 32 ^ (k as u64) << 16 ^ n as u64;
    fill_seeded(&mut a, seed, 4);
    let mut b = scratch::take(b_len);
    b.resize(b_len, 0.0);
    fill_seeded(&mut b, seed ^ 0xB00F, 0);
    let mut out = scratch::take(m * n);
    out.resize(m * n, 0.0);

    let mut best: Option<(u32, u8, &'static str, usize)> = None;
    for routine in candidates(op, m, k, n) {
        let idx = registry_index(routine);
        // Warmup + single-shot estimate to size the timed trials.
        run_serial(routine, m, k, n, &a, &b, &mut out);
        let est = timer(&mut || run_serial(routine, m, k, n, &a, &b, &mut out)).max(1);
        let reps = (TARGET_TRIAL_NS / est).clamp(1, 10_000);
        let mut floor_ns = u64::MAX;
        for _ in 0..TRIALS {
            let t = timer(&mut || {
                for _ in 0..reps {
                    run_serial(routine, m, k, n, &a, &b, &mut out);
                }
            });
            floor_ns = floor_ns.min(t / reps);
        }
        let rank = (quantize_ns(floor_ns), routine.priority, routine.name);
        if best.is_none_or(|(q, p, name, _)| (q, p, name) > rank) {
            best = Some((rank.0, rank.1, rank.2, idx));
        }
    }
    scratch::give(out);
    scratch::give(b);
    scratch::give(a);
    best.map(|(_, _, _, idx)| idx)
        .unwrap_or_else(|| registry_index(default_routine(op)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_is_monotone_and_absorbs_jitter() {
        assert_eq!(quantize_ns(0), 0);
        assert_eq!(quantize_ns(63), 0);
        assert!(quantize_ns(100) >= 1);
        // Points 1% apart share a bucket almost everywhere.
        assert_eq!(quantize_ns(10_000), quantize_ns(10_100));
        // A 2x difference never shares a bucket.
        for ns in [100u64, 1_000, 10_000, 1_000_000] {
            assert!(quantize_ns(2 * ns) > quantize_ns(ns), "{ns}");
        }
        for w in [1u64, 10, 1_000, 123_456] {
            assert!(quantize_ns(w + 1) >= quantize_ns(w));
        }
    }

    #[test]
    fn pick_prefers_fast_then_priority_then_name() {
        // Clear winner by time.
        let m = [("slow", 0, 10_000u64), ("fast", 9, 100)];
        assert_eq!(pick(&m), Some(1));
        // Same bucket: priority breaks the tie.
        let m = [("b", 5, 1_000u64), ("a", 0, 1_010)];
        assert_eq!(pick(&m), Some(1));
        // Same bucket and priority: name breaks the tie.
        let m = [("zeta", 3, 1_000u64), ("alpha", 3, 1_001)];
        assert_eq!(pick(&m), Some(1));
        assert_eq!(pick(&[]), None);
    }

    #[test]
    fn heuristic_is_pure_and_total() {
        for op in [GemmOp::MatMul, GemmOp::MatMulAtB, GemmOp::MatMulABt] {
            for &(m, k, n) in &[
                (1, 1, 1),
                (1, 64, 9600),
                (32, 64, 9600),
                (5, 3, 8),
                (64, 64, 64),
            ] {
                let a = heuristic(op, m, k, n);
                let b = heuristic(op, m, k, n);
                assert_eq!(a.name, b.name);
                assert_eq!(a.op, op);
                assert!(a.applies_to(m, k, n));
            }
        }
        assert_eq!(heuristic(GemmOp::MatMulABt, 1, 64, 9600).name, "abt-gemv");
        assert_ne!(heuristic(GemmOp::MatMulABt, 2, 64, 9600).name, "abt-gemv");
    }

    #[test]
    fn select_off_mode_matches_heuristic_and_caches_nothing() {
        set_autotune(AutotuneMode::Off);
        let before = stats();
        let r = select(GemmOp::MatMulAtB, 32, 64, 9600);
        assert_eq!(r.name, heuristic(GemmOp::MatMulAtB, 32, 64, 9600).name);
        assert!(selection_table().is_empty());
        let d = stats();
        assert!(d.lookups > before.lookups);
        assert!(d.heuristic > before.heuristic);
    }

    #[test]
    fn select_on_mode_without_timer_caches_heuristic_fallback() {
        // The timer may or may not be installed in this process (other
        // tests / obs). Either way the selection must be cached and
        // stable across repeated lookups.
        set_autotune(AutotuneMode::On);
        let first = select(GemmOp::MatMul, 6, 5, 40).name;
        let again = select(GemmOp::MatMul, 6, 5, 40).name;
        assert_eq!(first, again);
        let table = selection_table();
        assert!(table.iter().any(|e| e.op == GemmOp::MatMul
            && (e.m, e.k, e.n) == (6, 5, 40)
            && e.routine == first));
        set_autotune(AutotuneMode::Off);
        assert!(selection_table().is_empty(), "mode change clears table");
    }
}
