//! Shape-aware GEMM routine registry and selector (ROADMAP item 1).
//!
//! The PR 5 matmul kernels used one fixed tile configuration for every
//! shape. This module splits that into a *blueprint/routine* structure:
//!
//! * [`kernels`](self) — the candidate microkernels (tile-size variants,
//!   register-blocked accumulators, a dedicated GEMV), every one
//!   bitwise-equal to the naive kernel within its family;
//! * [`Routine`] / [`REGISTRY`] — the static table describing each
//!   candidate (name, family, shape predicate, priority);
//! * [`select`] — per-`(op, m, k, n)` choice, either a pure shape
//!   heuristic (default) or a one-shot seeded autotune cached in a
//!   deterministic in-process table (`SALIENCY_AUTOTUNE=on`), timed
//!   exclusively through a [`KernelTimer`] injected by `obs`.
//!
//! Selection is performance-only by construction: the entry points in
//! [`crate::matmul`] and [`crate::conv`] select once per call on the
//! caller thread and hand the chosen kernel fn to the row-parallel
//! workers, and every family member produces bit-identical output, so
//! neither the policy, the thread count, nor the autotune knob can change
//! a single output bit.

mod base;
mod kernels;
mod selector;

pub use base::{
    by_name, candidates, default_routine, run_serial, GemmOp, Kernel, Routine, REGISTRY,
};
pub use selector::{
    autotune_mode, clear_selection_table, heuristic, install_timer, pick, quantize_ns, select,
    selection_table, set_autotune, stats, timer_installed, AutotuneMode, AutotuneStats,
    KernelTimer, SelectionEntry,
};

pub(crate) use kernels::pack_at;
