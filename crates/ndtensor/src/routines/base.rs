//! The routine registry: every candidate microkernel, described.
//!
//! A [`Routine`] is a named, shape-gated entry into one GEMM family.
//! All candidates of a family share one calling convention ([`Kernel`]):
//! a packed `rows × k` row block of A against the full B operand,
//! writing a `rows × n` output block — exactly the per-chunk shape
//! [`crate::par::for_each_block`] hands to workers, so the selected
//! kernel drops straight into the existing row-parallel entry points.
//!
//! The registry is a static table ([`REGISTRY`]): adding a routine means
//! adding one wrapper fn and one table row. Selection (see
//! [`crate::routines::selector`]) never affects results — every family
//! member is bitwise-equal to the naive kernel — so the table can grow
//! freely without touching the determinism proofs.

use super::kernels;
use crate::scratch;

/// One GEMM family, keyed by operand orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GemmOp {
    /// `C = A·B` — accumulating family (`A: [m, k]`, `B: [k, n]`).
    MatMul,
    /// `C = Aᵀ·B` — accumulating family after packing the Aᵀ rows
    /// (`A: [k, m]`, `B: [k, n]`).
    MatMulAtB,
    /// `C = A·Bᵀ` — assigning family (`A: [m, k]`, `B: [n, k]`).
    MatMulABt,
}

impl GemmOp {
    /// Stable identifier used in bench reports and the selection table
    /// (matches the kernel names in `BENCH_pipeline.json`).
    pub fn as_str(self) -> &'static str {
        match self {
            GemmOp::MatMul => "matmul",
            GemmOp::MatMulAtB => "matmul_at_b",
            GemmOp::MatMulABt => "matmul_a_bt",
        }
    }

    /// Dense table index (used as the selection-table key component).
    pub(crate) fn index(self) -> u8 {
        match self {
            GemmOp::MatMul => 0,
            GemmOp::MatMulAtB => 1,
            GemmOp::MatMulABt => 2,
        }
    }
}

/// The uniform microkernel signature: `(arows, rows, k, bd, n, out)`.
///
/// `arows` is a packed `rows × k` block of A rows (for [`GemmOp::MatMulAtB`]
/// the entry point packs the Aᵀ chunk first), `bd` the full B operand in
/// the family's layout, `out` the `rows × n` output block. Accumulating
/// families add into `out`; the assigning family overwrites every element.
pub type Kernel = fn(&[f32], usize, usize, &[f32], usize, &mut [f32]);

/// One registered candidate microkernel.
#[derive(Debug, Clone, Copy)]
pub struct Routine {
    /// Stable name, unique across the registry; appears in bench JSON,
    /// the selection table and test failure messages.
    pub name: &'static str,
    /// The family this routine implements.
    pub op: GemmOp,
    /// Tie-break rank for selection: lower wins when measurements are
    /// indistinguishable. The PR 5 default of each family is 0, so ties
    /// always fall back to proven behaviour. Never compared across
    /// families.
    pub priority: u8,
    /// Shape-class predicate over the *full* problem `(m, k, n)`: a
    /// routine is only a candidate where this returns true. Kernels must
    /// still be correct for any chunk the row-splitter produces.
    pub applies: fn(m: usize, k: usize, n: usize) -> bool,
    /// The microkernel entry point.
    pub kernel: Kernel,
}

impl Routine {
    /// Whether this routine is a candidate for the full problem shape.
    pub fn applies_to(&self, m: usize, k: usize, n: usize) -> bool {
        (self.applies)(m, k, n)
    }
}

fn always(_m: usize, _k: usize, _n: usize) -> bool {
    true
}

fn single_row(m: usize, _k: usize, _n: usize) -> bool {
    m == 1
}

// Wrapper fns: `Kernel` is a plain fn pointer, so each tile/width
// configuration gets a named zero-cost wrapper.

fn mm_axpy_c128(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_axpy(a, rows, k, b, n, out, 128);
}
fn mm_axpy_c256(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_axpy(a, rows, k, b, n, out, 256);
}
fn mm_axpy_c512(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_axpy(a, rows, k, b, n, out, 512);
}
fn mm_reg8_c256(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_regblock::<8>(a, rows, k, b, n, out, 256);
}
fn mm_reg16_c256(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_regblock::<16>(a, rows, k, b, n, out, 256);
}
fn mm_rr2_w16(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_rr2::<16>(a, rows, k, b, n, out);
}
fn mm_rr2_w32(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_rr2::<32>(a, rows, k, b, n, out);
}
fn mm_rr2_w64(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_rr2::<64>(a, rows, k, b, n, out);
}
fn mm_rr4_w16(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_rr4::<16>(a, rows, k, b, n, out);
}
fn mm_rr4_w32(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_rr4::<32>(a, rows, k, b, n, out);
}
fn mm_rr4_w64(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::mm_rr4::<64>(a, rows, k, b, n, out);
}
fn abt_dot8_t64(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::abt_tiled::<8>(a, rows, k, b, n, out, 64);
}
fn abt_dot8_t32(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::abt_tiled::<8>(a, rows, k, b, n, out, 32);
}
fn abt_dot16_t64(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::abt_tiled::<16>(a, rows, k, b, n, out, 64);
}
fn abt_gemv(a: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    kernels::abt_gemv::<8>(a, rows, k, b, n, out);
}

/// Every registered routine. Priority 0 rows are the PR 5 defaults; the
/// selector's tie-break and the bench regression gate are both anchored
/// to them. Table order is irrelevant to selection (ties break on
/// `(priority, name)`), which the selector-determinism proptest verifies
/// by shuffling candidate lists.
pub static REGISTRY: &[Routine] = &[
    // --- matmul (accumulating) ---
    Routine {
        name: "mm-axpy-c256",
        op: GemmOp::MatMul,
        priority: 0,
        applies: always,
        kernel: mm_axpy_c256,
    },
    Routine {
        name: "mm-axpy-c128",
        op: GemmOp::MatMul,
        priority: 10,
        applies: always,
        kernel: mm_axpy_c128,
    },
    Routine {
        name: "mm-axpy-c512",
        op: GemmOp::MatMul,
        priority: 11,
        applies: always,
        kernel: mm_axpy_c512,
    },
    Routine {
        name: "mm-reg8-c256",
        op: GemmOp::MatMul,
        priority: 20,
        applies: always,
        kernel: mm_reg8_c256,
    },
    Routine {
        name: "mm-reg16-c256",
        op: GemmOp::MatMul,
        priority: 21,
        applies: always,
        kernel: mm_reg16_c256,
    },
    Routine {
        name: "mm-rr2-w16",
        op: GemmOp::MatMul,
        priority: 40,
        applies: always,
        kernel: mm_rr2_w16,
    },
    Routine {
        name: "mm-rr2-w32",
        op: GemmOp::MatMul,
        priority: 41,
        applies: always,
        kernel: mm_rr2_w32,
    },
    Routine {
        name: "mm-rr2-w64",
        op: GemmOp::MatMul,
        priority: 44,
        applies: always,
        kernel: mm_rr2_w64,
    },
    Routine {
        name: "mm-rr4-w16",
        op: GemmOp::MatMul,
        priority: 42,
        applies: always,
        kernel: mm_rr4_w16,
    },
    Routine {
        name: "mm-rr4-w32",
        op: GemmOp::MatMul,
        priority: 43,
        applies: always,
        kernel: mm_rr4_w32,
    },
    Routine {
        name: "mm-rr4-w64",
        op: GemmOp::MatMul,
        priority: 45,
        applies: always,
        kernel: mm_rr4_w64,
    },
    // --- matmul_at_b (accumulating, entry point packs Aᵀ) ---
    Routine {
        name: "atb-axpy-c256",
        op: GemmOp::MatMulAtB,
        priority: 0,
        applies: always,
        kernel: mm_axpy_c256,
    },
    Routine {
        name: "atb-axpy-c128",
        op: GemmOp::MatMulAtB,
        priority: 10,
        applies: always,
        kernel: mm_axpy_c128,
    },
    Routine {
        name: "atb-axpy-c512",
        op: GemmOp::MatMulAtB,
        priority: 11,
        applies: always,
        kernel: mm_axpy_c512,
    },
    Routine {
        name: "atb-reg8-c256",
        op: GemmOp::MatMulAtB,
        priority: 20,
        applies: always,
        kernel: mm_reg8_c256,
    },
    Routine {
        name: "atb-reg16-c256",
        op: GemmOp::MatMulAtB,
        priority: 21,
        applies: always,
        kernel: mm_reg16_c256,
    },
    Routine {
        name: "atb-rr2-w16",
        op: GemmOp::MatMulAtB,
        priority: 40,
        applies: always,
        kernel: mm_rr2_w16,
    },
    Routine {
        name: "atb-rr2-w32",
        op: GemmOp::MatMulAtB,
        priority: 41,
        applies: always,
        kernel: mm_rr2_w32,
    },
    Routine {
        name: "atb-rr2-w64",
        op: GemmOp::MatMulAtB,
        priority: 44,
        applies: always,
        kernel: mm_rr2_w64,
    },
    Routine {
        name: "atb-rr4-w16",
        op: GemmOp::MatMulAtB,
        priority: 42,
        applies: always,
        kernel: mm_rr4_w16,
    },
    Routine {
        name: "atb-rr4-w32",
        op: GemmOp::MatMulAtB,
        priority: 43,
        applies: always,
        kernel: mm_rr4_w32,
    },
    Routine {
        name: "atb-rr4-w64",
        op: GemmOp::MatMulAtB,
        priority: 45,
        applies: always,
        kernel: mm_rr4_w64,
    },
    // --- matmul_a_bt (assigning) ---
    Routine {
        name: "abt-dot8-t64",
        op: GemmOp::MatMulABt,
        priority: 0,
        applies: always,
        kernel: abt_dot8_t64,
    },
    Routine {
        name: "abt-dot8-t32",
        op: GemmOp::MatMulABt,
        priority: 10,
        applies: always,
        kernel: abt_dot8_t32,
    },
    Routine {
        name: "abt-dot16-t64",
        op: GemmOp::MatMulABt,
        priority: 11,
        applies: always,
        kernel: abt_dot16_t64,
    },
    Routine {
        name: "abt-gemv",
        op: GemmOp::MatMulABt,
        priority: 5,
        applies: single_row,
        kernel: abt_gemv,
    },
];

/// Candidates of `op` applicable to the full shape `(m, k, n)`, in
/// registry order.
pub fn candidates(
    op: GemmOp,
    m: usize,
    k: usize,
    n: usize,
) -> impl Iterator<Item = &'static Routine> {
    REGISTRY
        .iter()
        .filter(move |r| r.op == op && r.applies_to(m, k, n))
}

/// The priority-0 (PR 5 default) routine of a family.
pub fn default_routine(op: GemmOp) -> &'static Routine {
    REGISTRY
        .iter()
        .find(|r| r.op == op && r.priority == 0)
        .unwrap_or(&REGISTRY[0]) // registry always contains the defaults
}

/// Looks a routine up by its stable name.
pub fn by_name(name: &str) -> Option<&'static Routine> {
    REGISTRY.iter().find(|r| r.name == name)
}

/// Index of a routine in [`REGISTRY`] (by name identity).
pub(crate) fn registry_index(routine: &'static Routine) -> usize {
    REGISTRY
        .iter()
        .position(|r| r.name == routine.name)
        .unwrap_or(0) // every &'static Routine comes from REGISTRY
}

/// Runs one routine over the *whole* problem on the calling thread, with
/// the same per-call preparation the entry points perform (zero-fill for
/// accumulating families, Aᵀ packing for [`GemmOp::MatMulAtB`]). Operand
/// layouts follow the family: `a` is `[m, k]` (`[k, m]` for `MatMulAtB`),
/// `b` is `[k, n]` (`[n, k]` for `MatMulABt`), `out` is `m·n` long.
///
/// This is the measurement body shared by the autotuner and the bench's
/// per-candidate timing: production and measurement run the same code.
pub fn run_serial(
    routine: &Routine,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    match routine.op {
        GemmOp::MatMul => {
            out.fill(0.0);
            (routine.kernel)(a, m, k, b, n, out);
        }
        GemmOp::MatMulAtB => {
            out.fill(0.0);
            let pa = kernels::pack_at(a, k, m, 0, m);
            (routine.kernel)(&pa, m, k, b, n, out);
            scratch::give(pa);
        }
        GemmOp::MatMulABt => {
            (routine.kernel)(a, m, k, b, n, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_defaults_exist() {
        for (i, r) in REGISTRY.iter().enumerate() {
            for other in &REGISTRY[i + 1..] {
                assert_ne!(r.name, other.name);
            }
        }
        for op in [GemmOp::MatMul, GemmOp::MatMulAtB, GemmOp::MatMulABt] {
            let d = default_routine(op);
            assert_eq!(d.op, op);
            assert_eq!(d.priority, 0);
            assert!(d.applies_to(7, 5, 300), "defaults must apply everywhere");
        }
    }

    #[test]
    fn gemv_only_applies_to_single_row_problems() {
        let gemv = by_name("abt-gemv").unwrap();
        assert!(gemv.applies_to(1, 64, 9600));
        assert!(!gemv.applies_to(2, 64, 9600));
        assert!(candidates(GemmOp::MatMulABt, 1, 64, 9600).any(|r| r.name == "abt-gemv"));
        assert!(!candidates(GemmOp::MatMulABt, 32, 64, 9600).any(|r| r.name == "abt-gemv"));
    }

    #[test]
    fn by_name_round_trips() {
        for r in REGISTRY {
            assert_eq!(by_name(r.name).unwrap().name, r.name);
            assert_eq!(registry_index(r), registry_index(by_name(r.name).unwrap()));
        }
        assert!(by_name("no-such-routine").is_none());
    }
}
