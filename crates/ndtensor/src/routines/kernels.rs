//! Candidate GEMM microkernels behind the routine registry.
//!
//! Every kernel here honours one non-negotiable contract: **each output
//! element is accumulated in a single chain, ascending `k`, starting from
//! the element's initial value** — exactly the three-loop schoolbook
//! product. Tiling, packing and register blocking only reorder *which
//! element is worked on next*, never the additions inside one element,
//! so every candidate is bitwise-equal to the naive kernel and to every
//! other candidate of its family (proven across shapes and thread counts
//! by `tests/kernel_parity.rs`).
//!
//! Families and their invariants:
//!
//! * **accumulating** (`matmul`, `matmul_at_b` after packing Aᵀ): the
//!   historical exact-zero skip on `A` entries is preserved verbatim in
//!   every variant — all members skip the same `l` indices, so members
//!   are bitwise-interchangeable on *all* inputs, zeros included.
//! * **assigning** (`matmul_a_bt`): no zero skip anywhere (the original
//!   kernel never had one), every output element is written exactly once.
//!
//! The axpy variants are the PR 5 defaults generalised over the column
//! tile; the register-blocked variants hold a group of output columns in
//! local accumulators so each output element is loaded and stored once
//! instead of once per `k` step — on the tall-skinny backward GEMM of
//! the steering CNN (`m32 k64 n9600`) that removes ~`k×` of output
//! traffic and is worth >2×.

use crate::scratch;

/// Minimum rows in a chunk before packing the B panel pays for itself.
/// Shared by every packed variant so the packed/unpacked decision (which
/// never affects values) stays uniform across the family.
pub(crate) const PACK_MIN_ROWS: usize = 4;

/// Packs the `k × tw` column panel of `b` starting at column `jc` into
/// `panel` (cleared first): one streaming copy, then every row of the
/// chunk reuses it from cache.
fn pack_panel(bd: &[f32], k: usize, n: usize, jc: usize, tw: usize, panel: &mut Vec<f32>) {
    panel.clear();
    for l in 0..k {
        panel.extend_from_slice(&bd[l * n + jc..l * n + jc + tw]);
    }
}

/// Axpy-ordered accumulating kernel (the PR 5 default generalised over
/// `col_tile`): `out[i][j] += Σ_l arows[i][l] · b[l][j]` with column
/// tiling and optional B-panel packing. `out` must hold the `rows × n`
/// output block already initialised.
///
/// Per output element the summation is a single chain in ascending `l`,
/// skipping exact-zero `arows` entries — identical to the naive kernel.
pub(crate) fn mm_axpy(
    arows: &[f32],
    rows: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out: &mut [f32],
    col_tile: usize,
) {
    debug_assert_eq!(arows.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    if rows == 0 || n == 0 || k == 0 {
        return;
    }
    let pack = rows >= PACK_MIN_ROWS;
    let mut panel = if pack {
        scratch::take(k * col_tile.min(n))
    } else {
        Vec::new()
    };
    let mut jc = 0;
    while jc < n {
        let tw = col_tile.min(n - jc);
        if pack {
            pack_panel(bd, k, n, jc, tw, &mut panel);
        }
        for i in 0..rows {
            let arow = &arows[i * k..(i + 1) * k];
            let orow = &mut out[i * n + jc..i * n + jc + tw];
            for (l, &av) in arow.iter().enumerate() {
                // sncheck:allow(no-float-eq): exact-zero sparsity skip,
                // not a tolerance check.
                if av == 0.0 {
                    continue;
                }
                let brow = if pack {
                    &panel[l * tw..(l + 1) * tw]
                } else {
                    &bd[l * n + jc..l * n + jc + tw]
                };
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        jc += tw;
    }
    scratch::give(panel);
}

/// Register-blocked accumulating kernel: holds `W` output columns in
/// local accumulators seeded from `out` (so the per-element chain still
/// starts at the element's initial value), streams `l` ascending with
/// the family's exact-zero skip, and stores each element exactly once.
///
/// With `col_tile == W` this is the B-streaming configuration that wins
/// the tall-skinny wide-`n` shapes: the `k × W` B block (a few KB) turns
/// L1-resident after the first output row, so B is pulled from memory
/// exactly once per kernel call, while each output element lives in a
/// register group for its whole `k` chain. Larger tiles trade that for
/// the axpy kernels' panel reuse pattern. B-panel packing is skipped
/// when the tile is no wider than the accumulator group (`col_tile ≤ W`)
/// — a copy without a reuse benefit; the decision never affects values.
pub(crate) fn mm_regblock<const W: usize>(
    arows: &[f32],
    rows: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out: &mut [f32],
    col_tile: usize,
) {
    debug_assert_eq!(arows.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    if rows == 0 || n == 0 || k == 0 {
        return;
    }
    let pack = rows >= PACK_MIN_ROWS && col_tile > W;
    let mut panel = if pack {
        scratch::take(k * col_tile.min(n))
    } else {
        Vec::new()
    };
    let mut jc = 0;
    while jc < n {
        let tw = col_tile.min(n - jc);
        if pack {
            pack_panel(bd, k, n, jc, tw, &mut panel);
        }
        for i in 0..rows {
            let arow = &arows[i * k..(i + 1) * k];
            let orow = &mut out[i * n + jc..i * n + jc + tw];
            let mut j = 0;
            while j + W <= tw {
                let mut acc = [0.0f32; W];
                acc.copy_from_slice(&orow[j..j + W]);
                for (l, &av) in arow.iter().enumerate() {
                    // sncheck:allow(no-float-eq): exact-zero sparsity
                    // skip, same discipline as mm_axpy.
                    if av == 0.0 {
                        continue;
                    }
                    let brow = if pack {
                        &panel[l * tw + j..l * tw + j + W]
                    } else {
                        &bd[l * n + jc + j..l * n + jc + j + W]
                    };
                    for t in 0..W {
                        acc[t] += av * brow[t];
                    }
                }
                orow[j..j + W].copy_from_slice(&acc);
                j += W;
            }
            while j < tw {
                let mut acc = orow[j];
                for (l, &av) in arow.iter().enumerate() {
                    // sncheck:allow(no-float-eq): exact-zero sparsity
                    // skip, same discipline as mm_axpy.
                    if av == 0.0 {
                        continue;
                    }
                    let bv = if pack {
                        panel[l * tw + j]
                    } else {
                        bd[l * n + jc + j]
                    };
                    acc += av * bv;
                }
                orow[j] = acc;
                j += 1;
            }
        }
        jc += tw;
    }
    scratch::give(panel);
}

/// Whether an A row contains no exact zero.
///
/// Gates the branch-free fast path of the register-row kernels: when no
/// element is zero, the skip-discipline loop and the branch-free loop
/// perform the identical sequence of multiplies and adds, so the fast
/// path is bitwise-equal on exactly the inputs where it is taken.
#[inline(always)]
fn dense_row(row: &[f32]) -> bool {
    // sncheck:allow(no-float-eq): exact-zero test is the gate condition
    // for the sparsity-skip discipline, not a tolerance comparison.
    row.iter().all(|&v| v != 0.0)
}

/// Single-row register block shared by the `mm_rr*` remainder paths.
#[inline(always)]
fn rr1_block<const W: usize>(
    r0: &[f32],
    k: usize,
    bd: &[f32],
    n: usize,
    j: usize,
    acc0: &mut [f32; W],
) {
    if dense_row(r0) {
        for l in 0..k {
            let brow = &bd[l * n + j..l * n + j + W];
            let a0 = r0[l];
            for t in 0..W {
                acc0[t] += a0 * brow[t];
            }
        }
    } else {
        for l in 0..k {
            let brow = &bd[l * n + j..l * n + j + W];
            let a0 = r0[l];
            // sncheck:allow(no-float-eq): exact-zero sparsity skip,
            // same discipline as mm_axpy.
            if a0 != 0.0 {
                for t in 0..W {
                    acc0[t] += a0 * brow[t];
                }
            }
        }
    }
}

/// Scalar column-remainder chains (identical order to the wide paths).
fn rr_col_remainder(
    arows: &[f32],
    rows: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out: &mut [f32],
    mut j: usize,
) {
    while j < n {
        for i in 0..rows {
            let mut s = out[i * n + j];
            for l in 0..k {
                let av = arows[i * k + l];
                // sncheck:allow(no-float-eq): exact-zero sparsity skip,
                // same discipline as mm_axpy.
                if av == 0.0 {
                    continue;
                }
                s += av * bd[l * n + j];
            }
            out[i * n + j] = s;
        }
        j += 1;
    }
}

/// Two-row register-blocked accumulating kernel: a pair of `W`-wide
/// accumulator rows lives in separate fixed-size locals (so scalar
/// replacement keeps them in vector registers for the whole `k` chain —
/// a nested `[[f32; W]; R]` block defeats that), seeded from `out` and
/// stored back once. The `k × W` B block is loaded once per `l`, shared
/// by both rows, and stays L1-resident across row pairs at the same
/// column offset, so B is effectively streamed from memory once per
/// call. Row pairs whose A rows contain no exact zero take a branch-free
/// inner loop; it performs the identical operation sequence as the
/// skip loop on those inputs, so the choice never changes bits. Each
/// output element's chain is ascending `l` either way.
pub(crate) fn mm_rr2<const W: usize>(
    arows: &[f32],
    rows: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(arows.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    if rows == 0 || n == 0 || k == 0 {
        return;
    }
    let mut j = 0;
    while j + W <= n {
        let mut i = 0;
        while i + 2 <= rows {
            let r0 = &arows[i * k..(i + 1) * k];
            let r1 = &arows[(i + 1) * k..(i + 2) * k];
            let mut acc0 = [0.0f32; W];
            let mut acc1 = [0.0f32; W];
            acc0.copy_from_slice(&out[i * n + j..i * n + j + W]);
            acc1.copy_from_slice(&out[(i + 1) * n + j..(i + 1) * n + j + W]);
            if dense_row(r0) && dense_row(r1) {
                for l in 0..k {
                    let brow = &bd[l * n + j..l * n + j + W];
                    let a0 = r0[l];
                    let a1 = r1[l];
                    for t in 0..W {
                        acc0[t] += a0 * brow[t];
                    }
                    for t in 0..W {
                        acc1[t] += a1 * brow[t];
                    }
                }
            } else {
                for l in 0..k {
                    let brow = &bd[l * n + j..l * n + j + W];
                    let a0 = r0[l];
                    // sncheck:allow(no-float-eq): exact-zero sparsity
                    // skip, same discipline as mm_axpy.
                    if a0 != 0.0 {
                        for t in 0..W {
                            acc0[t] += a0 * brow[t];
                        }
                    }
                    let a1 = r1[l];
                    // sncheck:allow(no-float-eq): exact-zero sparsity
                    // skip, same discipline as mm_axpy.
                    if a1 != 0.0 {
                        for t in 0..W {
                            acc1[t] += a1 * brow[t];
                        }
                    }
                }
            }
            out[i * n + j..i * n + j + W].copy_from_slice(&acc0);
            out[(i + 1) * n + j..(i + 1) * n + j + W].copy_from_slice(&acc1);
            i += 2;
        }
        // Remainder row: single-row register block, identical chains.
        while i < rows {
            let r0 = &arows[i * k..(i + 1) * k];
            let mut acc0 = [0.0f32; W];
            acc0.copy_from_slice(&out[i * n + j..i * n + j + W]);
            rr1_block::<W>(r0, k, bd, n, j, &mut acc0);
            out[i * n + j..i * n + j + W].copy_from_slice(&acc0);
            i += 1;
        }
        j += W;
    }
    rr_col_remainder(arows, rows, k, bd, n, out, j);
}

/// Four-row variant of [`mm_rr2`]: four independent `W`-wide accumulator
/// rows give twice the add chains in flight — worth it where FP-add
/// latency, not load bandwidth, bounds the two-row kernel. Same
/// bitwise-equality argument as [`mm_rr2`].
pub(crate) fn mm_rr4<const W: usize>(
    arows: &[f32],
    rows: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(arows.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    if rows == 0 || n == 0 || k == 0 {
        return;
    }
    let mut j = 0;
    while j + W <= n {
        let mut i = 0;
        while i + 4 <= rows {
            let r0 = &arows[i * k..(i + 1) * k];
            let r1 = &arows[(i + 1) * k..(i + 2) * k];
            let r2 = &arows[(i + 2) * k..(i + 3) * k];
            let r3 = &arows[(i + 3) * k..(i + 4) * k];
            let mut acc0 = [0.0f32; W];
            let mut acc1 = [0.0f32; W];
            let mut acc2 = [0.0f32; W];
            let mut acc3 = [0.0f32; W];
            acc0.copy_from_slice(&out[i * n + j..i * n + j + W]);
            acc1.copy_from_slice(&out[(i + 1) * n + j..(i + 1) * n + j + W]);
            acc2.copy_from_slice(&out[(i + 2) * n + j..(i + 2) * n + j + W]);
            acc3.copy_from_slice(&out[(i + 3) * n + j..(i + 3) * n + j + W]);
            if dense_row(r0) && dense_row(r1) && dense_row(r2) && dense_row(r3) {
                for l in 0..k {
                    let brow = &bd[l * n + j..l * n + j + W];
                    let a0 = r0[l];
                    let a1 = r1[l];
                    let a2 = r2[l];
                    let a3 = r3[l];
                    for t in 0..W {
                        acc0[t] += a0 * brow[t];
                    }
                    for t in 0..W {
                        acc1[t] += a1 * brow[t];
                    }
                    for t in 0..W {
                        acc2[t] += a2 * brow[t];
                    }
                    for t in 0..W {
                        acc3[t] += a3 * brow[t];
                    }
                }
            } else {
                for l in 0..k {
                    let brow = &bd[l * n + j..l * n + j + W];
                    let a0 = r0[l];
                    // sncheck:allow(no-float-eq): exact-zero sparsity
                    // skip, same discipline as mm_axpy.
                    if a0 != 0.0 {
                        for t in 0..W {
                            acc0[t] += a0 * brow[t];
                        }
                    }
                    let a1 = r1[l];
                    // sncheck:allow(no-float-eq): exact-zero sparsity
                    // skip, same discipline as mm_axpy.
                    if a1 != 0.0 {
                        for t in 0..W {
                            acc1[t] += a1 * brow[t];
                        }
                    }
                    let a2 = r2[l];
                    // sncheck:allow(no-float-eq): exact-zero sparsity
                    // skip, same discipline as mm_axpy.
                    if a2 != 0.0 {
                        for t in 0..W {
                            acc2[t] += a2 * brow[t];
                        }
                    }
                    let a3 = r3[l];
                    // sncheck:allow(no-float-eq): exact-zero sparsity
                    // skip, same discipline as mm_axpy.
                    if a3 != 0.0 {
                        for t in 0..W {
                            acc3[t] += a3 * brow[t];
                        }
                    }
                }
            }
            out[i * n + j..i * n + j + W].copy_from_slice(&acc0);
            out[(i + 1) * n + j..(i + 1) * n + j + W].copy_from_slice(&acc1);
            out[(i + 2) * n + j..(i + 2) * n + j + W].copy_from_slice(&acc2);
            out[(i + 3) * n + j..(i + 3) * n + j + W].copy_from_slice(&acc3);
            i += 4;
        }
        // Remainder rows: single-row register blocks, identical chains.
        while i < rows {
            let r0 = &arows[i * k..(i + 1) * k];
            let mut acc0 = [0.0f32; W];
            acc0.copy_from_slice(&out[i * n + j..i * n + j + W]);
            rr1_block::<W>(r0, k, bd, n, j, &mut acc0);
            out[i * n + j..i * n + j + W].copy_from_slice(&acc0);
            i += 1;
        }
        j += W;
    }
    rr_col_remainder(arows, rows, k, bd, n, out, j);
}

/// Transposes the `Aᵀ` column block `i0..i0 + rows` of `A: [k, m]` into
/// a contiguous `rows × k` scratch buffer (single pass over `A`), so the
/// accumulating kernels see plain packed rows.
pub(crate) fn pack_at(ad: &[f32], k: usize, m: usize, i0: usize, rows: usize) -> Vec<f32> {
    let mut pa = scratch::take(rows * k);
    pa.resize(rows * k, 0.0);
    for l in 0..k {
        let acol = &ad[l * m + i0..l * m + i0 + rows];
        for (i, &av) in acol.iter().enumerate() {
            pa[i * k + l] = av;
        }
    }
    pa
}

/// Tiled assigning kernel for `A·Bᵀ` (the PR 5 default generalised over
/// the B-row tile and the accumulator width `J`): `out[i][j] =
/// Σ_l arows[i][l] · b[j][l]`, `J` independent dot-product chains for
/// instruction-level parallelism. Every element of `out` is assigned.
pub(crate) fn abt_tiled<const J: usize>(
    arows: &[f32],
    rows: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out: &mut [f32],
    row_tile: usize,
) {
    debug_assert_eq!(arows.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    if rows == 0 || n == 0 {
        return;
    }
    let mut j0 = 0;
    loop {
        let tile_end = (j0 + row_tile).min(n);
        for i in 0..rows {
            let arow = &arows[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut j = j0;
            while j + J <= tile_end {
                let mut acc = [0.0f32; J];
                let base: [&[f32]; J] = std::array::from_fn(|t| &bd[(j + t) * k..(j + t + 1) * k]);
                for (l, &av) in arow.iter().enumerate() {
                    for t in 0..J {
                        acc[t] += av * base[t][l];
                    }
                }
                orow[j..j + J].copy_from_slice(&acc);
                j += J;
            }
            while j < tile_end {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                orow[j] = acc;
                j += 1;
            }
        }
        if tile_end == n {
            break;
        }
        j0 = tile_end;
    }
}

/// Dedicated GEMV for the `m = 1` `A·Bᵀ` shapes (streaming dense layers
/// at batch 1): one dot product per output element with no row-tile
/// bookkeeping — `A` is a single row, so there is nothing to tile for.
/// Same per-element chain as [`abt_tiled`], bitwise-equal to it.
pub(crate) fn abt_gemv<const J: usize>(
    arows: &[f32],
    rows: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(arows.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    for i in 0..rows {
        let arow = &arows[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + J <= n {
            let mut acc = [0.0f32; J];
            let base: [&[f32]; J] = std::array::from_fn(|t| &bd[(j + t) * k..(j + t + 1) * k]);
            for (l, &av) in arow.iter().enumerate() {
                for t in 0..J {
                    acc[t] += av * base[t][l];
                }
            }
            orow[j..j + J].copy_from_slice(&acc);
            j += J;
        }
        while j < n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            orow[j] = acc;
            j += 1;
        }
    }
}
