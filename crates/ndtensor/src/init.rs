//! Random weight initialisation.
//!
//! All fills take an explicit RNG so that every training run in the
//! workspace is reproducible from a single `u64` seed.

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

use crate::{Result, Tensor, TensorError};

/// Fills the tensor with samples from `U(lo, hi)`.
///
/// # Errors
///
/// Returns [`TensorError::Invalid`] when `lo >= hi` or either bound is not
/// finite.
pub fn fill_uniform(t: &mut Tensor, rng: &mut impl Rng, lo: f32, hi: f32) -> Result<()> {
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(TensorError::invalid(
            "fill_uniform",
            format!("invalid range [{lo}, {hi})"),
        ));
    }
    let dist = Uniform::new(lo, hi);
    for v in t.as_mut_slice() {
        *v = dist.sample(rng);
    }
    Ok(())
}

/// Fills the tensor with samples from `N(mean, std²)`.
///
/// # Errors
///
/// Returns [`TensorError::Invalid`] when `std` is negative or either
/// parameter is not finite.
pub fn fill_normal(t: &mut Tensor, rng: &mut impl Rng, mean: f32, std: f32) -> Result<()> {
    if !mean.is_finite() || !std.is_finite() || std < 0.0 {
        return Err(TensorError::invalid(
            "fill_normal",
            format!("invalid parameters mean={mean}, std={std}"),
        ));
    }
    let dist =
        Normal::new(mean, std).map_err(|e| TensorError::invalid("fill_normal", e.to_string()))?;
    for v in t.as_mut_slice() {
        *v = dist.sample(rng);
    }
    Ok(())
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Appropriate for sigmoid/tanh layers,
/// which is what the paper's autoencoder output uses.
///
/// # Errors
///
/// Returns [`TensorError::Invalid`] when either fan is zero.
pub fn fill_xavier_uniform(
    t: &mut Tensor,
    rng: &mut impl Rng,
    fan_in: usize,
    fan_out: usize,
) -> Result<()> {
    if fan_in == 0 || fan_out == 0 {
        return Err(TensorError::invalid(
            "fill_xavier_uniform",
            "fan_in and fan_out must be non-zero",
        ));
    }
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    fill_uniform(t, rng, -a, a)
}

/// He/Kaiming normal initialisation: `N(0, 2/fan_in)`. Appropriate for the
/// ReLU layers of the steering CNN and the autoencoder's hidden stack.
///
/// # Errors
///
/// Returns [`TensorError::Invalid`] when `fan_in` is zero.
pub fn fill_he_normal(t: &mut Tensor, rng: &mut impl Rng, fan_in: usize) -> Result<()> {
    if fan_in == 0 {
        return Err(TensorError::invalid(
            "fill_he_normal",
            "fan_in must be non-zero",
        ));
    }
    fill_normal(t, rng, 0.0, (2.0 / fan_in as f32).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut t = Tensor::zeros([1000]);
        let mut rng = StdRng::seed_from_u64(7);
        fill_uniform(&mut t, &mut rng, -0.5, 0.5).unwrap();
        assert!(t.min_value() >= -0.5 && t.max_value() < 0.5);
        // Not all equal — it actually sampled.
        assert!(t.variance() > 0.0);
    }

    #[test]
    fn uniform_rejects_bad_ranges() {
        let mut t = Tensor::zeros([4]);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(fill_uniform(&mut t, &mut rng, 1.0, 1.0).is_err());
        assert!(fill_uniform(&mut t, &mut rng, 2.0, 1.0).is_err());
        assert!(fill_uniform(&mut t, &mut rng, f32::NAN, 1.0).is_err());
    }

    #[test]
    fn normal_has_expected_moments() {
        let mut t = Tensor::zeros([20_000]);
        let mut rng = StdRng::seed_from_u64(11);
        fill_normal(&mut t, &mut rng, 1.0, 2.0).unwrap();
        assert!((t.mean() - 1.0).abs() < 0.1);
        assert!((t.variance().sqrt() - 2.0).abs() < 0.1);
        assert!(fill_normal(&mut t, &mut rng, 0.0, -1.0).is_err());
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut small = Tensor::zeros([5000]);
        fill_xavier_uniform(&mut small, &mut rng, 10, 10).unwrap();
        let bound_small = (6.0f32 / 20.0).sqrt();
        assert!(small.max_value() <= bound_small && small.min_value() >= -bound_small);

        let mut large = Tensor::zeros([5000]);
        fill_xavier_uniform(&mut large, &mut rng, 1000, 1000).unwrap();
        assert!(large.max_value() < bound_small / 2.0);
        assert!(fill_xavier_uniform(&mut large, &mut rng, 0, 5).is_err());
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Tensor::zeros([20_000]);
        fill_he_normal(&mut t, &mut rng, 50).unwrap();
        let expect_std = (2.0f32 / 50.0).sqrt();
        assert!((t.variance().sqrt() - expect_std).abs() < 0.1 * expect_std);
        assert!(fill_he_normal(&mut t, &mut rng, 0).is_err());
    }

    #[test]
    fn same_seed_is_deterministic() {
        let mut a = Tensor::zeros([64]);
        let mut b = Tensor::zeros([64]);
        fill_normal(&mut a, &mut StdRng::seed_from_u64(99), 0.0, 1.0).unwrap();
        fill_normal(&mut b, &mut StdRng::seed_from_u64(99), 0.0, 1.0).unwrap();
        assert_eq!(a, b);
    }
}
