use std::fmt;

use crate::Shape;

/// Error type for all fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of provided elements does not match the shape's volume.
    LengthMismatch {
        /// Volume implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operand shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Short name of the operation that failed (e.g. `"zip_map"`).
        op: &'static str,
        /// Left operand shape.
        lhs: Shape,
        /// Right operand shape.
        rhs: Shape,
    },
    /// The tensor rank is not what the operation requires.
    RankMismatch {
        /// Short name of the operation that failed.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Rank of the offending tensor.
        actual: usize,
    },
    /// A multi-dimensional index is out of bounds or of the wrong rank.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape indexed into.
        shape: Shape,
    },
    /// An operation-specific invariant was violated.
    Invalid {
        /// Short name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl TensorError {
    /// Builds an [`TensorError::Invalid`] with the given operation and reason.
    pub fn invalid(op: &'static str, reason: impl Into<String>) -> Self {
        TensorError::Invalid {
            op,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "element count {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs} and {rhs}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected rank {expected}, got rank {actual}"),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape}")
            }
            TensorError::Invalid { op, reason } => write!(f, "{op}: {reason}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(err.to_string().contains('6'));
        assert!(err.to_string().contains('5'));

        let err = TensorError::ShapeMismatch {
            op: "add",
            lhs: Shape::new([2, 3]),
            rhs: Shape::new([3, 2]),
        };
        let s = err.to_string();
        assert!(s.contains("add"), "{s}");
        assert!(s.contains("[2, 3]"), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn invalid_constructor_stores_reason() {
        let err = TensorError::invalid("conv2d", "kernel larger than input");
        assert!(err.to_string().contains("kernel larger than input"));
    }
}
