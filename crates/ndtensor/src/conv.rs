//! 2-D convolution (NCHW) via im2col, with full backward pass.
//!
//! The forward pass lowers each sample to a column matrix and multiplies it
//! against the flattened kernel bank. The flattened view is the weight
//! tensor's own contiguous storage — `[F, C, KH, KW]` row-major *is*
//! `[F, C·KH·KW]` — so the kernel bank is "packed" exactly once per layer
//! and reused across every sample of every batch with no reshape copy.
//! Both passes parallelise over the batch dimension through [`crate::par`]:
//! each worker owns a disjoint sample range (the inner GEMMs then stay on
//! that worker), and the weight/bias gradient reduction is performed by the
//! caller in sample order, so results are bit-identical for any thread
//! count.
//!
//! Hot-path buffers (column matrices, per-sample gradients) come from
//! [`crate::scratch`], and [`conv2d_into`] / [`conv2d_backward_into`] /
//! [`im2col_into`] / [`col2im_into`] let callers recycle output storage,
//! so a warmed pipeline performs no per-frame heap allocation.

use crate::par::{try_for_each_block, try_parallel_map};
use crate::routines::{self, GemmOp};
use crate::{scratch, Result, Tensor, TensorError};

/// Stride and zero-padding configuration for a 2-D convolution.
///
/// # Example
///
/// ```
/// use ndtensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new((2, 2), (1, 1));
/// // 60×160 input, 5×5 kernel, stride 2, pad 1 → 29×79 output.
/// assert_eq!(spec.output_hw(60, 160, 5, 5).unwrap(), (29, 79));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Vertical and horizontal stride (must both be non-zero).
    pub stride: (usize, usize),
    /// Vertical and horizontal zero padding applied to both sides.
    pub padding: (usize, usize),
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec {
            stride: (1, 1),
            padding: (0, 0),
        }
    }
}

impl Conv2dSpec {
    /// Creates a spec from `(stride_h, stride_w)` and `(pad_h, pad_w)`.
    pub fn new(stride: (usize, usize), padding: (usize, usize)) -> Self {
        Conv2dSpec { stride, padding }
    }

    /// Unit-stride, zero-padding spec.
    pub fn unit() -> Self {
        Self::default()
    }

    /// Output height/width for an input of `in_h × in_w` and a kernel of
    /// `kh × kw`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Invalid`] when the stride is zero or the
    /// padded input is smaller than the kernel.
    pub fn output_hw(
        &self,
        in_h: usize,
        in_w: usize,
        kh: usize,
        kw: usize,
    ) -> Result<(usize, usize)> {
        let (sh, sw) = self.stride;
        if sh == 0 || sw == 0 {
            return Err(TensorError::invalid("conv2d", "stride must be non-zero"));
        }
        if kh == 0 || kw == 0 {
            return Err(TensorError::invalid("conv2d", "kernel must be non-empty"));
        }
        let (ph, pw) = self.padding;
        let eff_h = in_h + 2 * ph;
        let eff_w = in_w + 2 * pw;
        if eff_h < kh || eff_w < kw {
            return Err(TensorError::invalid(
                "conv2d",
                format!("padded input {eff_h}x{eff_w} smaller than kernel {kh}x{kw}"),
            ));
        }
        Ok(((eff_h - kh) / sh + 1, (eff_w - kw) / sw + 1))
    }
}

fn im2col_geometry(
    sample_len: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) -> Result<(usize, usize)> {
    if sample_len != c * h * w {
        return Err(TensorError::LengthMismatch {
            expected: c * h * w,
            actual: sample_len,
        });
    }
    spec.output_hw(h, w, kh, kw)
}

/// Writes the column matrix for one sample. Assigns every element of
/// `out` (padding taps become zeros), so the buffer needs no pre-zeroing.
/// Geometry must be validated by the caller.
#[allow(clippy::too_many_arguments)]
fn im2col_core(
    sample: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let cols = oh * ow;
    debug_assert_eq!(out.len(), c * kh * kw * cols);
    for ci in 0..c {
        let plane = &sample[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ci * kh + ky) * kw + kx;
                let orow = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * sh + ky) as isize - ph as isize;
                    let seg = &mut orow[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        seg.fill(0.0);
                        continue;
                    }
                    let prow = &plane[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, o) in seg.iter_mut().enumerate() {
                        let ix = (ox * sw + kx) as isize - pw as isize;
                        *o = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            prow[ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Accumulates a column matrix back into a sample buffer. `out` must be
/// zeroed (or hold a value to accumulate onto); geometry must be
/// validated by the caller.
#[allow(clippy::too_many_arguments)]
fn col2im_core(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let ncols = oh * ow;
    debug_assert_eq!(out.len(), c * h * w);
    for ci in 0..c {
        let plane = &mut out[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ci * kh + ky) * kw + kx;
                let crow = &data[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * sh + ky) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * sw + kx) as isize - pw as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        plane[iy as usize * w + ix as usize] += crow[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Lowers one `C×H×W` sample to a `[C·KH·KW, OH·OW]` column matrix.
///
/// Out-of-bounds taps (from padding) contribute zeros. This is the exact
/// adjoint of [`col2im`].
///
/// # Errors
///
/// Propagates the shape errors of [`Conv2dSpec::output_hw`]; additionally
/// fails when `sample.len() != c*h*w`.
pub fn im2col(
    sample: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (oh, ow) = im2col_geometry(sample.len(), c, h, w, kh, kw, spec)?;
    let mut out = Tensor::zeros([c * kh * kw, oh * ow]);
    im2col_core(sample, c, h, w, kh, kw, spec, oh, ow, out.as_mut_slice());
    Ok(out)
}

/// Like [`im2col`], but writes into `out` (length `c·kh·kw·oh·ow`),
/// recycling its storage.
///
/// # Errors
///
/// Like [`im2col`], plus [`TensorError::LengthMismatch`] when `out` has
/// the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn im2col_into(
    sample: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    out: &mut [f32],
) -> Result<()> {
    let (oh, ow) = im2col_geometry(sample.len(), c, h, w, kh, kw, spec)?;
    let expected = c * kh * kw * oh * ow;
    if out.len() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: out.len(),
        });
    }
    im2col_core(sample, c, h, w, kh, kw, spec, oh, ow, out);
    Ok(())
}

fn col2im_geometry(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) -> Result<(usize, usize)> {
    let (oh, ow) = spec.output_hw(h, w, kh, kw)?;
    let rows = c * kh * kw;
    let ncols = oh * ow;
    if cols.shape().dims() != [rows, ncols] {
        return Err(TensorError::invalid(
            "col2im",
            format!(
                "column matrix shape {} does not match expected [{rows}, {ncols}]",
                cols.shape()
            ),
        ));
    }
    Ok((oh, ow))
}

/// Accumulates a `[C·KH·KW, OH·OW]` column matrix back into a `C×H×W`
/// sample buffer (the adjoint of [`im2col`]).
///
/// # Errors
///
/// Fails when the column matrix does not match the implied geometry.
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) -> Result<Vec<f32>> {
    let (oh, ow) = col2im_geometry(cols, c, h, w, kh, kw, spec)?;
    let mut out = scratch::take(c * h * w);
    out.resize(c * h * w, 0.0);
    col2im_core(cols.as_slice(), c, h, w, kh, kw, spec, oh, ow, &mut out);
    Ok(out)
}

/// Like [`col2im`], but accumulates into `out` (length `c·h·w`), which
/// must be zeroed first unless accumulation onto existing values is
/// intended.
///
/// # Errors
///
/// Like [`col2im`], plus [`TensorError::LengthMismatch`] when `out` has
/// the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn col2im_into(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    out: &mut [f32],
) -> Result<()> {
    let (oh, ow) = col2im_geometry(cols, c, h, w, kh, kw, spec)?;
    if out.len() != c * h * w {
        return Err(TensorError::LengthMismatch {
            expected: c * h * w,
            actual: out.len(),
        });
    }
    col2im_core(cols.as_slice(), c, h, w, kh, kw, spec, oh, ow, out);
    Ok(())
}

/// Resolved geometry of one convolution: batch, channels, spatial sizes.
struct ConvGeometry {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    f: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
}

fn conv_geometry(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<ConvGeometry> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: input.rank(),
        });
    }
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: weight.rank(),
        });
    }
    let [n, c, h, w] = [
        input.shape().dims()[0],
        input.shape().dims()[1],
        input.shape().dims()[2],
        input.shape().dims()[3],
    ];
    let [f, wc, kh, kw] = [
        weight.shape().dims()[0],
        weight.shape().dims()[1],
        weight.shape().dims()[2],
        weight.shape().dims()[3],
    ];
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: input.shape().clone(),
            rhs: weight.shape().clone(),
        });
    }
    let (oh, ow) = spec.output_hw(h, w, kh, kw)?;
    Ok(ConvGeometry {
        n,
        c,
        h,
        w,
        f,
        kh,
        kw,
        oh,
        ow,
    })
}

fn check_bias(bias: Option<&Tensor>, f: usize, weight: &Tensor) -> Result<()> {
    if let Some(b) = bias {
        if b.shape().dims() != [f] {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                lhs: b.shape().clone(),
                rhs: weight.shape().clone(),
            });
        }
    }
    Ok(())
}

/// Forward pass over a pre-validated geometry, writing into a zeroed
/// `out` of length `n·f·oh·ow`.
fn conv2d_impl(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    g: &ConvGeometry,
    out: &mut [f32],
) -> Result<()> {
    let &ConvGeometry {
        n,
        c,
        h,
        w,
        f,
        kh,
        kw,
        oh,
        ow,
    } = g;
    // `[F, C, KH, KW]` row-major storage is already the `[F, C·KH·KW]`
    // GEMM operand: the kernel bank is packed once per layer, for free.
    let wd = weight.as_slice();
    let sample_len = c * h * w;
    let out_len = f * oh * ow;
    let kdim = c * kh * kw;
    let ncols = oh * ow;
    let work = n * out_len * kdim;
    // Every sample runs the same `W · cols` GEMM shape; select the
    // routine once before fanning out so workers never touch the
    // selector.
    let mm_kernel = routines::select(GemmOp::MatMul, f, kdim, ncols).kernel;
    try_for_each_block(out, out_len, work, |n0, chunk| {
        // One column buffer per worker chunk, reused across its samples.
        let mut cols = scratch::take(kdim * ncols);
        cols.resize(kdim * ncols, 0.0);
        for (local, dst) in chunk.chunks_mut(out_len).enumerate() {
            let ni = n0 + local;
            im2col_core(
                &input.as_slice()[ni * sample_len..(ni + 1) * sample_len],
                c,
                h,
                w,
                kh,
                kw,
                spec,
                oh,
                ow,
                &mut cols,
            );
            mm_kernel(wd, f, kdim, &cols, ncols, dst);
            if let Some(b) = bias {
                for (fi, &bv) in b.as_slice().iter().enumerate() {
                    for v in &mut dst[fi * ncols..(fi + 1) * ncols] {
                        *v += bv;
                    }
                }
            }
        }
        scratch::give(cols);
        Ok(())
    })
}

/// 2-D convolution forward pass.
///
/// * `input`: `[N, C, H, W]`
/// * `weight`: `[F, C, KH, KW]`
/// * `bias`: optional `[F]`
///
/// Returns `[N, F, OH, OW]`.
///
/// # Errors
///
/// Fails on rank/shape mismatches or when the padded input is smaller than
/// the kernel.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let g = conv_geometry(input, weight, spec)?;
    check_bias(bias, g.f, weight)?;
    let mut out = Tensor::zeros([g.n, g.f, g.oh, g.ow]);
    conv2d_impl(input, weight, bias, spec, &g, out.as_mut_slice())?;
    Ok(out)
}

/// Like [`conv2d`], but writes into `out` (length `n·f·oh·ow`), recycling
/// its storage.
///
/// # Errors
///
/// Like [`conv2d`], plus [`TensorError::LengthMismatch`] when `out` has
/// the wrong length.
pub fn conv2d_into(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    out: &mut [f32],
) -> Result<()> {
    let g = conv_geometry(input, weight, spec)?;
    check_bias(bias, g.f, weight)?;
    let expected = g.n * g.f * g.oh * g.ow;
    if out.len() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: out.len(),
        });
    }
    out.fill(0.0);
    conv2d_impl(input, weight, bias, spec, &g, out)
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weights, `[F, C, KH, KW]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[F]`.
    pub grad_bias: Tensor,
}

/// Backward pass over a pre-validated geometry, accumulating into zeroed
/// gradient slices.
#[allow(clippy::too_many_arguments)]
fn conv2d_backward_impl(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: Conv2dSpec,
    g: &ConvGeometry,
    grad_input: &mut [f32],
    grad_weight: &mut [f32],
    grad_bias: &mut [f32],
) -> Result<()> {
    let &ConvGeometry {
        n,
        c,
        h,
        w,
        f,
        kh,
        kw,
        oh,
        ow,
    } = g;
    let wd = weight.as_slice();
    let god = grad_output.as_slice();
    let sample_len = c * h * w;
    let out_len = f * oh * ow;
    let kdim = c * kh * kw;
    let ncols = oh * ow;

    // Per-sample contributions are computed in parallel; the dW/dB
    // reduction below then accumulates them in sample order, which is the
    // exact floating-point summation sequence of the serial pass. All
    // per-sample buffers are pooled: the column matrix built here has the
    // exact forward-pass shape, so a training step reuses one buffer for
    // both directions instead of allocating twice.
    let work = 2 * n * out_len * kdim;
    // Both backward GEMM shapes repeat per sample; select each routine
    // once on the caller thread and hand workers plain kernel fns. The
    // dCols GEMM is `Wᵀ · gOut` with the full Aᵀ column range, so its
    // packed rows are the whole `kdim × f` transpose.
    let dw_kernel = routines::select(GemmOp::MatMulABt, f, ncols, kdim).kernel;
    let dcols_kernel = routines::select(GemmOp::MatMulAtB, kdim, f, ncols).kernel;
    let wt = routines::pack_at(wd, f, kdim, 0, kdim);
    let per_sample = try_parallel_map(n, work, |ni| -> Result<(Vec<f32>, Vec<f32>, Vec<f32>)> {
        let mut cols = scratch::take(kdim * ncols);
        cols.resize(kdim * ncols, 0.0);
        im2col_core(
            &input.as_slice()[ni * sample_len..(ni + 1) * sample_len],
            c,
            h,
            w,
            kh,
            kw,
            spec,
            oh,
            ow,
            &mut cols,
        );
        let gout = &god[ni * out_len..(ni + 1) * out_len];
        // dW contribution: gOut · colsᵀ.
        let mut dw = scratch::take(f * kdim);
        dw.resize(f * kdim, 0.0);
        dw_kernel(gout, f, ncols, &cols, kdim, &mut dw);
        // dCols = Wᵀ · gOut, then scatter back to the input.
        let mut dcols = scratch::take(kdim * ncols);
        dcols.resize(kdim * ncols, 0.0);
        dcols_kernel(&wt, kdim, f, gout, ncols, &mut dcols);
        let mut dsample = scratch::take(sample_len);
        dsample.resize(sample_len, 0.0);
        col2im_core(&dcols, c, h, w, kh, kw, spec, oh, ow, &mut dsample);
        scratch::give(dcols);
        scratch::give(cols);
        // dB contribution: row sums of gOut.
        let mut db = scratch::take(f);
        for fi in 0..f {
            db.push(gout[fi * ncols..(fi + 1) * ncols].iter().sum());
        }
        Ok((dw, dsample, db))
    });
    scratch::give(wt);
    for (ni, (dw, dsample, db)) in per_sample?.into_iter().enumerate() {
        for (gw, &d) in grad_weight.iter_mut().zip(&dw) {
            *gw += d;
        }
        grad_input[ni * sample_len..(ni + 1) * sample_len].copy_from_slice(&dsample);
        for (gb, &d) in grad_bias.iter_mut().zip(&db) {
            *gb += d;
        }
        scratch::give(dw);
        scratch::give(dsample);
        scratch::give(db);
    }
    Ok(())
}

fn check_backward_shapes(grad_output: &Tensor, g: &ConvGeometry) -> Result<()> {
    if grad_output.shape().dims() != [g.n, g.f, g.oh, g.ow] {
        return Err(TensorError::invalid(
            "conv2d_backward",
            format!(
                "grad_output shape {} does not match expected [{}, {}, {}, {}]",
                grad_output.shape(),
                g.n,
                g.f,
                g.oh,
                g.ow
            ),
        ));
    }
    Ok(())
}

/// 2-D convolution backward pass.
///
/// `grad_output` must have the forward output shape `[N, F, OH, OW]`.
///
/// # Errors
///
/// Fails on rank/shape mismatches between the stored forward geometry and
/// `grad_output`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: Conv2dSpec,
) -> Result<Conv2dGrads> {
    let g = conv_geometry(input, weight, spec)?;
    check_backward_shapes(grad_output, &g)?;
    let mut grad_input = Tensor::zeros([g.n, g.c, g.h, g.w]);
    let mut grad_weight = Tensor::zeros([g.f, g.c, g.kh, g.kw]);
    let mut grad_bias = Tensor::zeros([g.f]);
    conv2d_backward_impl(
        input,
        weight,
        grad_output,
        spec,
        &g,
        grad_input.as_mut_slice(),
        grad_weight.as_mut_slice(),
        grad_bias.as_mut_slice(),
    )?;
    Ok(Conv2dGrads {
        grad_input,
        grad_weight,
        grad_bias,
    })
}

/// Like [`conv2d_backward`], but overwrites the tensors of an existing
/// [`Conv2dGrads`] (which must already have the right shapes), recycling
/// their storage.
///
/// # Errors
///
/// Like [`conv2d_backward`], plus [`TensorError::Invalid`] when `grads`
/// has mismatched shapes.
pub fn conv2d_backward_into(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: Conv2dSpec,
    grads: &mut Conv2dGrads,
) -> Result<()> {
    let g = conv_geometry(input, weight, spec)?;
    check_backward_shapes(grad_output, &g)?;
    if grads.grad_input.shape().dims() != [g.n, g.c, g.h, g.w]
        || grads.grad_weight.shape().dims() != [g.f, g.c, g.kh, g.kw]
        || grads.grad_bias.shape().dims() != [g.f]
    {
        return Err(TensorError::invalid(
            "conv2d_backward_into",
            "gradient buffers do not match the convolution geometry",
        ));
    }
    grads.grad_input.as_mut_slice().fill(0.0);
    grads.grad_weight.as_mut_slice().fill(0.0);
    grads.grad_bias.as_mut_slice().fill(0.0);
    conv2d_backward_impl(
        input,
        weight,
        grad_output,
        spec,
        &g,
        grads.grad_input.as_mut_slice(),
        grads.grad_weight.as_mut_slice(),
        grads.grad_bias.as_mut_slice(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Direct (definition-level) convolution used as the test oracle.
    fn naive_conv(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: Conv2dSpec,
    ) -> Tensor {
        let [n, c, h, w] = [
            input.shape().dims()[0],
            input.shape().dims()[1],
            input.shape().dims()[2],
            input.shape().dims()[3],
        ];
        let [f, _, kh, kw] = [
            weight.shape().dims()[0],
            weight.shape().dims()[1],
            weight.shape().dims()[2],
            weight.shape().dims()[3],
        ];
        let (oh, ow) = spec.output_hw(h, w, kh, kw).unwrap();
        let (sh, sw) = spec.stride;
        let (ph, pw) = spec.padding;
        Tensor::from_fn([n, f, oh, ow], |idx| {
            let (ni, fi, oy, ox) = (idx[0], idx[1], idx[2], idx[3]);
            let mut acc = bias.map(|b| b.at(&[fi]).unwrap()).unwrap_or(0.0);
            for ci in 0..c {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let iy = (oy * sh + ky) as isize - ph as isize;
                        let ix = (ox * sw + kx) as isize - pw as isize;
                        if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                            continue;
                        }
                        acc += input.at(&[ni, ci, iy as usize, ix as usize]).unwrap()
                            * weight.at(&[fi, ci, ky, kx]).unwrap();
                    }
                }
            }
            acc
        })
    }

    fn pseudo(shape: impl Into<crate::Shape>, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Tensor::from_fn(shape.into(), |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn output_geometry() {
        let spec = Conv2dSpec::new((2, 2), (0, 0));
        assert_eq!(spec.output_hw(60, 160, 5, 5).unwrap(), (28, 78));
        assert_eq!(Conv2dSpec::unit().output_hw(5, 5, 3, 3).unwrap(), (3, 3));
        assert!(Conv2dSpec::new((0, 1), (0, 0))
            .output_hw(5, 5, 3, 3)
            .is_err());
        assert!(Conv2dSpec::unit().output_hw(2, 2, 3, 3).is_err());
        // Padding rescues a too-small input.
        assert_eq!(
            Conv2dSpec::new((1, 1), (1, 1))
                .output_hw(2, 2, 3, 3)
                .unwrap(),
            (2, 2)
        );
    }

    #[test]
    fn conv_matches_naive_reference() {
        for &(spec, c, f) in &[
            (Conv2dSpec::unit(), 1usize, 1usize),
            (Conv2dSpec::new((2, 2), (0, 0)), 2, 3),
            (Conv2dSpec::new((1, 2), (1, 1)), 3, 2),
            (Conv2dSpec::new((2, 1), (2, 0)), 1, 4),
        ] {
            let input = pseudo([2, c, 9, 11], 5);
            let weight = pseudo([f, c, 3, 3], 6);
            let bias = pseudo([f], 7);
            let fast = conv2d(&input, &weight, Some(&bias), spec).unwrap();
            let slow = naive_conv(&input, &weight, Some(&bias), spec);
            assert_close(&fast, &slow, 1e-4);
        }
    }

    #[test]
    fn conv_without_bias() {
        let input = pseudo([1, 2, 6, 6], 1);
        let weight = pseudo([3, 2, 3, 3], 2);
        let spec = Conv2dSpec::unit();
        assert_close(
            &conv2d(&input, &weight, None, spec).unwrap(),
            &naive_conv(&input, &weight, None, spec),
            1e-4,
        );
    }

    #[test]
    fn conv_into_is_bit_identical_to_wrapper() {
        let input = pseudo([2, 2, 7, 9], 3);
        let weight = pseudo([4, 2, 3, 3], 4);
        let bias = pseudo([4], 5);
        let spec = Conv2dSpec::new((2, 1), (1, 0));
        let reference = conv2d(&input, &weight, Some(&bias), spec).unwrap();
        let mut out = vec![9.0f32; reference.len()];
        conv2d_into(&input, &weight, Some(&bias), spec, &mut out).unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
        let mut short = vec![0.0f32; 3];
        assert!(conv2d_into(&input, &weight, Some(&bias), spec, &mut short).is_err());
    }

    #[test]
    fn im2col_and_col2im_into_match_allocating_forms() {
        let (c, h, w, kh, kw) = (2, 6, 7, 3, 2);
        let spec = Conv2dSpec::new((2, 1), (1, 1));
        let x = pseudo([c * h * w], 17).into_vec();
        let cols = im2col(&x, c, h, w, kh, kw, spec).unwrap();
        let mut cols2 = vec![5.0f32; cols.len()];
        im2col_into(&x, c, h, w, kh, kw, spec, &mut cols2).unwrap();
        assert_eq!(cols2.as_slice(), cols.as_slice());

        let back = col2im(&cols, c, h, w, kh, kw, spec).unwrap();
        let mut back2 = vec![0.0f32; c * h * w];
        col2im_into(&cols, c, h, w, kh, kw, spec, &mut back2).unwrap();
        assert_eq!(back2, back);

        let mut short = vec![0.0f32; 3];
        assert!(im2col_into(&x, c, h, w, kh, kw, spec, &mut short).is_err());
        assert!(col2im_into(&cols, c, h, w, kh, kw, spec, &mut short).is_err());
    }

    #[test]
    fn backward_into_is_bit_identical_to_wrapper() {
        let spec = Conv2dSpec::new((2, 2), (1, 1));
        let input = pseudo([2, 2, 5, 6], 51);
        let weight = pseudo([3, 2, 3, 3], 52);
        let out = conv2d(&input, &weight, None, spec).unwrap();
        let gout = pseudo(out.shape().dims().to_vec(), 53);
        let reference = conv2d_backward(&input, &weight, &gout, spec).unwrap();
        let mut grads = Conv2dGrads {
            grad_input: Tensor::full(input.shape().clone(), 3.0),
            grad_weight: Tensor::full(weight.shape().clone(), 3.0),
            grad_bias: Tensor::full([3], 3.0),
        };
        conv2d_backward_into(&input, &weight, &gout, spec, &mut grads).unwrap();
        assert_eq!(grads.grad_input, reference.grad_input);
        assert_eq!(grads.grad_weight, reference.grad_weight);
        assert_eq!(grads.grad_bias, reference.grad_bias);

        grads.grad_bias = Tensor::zeros([7]);
        assert!(conv2d_backward_into(&input, &weight, &gout, spec, &mut grads).is_err());
    }

    #[test]
    fn conv_rejects_bad_shapes() {
        let input = pseudo([1, 2, 6, 6], 1);
        let weight = pseudo([3, 99, 3, 3], 2);
        assert!(conv2d(&input, &weight, None, Conv2dSpec::unit()).is_err());
        let weight_ok = pseudo([3, 2, 3, 3], 2);
        let bad_bias = pseudo([4], 3);
        assert!(conv2d(&input, &weight_ok, Some(&bad_bias), Conv2dSpec::unit()).is_err());
        assert!(conv2d(
            &Tensor::zeros([2, 6, 6]),
            &weight_ok,
            None,
            Conv2dSpec::unit()
        )
        .is_err());
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> must equal <x, col2im(y)> — the defining property
        // that makes the backward pass correct.
        let (c, h, w, kh, kw) = (2, 6, 7, 3, 2);
        let spec = Conv2dSpec::new((2, 1), (1, 1));
        let x = pseudo([c * h * w], 31).into_vec();
        let cols_shape_probe = im2col(&x, c, h, w, kh, kw, spec).unwrap();
        let y = pseudo(cols_shape_probe.shape().dims().to_vec(), 32);
        let cx = im2col(&x, c, h, w, kh, kw, spec).unwrap();
        let lhs = cx.dot(&y).unwrap();
        let back = col2im(&y, c, h, w, kh, kw, spec).unwrap();
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let spec = Conv2dSpec::new((2, 2), (1, 1));
        let input = pseudo([1, 2, 5, 6], 41);
        let weight = pseudo([2, 2, 3, 3], 42);
        let bias = pseudo([2], 43);

        // Loss = sum(conv output); gradient of loss wrt output is all-ones.
        let out = conv2d(&input, &weight, Some(&bias), spec).unwrap();
        let gout = Tensor::ones(out.shape().clone());
        let grads = conv2d_backward(&input, &weight, &gout, spec).unwrap();

        let eps = 1e-2f32;
        let loss =
            |inp: &Tensor, wt: &Tensor, b: &Tensor| conv2d(inp, wt, Some(b), spec).unwrap().sum();

        for probe in [0usize, 7, 23, input.len() - 1] {
            let mut plus = input.clone();
            plus.as_mut_slice()[probe] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[probe] -= eps;
            let numeric =
                (loss(&plus, &weight, &bias) - loss(&minus, &weight, &bias)) / (2.0 * eps);
            let analytic = grads.grad_input.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "input grad at {probe}: {numeric} vs {analytic}"
            );
        }
        for probe in [0usize, 5, weight.len() - 1] {
            let mut plus = weight.clone();
            plus.as_mut_slice()[probe] += eps;
            let mut minus = weight.clone();
            minus.as_mut_slice()[probe] -= eps;
            let numeric = (loss(&input, &plus, &bias) - loss(&input, &minus, &bias)) / (2.0 * eps);
            let analytic = grads.grad_weight.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "weight grad at {probe}: {numeric} vs {analytic}"
            );
        }
        for probe in 0..2 {
            let mut plus = bias.clone();
            plus.as_mut_slice()[probe] += eps;
            let mut minus = bias.clone();
            minus.as_mut_slice()[probe] -= eps;
            let numeric =
                (loss(&input, &weight, &plus) - loss(&input, &weight, &minus)) / (2.0 * eps);
            let analytic = grads.grad_bias.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "bias grad at {probe}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn backward_rejects_wrong_grad_shape() {
        let input = pseudo([1, 1, 5, 5], 1);
        let weight = pseudo([1, 1, 3, 3], 2);
        let bad = Tensor::zeros([1, 1, 9, 9]);
        assert!(conv2d_backward(&input, &weight, &bad, Conv2dSpec::unit()).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn conv_linearity_in_input(
            h in 4usize..8, w in 4usize..8, seed in 0u64..500
        ) {
            let spec = Conv2dSpec::unit();
            let a = pseudo([1, 1, h, w], seed);
            let b = pseudo([1, 1, h, w], seed + 1);
            let k = pseudo([1, 1, 3, 3], seed + 2);
            let lhs = conv2d(&(&a + &b), &k, None, spec).unwrap();
            let rhs = &conv2d(&a, &k, None, spec).unwrap() + &conv2d(&b, &k, None, spec).unwrap();
            assert_close(&lhs, &rhs, 1e-4);
        }

        #[test]
        fn im2col_roundtrip_counts_taps(
            h in 3usize..7, w in 3usize..7
        ) {
            // col2im(im2col(ones)) counts, per input pixel, how many output
            // windows cover it — every entry must be ≥ 1 for unit stride,
            // zero padding, and kernel ≤ input.
            let spec = Conv2dSpec::unit();
            let x = vec![1.0f32; h * w];
            let cols = im2col(&x, 1, h, w, 2, 2, spec).unwrap();
            let back = col2im(&cols, 1, h, w, 2, 2, spec).unwrap();
            for v in back {
                prop_assert!(v >= 1.0);
            }
        }

        #[test]
        fn im2col_col2im_adjoint_under_varying_geometry(
            (c, h, w) in (1usize..3, 4usize..9, 4usize..9),
            (kh, kw, sh, sw) in (1usize..4, 1usize..4, 1usize..3, 1usize..3),
            (ph, pw) in (0usize..2, 0usize..2),
            seed in 0u64..500
        ) {
            // <im2col(x), y> == <x, col2im(y)> for arbitrary strides and
            // padding, not just the fixed geometry of the unit test above.
            prop_assume!(h + 2 * ph >= kh && w + 2 * pw >= kw);
            let spec = Conv2dSpec::new((sh, sw), (ph, pw));
            let x = pseudo([c * h * w], seed).into_vec();
            let cx = im2col(&x, c, h, w, kh, kw, spec).unwrap();
            let y = pseudo(cx.shape().dims().to_vec(), seed + 1);
            let lhs = cx.dot(&y).unwrap();
            let back = col2im(&y, c, h, w, kh, kw, spec).unwrap();
            let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
            prop_assert!(
                (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
                "adjoint mismatch: {lhs} vs {rhs}"
            );
        }

        #[test]
        fn im2col_roundtrip_tap_counts_under_stride_and_padding(
            (h, w) in (3usize..8, 3usize..8),
            (kh, kw, sh, sw) in (1usize..4, 1usize..4, 1usize..3, 1usize..3),
            (ph, pw) in (0usize..2, 0usize..2)
        ) {
            // On an all-ones input, col2im(im2col(·)) yields per-pixel
            // window-coverage counts: integers bounded by the densest
            // possible overlap ⌈kh/sh⌉·⌈kw/sw⌉.
            prop_assume!(h + 2 * ph >= kh && w + 2 * pw >= kw);
            let spec = Conv2dSpec::new((sh, sw), (ph, pw));
            let x = vec![1.0f32; h * w];
            let cols = im2col(&x, 1, h, w, kh, kw, spec).unwrap();
            let back = col2im(&cols, 1, h, w, kh, kw, spec).unwrap();
            let max_cover = (kh.div_ceil(sh) * kw.div_ceil(sw)) as f32;
            for v in back {
                prop_assert!(v >= 0.0 && v <= max_cover && v.fract() == 0.0,
                    "coverage count {v} outside [0, {max_cover}]");
            }
        }
    }
}
