//! Blocked, multi-threaded matrix multiplication kernels.
//!
//! Three entry points cover the access patterns needed by dense-layer and
//! convolution backpropagation without materialising transposed copies:
//!
//! * [`matmul`] — `C = A·B`
//! * [`matmul_at_b`] — `C = Aᵀ·B`
//! * [`matmul_a_bt`] — `C = A·Bᵀ`
//!
//! All kernels parallelise over output rows through [`crate::par`] once the
//! arithmetic volume crosses [`crate::par::PARALLEL_THRESHOLD`], so small
//! problems stay on one thread and avoid spawn overhead. Row partitioning
//! never changes the per-element summation order, so results are
//! bit-identical for any thread count.

use crate::par::for_each_block;
use crate::{Result, Tensor, TensorError};

fn dims2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.shape().dims()[0], t.shape().dims()[1]))
}

/// Computes `C = A·B` for `A: [m, k]` and `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ndtensor::{matmul, Tensor};
/// # fn main() -> Result<(), ndtensor::TensorError> {
/// let id = Tensor::from_vec([2, 2], vec![1., 0., 0., 1.])?;
/// let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.])?;
/// assert_eq!(matmul(&id, &a)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a, "matmul")?;
    let (kb, n) = dims2(b, "matmul")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.as_slice(), b.as_slice());
    for_each_block(&mut out, n, m * n * k, |row0, chunk| {
        for (local_i, orow) in chunk.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            let arow = &ad[i * k..(i + 1) * k];
            for (l, &av) in arow.iter().enumerate() {
                // sncheck:allow(no-float-eq): exact-zero sparsity skip,
                // not a tolerance check.
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[l * n..(l + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    });
    Tensor::from_vec([m, n], out)
}

/// Computes `C = Aᵀ·B` for `A: [k, m]` and `B: [k, n]` without transposing.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::ShapeMismatch`] when the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = dims2(a, "matmul_at_b")?;
    let (kb, n) = dims2(b, "matmul_at_b")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.as_slice(), b.as_slice());
    for_each_block(&mut out, n, m * n * k, |row0, chunk| {
        for (local_i, orow) in chunk.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            for l in 0..k {
                let av = ad[l * m + i];
                // sncheck:allow(no-float-eq): exact-zero sparsity skip,
                // not a tolerance check.
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[l * n..(l + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    });
    Tensor::from_vec([m, n], out)
}

/// Computes `C = A·Bᵀ` for `A: [m, k]` and `B: [n, k]` without transposing.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::ShapeMismatch`] when the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a, "matmul_a_bt")?;
    let (n, kb) = dims2(b, "matmul_a_bt")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.as_slice(), b.as_slice());
    for_each_block(&mut out, n, m * n * k, |row0, chunk| {
        for (local_i, orow) in chunk.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            let arow = &ad[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
    });
    Tensor::from_vec([m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
        let n = b.shape().dims()[1];
        Tensor::from_fn([m, n], |idx| {
            (0..k)
                .map(|l| a.at(&[idx[0], l]).unwrap() * b.at(&[l, idx[1]]).unwrap())
                .sum()
        })
    }

    fn pseudo(shape: [usize; 2], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Tensor::from_fn(shape, |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo([5, 5], 3);
        let id = Tensor::from_fn([5, 5], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        assert_close(&matmul(&a, &id).unwrap(), &a, 1e-6);
        assert_close(&matmul(&id, &a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros([3])).is_err());
        assert!(matmul_at_b(&Tensor::zeros([2, 3]), &Tensor::zeros([3, 2])).is_err());
        assert!(matmul_a_bt(&Tensor::zeros([2, 3]), &Tensor::zeros([2, 4])).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = pseudo([7, 4], 11);
        let b = pseudo([7, 5], 12);
        let expect = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        assert_close(&matmul_at_b(&a, &b).unwrap(), &expect, 1e-5);

        let a2 = pseudo([6, 8], 13);
        let b2 = pseudo([5, 8], 14);
        let expect2 = matmul(&a2, &b2.transpose2d().unwrap()).unwrap();
        assert_close(&matmul_a_bt(&a2, &b2).unwrap(), &expect2, 1e-5);
    }

    #[test]
    fn large_enough_to_trigger_parallel_path() {
        // 128×128×128 = 2^21 multiply-adds > PARALLEL_THRESHOLD.
        let a = pseudo([128, 128], 21);
        let b = pseudo([128, 128], 22);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        assert_close(&fast, &slow, 1e-4);
    }

    #[test]
    fn zero_sized_dimensions() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[0, 2]);
        let d = matmul(&Tensor::zeros([2, 0]), &Tensor::zeros([0, 4])).unwrap();
        assert_eq!(d.shape().dims(), &[2, 4]);
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matches_naive_reference(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1_000
        ) {
            let a = pseudo([m, k], seed);
            let b = pseudo([k, n], seed + 1);
            assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4);
        }

        #[test]
        fn transposed_variants_match_naive_reference(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1_000
        ) {
            let a = pseudo([k, m], seed);
            let b = pseudo([k, n], seed + 1);
            let expect = naive(&a.transpose2d().unwrap(), &b);
            assert_close(&matmul_at_b(&a, &b).unwrap(), &expect, 1e-4);

            let a2 = pseudo([m, k], seed + 2);
            let b2 = pseudo([n, k], seed + 3);
            let expect2 = naive(&a2, &b2.transpose2d().unwrap());
            assert_close(&matmul_a_bt(&a2, &b2).unwrap(), &expect2, 1e-4);
        }

        #[test]
        fn distributes_over_addition(
            m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1_000
        ) {
            let a = pseudo([m, k], seed);
            let b = pseudo([k, n], seed + 1);
            let c = pseudo([k, n], seed + 2);
            let lhs = matmul(&a, &(&b + &c)).unwrap();
            let rhs = &matmul(&a, &b).unwrap() + &matmul(&a, &c).unwrap();
            assert_close(&lhs, &rhs, 1e-4);
        }
    }
}
