//! Blocked, multi-threaded matrix multiplication kernels.
//!
//! Three entry points cover the access patterns needed by dense-layer and
//! convolution backpropagation without materialising transposed copies:
//!
//! * [`matmul`] — `C = A·B`
//! * [`matmul_at_b`] — `C = Aᵀ·B`
//! * [`matmul_a_bt`] — `C = A·Bᵀ`
//!
//! Each has a `_into` twin ([`matmul_into`], [`matmul_at_b_into`],
//! [`matmul_a_bt_into`]) that writes into a caller-provided buffer so hot
//! loops can recycle storage; the allocating forms are thin wrappers that
//! draw their output from [`crate::scratch`].
//!
//! The inner microkernels live in [`crate::routines`]: each entry point
//! asks the routine selector for the candidate registered for its full
//! `(op, m, k, n)` shape — once per call, on the caller thread — and
//! hands the chosen kernel fn to the row-parallel workers. Every
//! registered candidate of a family is bitwise-equal to the naive kernel
//! (blocking only reorders *which* output element is worked on next; the
//! per-element accumulation remains a single chain in ascending-`k`
//! order, with the historical exact-zero skips preserved verbatim), so
//! routine selection can never change a result bit.
//!
//! All kernels parallelise over output rows through [`crate::par`] once the
//! arithmetic volume crosses [`crate::par::PARALLEL_THRESHOLD`], so small
//! problems stay on one thread and avoid spawn overhead. Row partitioning
//! never changes the per-element summation order, so results are
//! bit-identical for any thread count.

use crate::par::for_each_block;
use crate::routines::{self, GemmOp};
use crate::{scratch, Result, Tensor, TensorError};

fn dims2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.shape().dims()[0], t.shape().dims()[1]))
}

fn check_out_len(actual: usize, expected: usize) -> Result<()> {
    if actual != expected {
        return Err(TensorError::LengthMismatch { expected, actual });
    }
    Ok(())
}

fn check_mm(a: &Tensor, b: &Tensor, op: &'static str) -> Result<(usize, usize, usize)> {
    let (m, k) = dims2(a, op)?;
    let (kb, n) = dims2(b, op)?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    Ok((m, k, n))
}

fn matmul_slices(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    // One selection per call, on the caller thread: workers only see the
    // chosen kernel fn, so selection never contends or depends on the
    // thread count.
    let kernel = routines::select(GemmOp::MatMul, m, k, n).kernel;
    for_each_block(out, n, m * n * k, |row0, chunk| {
        let rows = chunk.len().checked_div(n).unwrap_or(0);
        kernel(&ad[row0 * k..(row0 + rows) * k], rows, k, bd, n, chunk);
    });
}

/// Computes `C = A·B` for `A: [m, k]` and `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::ShapeMismatch`] when the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ndtensor::{matmul, Tensor};
/// # fn main() -> Result<(), ndtensor::TensorError> {
/// let id = Tensor::from_vec([2, 2], vec![1., 0., 0., 1.])?;
/// let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.])?;
/// assert_eq!(matmul(&id, &a)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, n) = check_mm(a, b, "matmul")?;
    let mut out = Tensor::zeros([m, n]);
    matmul_slices(a.as_slice(), m, k, b.as_slice(), n, out.as_mut_slice());
    Ok(out)
}

/// Computes `C = A·B` into `out` (length `m·n`), recycling its storage.
///
/// # Errors
///
/// Like [`matmul`], plus [`TensorError::LengthMismatch`] when `out` has
/// the wrong length.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut [f32]) -> Result<()> {
    let (m, k, n) = check_mm(a, b, "matmul_into")?;
    check_out_len(out.len(), m * n)?;
    out.fill(0.0);
    matmul_slices(a.as_slice(), m, k, b.as_slice(), n, out);
    Ok(())
}

fn matmul_at_b_slices(ad: &[f32], k: usize, m: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    let kernel = routines::select(GemmOp::MatMulAtB, m, k, n).kernel;
    for_each_block(out, n, m * n * k, |row0, chunk| {
        let rows = chunk.len().checked_div(n).unwrap_or(0);
        if rows == 0 || k == 0 {
            return;
        }
        // Transpose this chunk's Aᵀ column block into contiguous scratch
        // (one pass over A), then run the selected accumulating kernel on
        // plain packed rows.
        let pa = routines::pack_at(ad, k, m, row0, rows);
        kernel(&pa, rows, k, bd, n, chunk);
        scratch::give(pa);
    });
}

/// Computes `C = Aᵀ·B` for `A: [k, m]` and `B: [k, n]` without transposing.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::ShapeMismatch`] when the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = dims2(a, "matmul_at_b")?;
    let (kb, n) = dims2(b, "matmul_at_b")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = Tensor::zeros([m, n]);
    matmul_at_b_slices(a.as_slice(), k, m, b.as_slice(), n, out.as_mut_slice());
    Ok(out)
}

/// Computes `C = Aᵀ·B` into `out` (length `m·n`), recycling its storage.
///
/// # Errors
///
/// Like [`matmul_at_b`], plus [`TensorError::LengthMismatch`] when `out`
/// has the wrong length.
pub fn matmul_at_b_into(a: &Tensor, b: &Tensor, out: &mut [f32]) -> Result<()> {
    let (k, m) = dims2(a, "matmul_at_b_into")?;
    let (kb, n) = dims2(b, "matmul_at_b_into")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b_into",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    check_out_len(out.len(), m * n)?;
    out.fill(0.0);
    matmul_at_b_slices(a.as_slice(), k, m, b.as_slice(), n, out);
    Ok(())
}

fn matmul_a_bt_slices(ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize, out: &mut [f32]) {
    let kernel = routines::select(GemmOp::MatMulABt, m, k, n).kernel;
    for_each_block(out, n, m * n * k, |row0, chunk| {
        let rows = chunk.len().checked_div(n).unwrap_or(0);
        kernel(&ad[row0 * k..(row0 + rows) * k], rows, k, bd, n, chunk);
    });
}

/// Computes `C = A·Bᵀ` for `A: [m, k]` and `B: [n, k]` without transposing.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::ShapeMismatch`] when the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = dims2(a, "matmul_a_bt")?;
    let (n, kb) = dims2(b, "matmul_a_bt")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    let mut out = Tensor::zeros([m, n]);
    matmul_a_bt_slices(a.as_slice(), m, k, b.as_slice(), n, out.as_mut_slice());
    Ok(out)
}

/// Computes `C = A·Bᵀ` into `out` (length `m·n`), recycling its storage.
///
/// # Errors
///
/// Like [`matmul_a_bt`], plus [`TensorError::LengthMismatch`] when `out`
/// has the wrong length.
pub fn matmul_a_bt_into(a: &Tensor, b: &Tensor, out: &mut [f32]) -> Result<()> {
    let (m, k) = dims2(a, "matmul_a_bt_into")?;
    let (n, kb) = dims2(b, "matmul_a_bt_into")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt_into",
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
        });
    }
    check_out_len(out.len(), m * n)?;
    // The kernel assigns every element; zero-fill is unnecessary.
    matmul_a_bt_slices(a.as_slice(), m, k, b.as_slice(), n, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
        let n = b.shape().dims()[1];
        Tensor::from_fn([m, n], |idx| {
            (0..k)
                .map(|l| a.at(&[idx[0], l]).unwrap() * b.at(&[l, idx[1]]).unwrap())
                .sum()
        })
    }

    fn pseudo(shape: [usize; 2], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Tensor::from_fn(shape, |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo([5, 5], 3);
        let id = Tensor::from_fn([5, 5], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        assert_close(&matmul(&a, &id).unwrap(), &a, 1e-6);
        assert_close(&matmul(&id, &a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros([3])).is_err());
        assert!(matmul_at_b(&Tensor::zeros([2, 3]), &Tensor::zeros([3, 2])).is_err());
        assert!(matmul_a_bt(&Tensor::zeros([2, 3]), &Tensor::zeros([2, 4])).is_err());
    }

    #[test]
    fn into_variants_validate_output_length() {
        let a = pseudo([2, 3], 1);
        let b = pseudo([3, 4], 2);
        let mut short = vec![0.0f32; 7];
        assert!(matmul_into(&a, &b, &mut short).is_err());
        let bt = pseudo([4, 3], 3);
        assert!(matmul_a_bt_into(&a, &bt, &mut short).is_err());
        let at = pseudo([3, 2], 4);
        assert!(matmul_at_b_into(&at, &b, &mut short).is_err());
    }

    #[test]
    fn into_variants_are_bit_identical_to_wrappers() {
        for seed in 0..6u64 {
            let (m, k, n) = (3 + seed as usize, 5 + seed as usize, 300 + seed as usize);
            let a = pseudo([m, k], seed);
            let b = pseudo([k, n], seed + 10);
            let mut out = vec![7.0f32; m * n];
            matmul_into(&a, &b, &mut out).unwrap();
            assert_eq!(out, matmul(&a, &b).unwrap().as_slice());

            let at = pseudo([k, m], seed + 20);
            let mut out2 = vec![7.0f32; m * n];
            matmul_at_b_into(&at, &b, &mut out2).unwrap();
            assert_eq!(out2, matmul_at_b(&at, &b).unwrap().as_slice());

            let bt = pseudo([n, k], seed + 30);
            let mut out3 = vec![7.0f32; m * n];
            matmul_a_bt_into(&a, &bt, &mut out3).unwrap();
            assert_eq!(out3, matmul_a_bt(&a, &bt).unwrap().as_slice());
        }
    }

    #[test]
    fn shapes_spanning_tile_boundaries_match_naive() {
        // Exercise the column tiling (n > COL_TILE), the B-row tiling
        // (n > BT_ROW_TILE) and the JB remainder loop.
        for &(m, k, n) in &[(5, 3, 513), (2, 7, 300), (9, 2, 65), (1, 300, 70)] {
            let a = pseudo([m, k], 91);
            let b = pseudo([k, n], 92);
            assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4);

            let at = pseudo([k, m], 93);
            let expect = naive(&at.transpose2d().unwrap(), &b);
            assert_close(&matmul_at_b(&at, &b).unwrap(), &expect, 1e-4);

            let bt = pseudo([n, k], 94);
            let expect2 = naive(&a, &bt.transpose2d().unwrap());
            assert_close(&matmul_a_bt(&a, &bt).unwrap(), &expect2, 1e-4);
        }
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = pseudo([7, 4], 11);
        let b = pseudo([7, 5], 12);
        let expect = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        assert_close(&matmul_at_b(&a, &b).unwrap(), &expect, 1e-5);

        let a2 = pseudo([6, 8], 13);
        let b2 = pseudo([5, 8], 14);
        let expect2 = matmul(&a2, &b2.transpose2d().unwrap()).unwrap();
        assert_close(&matmul_a_bt(&a2, &b2).unwrap(), &expect2, 1e-5);
    }

    #[test]
    fn large_enough_to_trigger_parallel_path() {
        // 128×128×128 = 2^21 multiply-adds > PARALLEL_THRESHOLD.
        let a = pseudo([128, 128], 21);
        let b = pseudo([128, 128], 22);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        assert_close(&fast, &slow, 1e-4);
    }

    #[test]
    fn zero_sized_dimensions() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[0, 2]);
        let d = matmul(&Tensor::zeros([2, 0]), &Tensor::zeros([0, 4])).unwrap();
        assert_eq!(d.shape().dims(), &[2, 4]);
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matches_naive_reference(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1_000
        ) {
            let a = pseudo([m, k], seed);
            let b = pseudo([k, n], seed + 1);
            assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4);
        }

        #[test]
        fn transposed_variants_match_naive_reference(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1_000
        ) {
            let a = pseudo([k, m], seed);
            let b = pseudo([k, n], seed + 1);
            let expect = naive(&a.transpose2d().unwrap(), &b);
            assert_close(&matmul_at_b(&a, &b).unwrap(), &expect, 1e-4);

            let a2 = pseudo([m, k], seed + 2);
            let b2 = pseudo([n, k], seed + 3);
            let expect2 = naive(&a2, &b2.transpose2d().unwrap());
            assert_close(&matmul_a_bt(&a2, &b2).unwrap(), &expect2, 1e-4);
        }

        #[test]
        fn into_matches_wrapper_bitwise(
            m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1_000
        ) {
            let a = pseudo([m, k], seed);
            let b = pseudo([k, n], seed + 1);
            let mut out = vec![3.5f32; m * n];
            matmul_into(&a, &b, &mut out).unwrap();
            let reference = matmul(&a, &b).unwrap();
            prop_assert_eq!(out.as_slice(), reference.as_slice());
        }

        #[test]
        fn distributes_over_addition(
            m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1_000
        ) {
            let a = pseudo([m, k], seed);
            let b = pseudo([k, n], seed + 1);
            let c = pseudo([k, n], seed + 2);
            let lhs = matmul(&a, &(&b + &c)).unwrap();
            let rhs = &matmul(&a, &b).unwrap() + &matmul(&a, &c).unwrap();
            assert_close(&lhs, &rhs, 1e-4);
        }
    }
}
