use std::fmt;
use std::hash::{Hash, Hasher};

/// Ranks up to this are stored inline; NCHW (rank 4) is the deepest
/// shape the workspace uses, so the scoring hot path never allocates a
/// dimension list.
const MAX_INLINE_RANK: usize = 4;

/// Backing storage for a dimension list: inline for rank ≤
/// [`MAX_INLINE_RANK`] (the hot path), heap for anything deeper.
#[derive(Debug, Clone)]
enum Dims {
    Inline {
        buf: [usize; MAX_INLINE_RANK],
        len: u8,
    },
    Spilled(Vec<usize>),
}

/// The dimensions of a tensor, stored outermost-first (row-major order).
///
/// A `Shape` is a thin, immutable wrapper around a dimension list. Rank-0
/// shapes are allowed and denote scalars (volume 1). Shapes of rank ≤ 4
/// are stored inline (no heap allocation) — a hot-path requirement for
/// the zero-allocation streaming loop.
///
/// # Example
///
/// ```
/// use ndtensor::Shape;
///
/// let s = Shape::new([2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Shape(Dims);

impl Shape {
    /// Creates a shape from anything convertible into a dimension list.
    pub fn new(dims: impl Into<Shape>) -> Self {
        dims.into()
    }

    fn from_slice(dims: &[usize]) -> Self {
        if dims.len() <= MAX_INLINE_RANK {
            let mut buf = [0usize; MAX_INLINE_RANK];
            buf[..dims.len()].copy_from_slice(dims);
            Shape(Dims::Inline {
                buf,
                len: dims.len() as u8,
            })
        } else {
            Shape(Dims::Spilled(dims.to_vec()))
        }
    }

    /// The scalar shape (rank 0, volume 1).
    pub fn scalar() -> Self {
        Shape::from_slice(&[])
    }

    /// Returns the dimension list, outermost first.
    pub fn dims(&self) -> &[usize] {
        match &self.0 {
            Dims::Inline { buf, len } => &buf[..*len as usize],
            Dims::Spilled(v) => v,
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims().len()
    }

    /// Total number of elements described by this shape.
    ///
    /// A rank-0 (scalar) shape has volume 1; any zero-sized dimension makes
    /// the volume 0.
    pub fn volume(&self) -> usize {
        self.dims().iter().product()
    }

    /// Returns the size of dimension `axis`, or `None` when out of range.
    pub fn dim(&self, axis: usize) -> Option<usize> {
        self.dims().get(axis).copied()
    }

    /// Row-major strides, in elements.
    ///
    /// `strides()[i]` is the linear-index distance between consecutive
    /// entries along axis `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims()[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a linear offset.
    ///
    /// Returns `None` if `index` has the wrong rank or any coordinate is out
    /// of bounds.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.rank() {
            return None;
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.rank()).rev() {
            if index[axis] >= self.dims()[axis] {
                return None;
            }
            off += index[axis] * stride;
            stride *= self.dims()[axis];
        }
        Some(off)
    }

    /// Converts a linear offset back into a multi-dimensional index.
    ///
    /// Returns `None` when `offset >= volume()`.
    pub fn unravel(&self, offset: usize) -> Option<Vec<usize>> {
        if offset >= self.volume() {
            return None;
        }
        let mut rem = offset;
        let mut idx = vec![0usize; self.rank()];
        for axis in (0..self.rank()).rev() {
            idx[axis] = rem % self.dims()[axis];
            rem /= self.dims()[axis];
        }
        Some(idx)
    }

    /// `true` when both shapes have identical dimension lists.
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl PartialEq for Shape {
    fn eq(&self, other: &Shape) -> bool {
        self.dims() == other.dims()
    }
}

impl Eq for Shape {}

impl Hash for Shape {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.dims().hash(state);
    }
}

impl Default for Shape {
    fn default() -> Self {
        Shape::scalar()
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::from_slice(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::from_slice(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::from_slice(&dims)
    }
}

impl From<usize> for Shape {
    fn from(dim: usize) -> Self {
        Shape::from_slice(&[dim])
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        self.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_shape_has_volume_one() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.offset(&[]), Some(0));
        assert_eq!(s.unravel(0), Some(vec![]));
        assert_eq!(s.unravel(1), None);
    }

    #[test]
    fn zero_dim_gives_zero_volume() {
        let s = Shape::new([3, 0, 2]);
        assert_eq!(s.volume(), 0);
        assert_eq!(s.offset(&[0, 0, 0]), None);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new([5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), Some(0));
        assert_eq!(s.offset(&[1, 2, 3]), Some(12 + 2 * 4 + 3));
        assert_eq!(s.offset(&[2, 0, 0]), None);
        assert_eq!(s.offset(&[0, 0]), None);
    }

    #[test]
    fn display_formats_like_a_slice() {
        assert_eq!(Shape::new([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
        assert_eq!(Shape::new([7]).to_string(), "[7]");
    }

    #[test]
    fn deep_shapes_spill_to_the_heap_transparently() {
        let deep = Shape::new([2, 3, 4, 5, 6]);
        assert_eq!(deep.rank(), 5);
        assert_eq!(deep.volume(), 720);
        assert_eq!(deep.dims(), &[2, 3, 4, 5, 6]);
        let inline = Shape::new([2, 3, 4, 5]);
        assert_eq!(inline.dims(), &[2, 3, 4, 5]);
        assert_ne!(deep, inline);
        assert_eq!(deep, deep.clone());
        assert_eq!(deep.offset(&[1, 2, 3, 4, 5]), Some(719));
    }

    #[test]
    fn equality_and_hash_ignore_storage_variant() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Shape::from(vec![3, 4]);
        let b = Shape::new([3, 4]);
        assert_eq!(a, b);
        let hash = |s: &Shape| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn conversions_from_various_sources() {
        assert_eq!(Shape::from(4usize).dims(), &[4]);
        assert_eq!(Shape::from(vec![1, 2]).dims(), &[1, 2]);
        assert_eq!(Shape::from(&[3, 4][..]).dims(), &[3, 4]);
    }

    proptest! {
        #[test]
        fn offset_unravel_roundtrip(dims in proptest::collection::vec(1usize..6, 0..4)) {
            let s = Shape::from(dims);
            for off in 0..s.volume() {
                let idx = s.unravel(off).unwrap();
                prop_assert_eq!(s.offset(&idx), Some(off));
            }
        }

        #[test]
        fn offsets_are_dense_and_unique(dims in proptest::collection::vec(1usize..5, 1..4)) {
            let s = Shape::from(dims);
            let mut seen = vec![false; s.volume()];
            for off in 0..s.volume() {
                let idx = s.unravel(off).unwrap();
                let back = s.offset(&idx).unwrap();
                prop_assert!(!seen[back]);
                seen[back] = true;
            }
            prop_assert!(seen.iter().all(|&b| b));
        }
    }
}
