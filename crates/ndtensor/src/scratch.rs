//! Thread-local, size-classed scratch buffers for the scoring hot path.
//!
//! Every tensor temporary in the score/stream loop used to be a fresh
//! heap allocation; on the 1-core deployment target allocation churn is
//! pure overhead. This module recycles `f32` (and `f64`, for the SSIM
//! integral images) buffers through a per-thread pool so a warmed stream
//! performs zero heap allocations per frame.
//!
//! Design points:
//!
//! * **Thread-local**: each `par` worker owns its pool, so pooling never
//!   introduces cross-thread traffic and cannot perturb the bit-identical
//!   thread-parity guarantee — a recycled buffer holds the same values a
//!   fresh one would after initialisation.
//! * **Size-classed**: buffers live in power-of-two capacity classes;
//!   [`take`] returns a cleared buffer with `capacity >= len` from class
//!   `ceil(log2(len))`, [`give`] files a buffer under
//!   `floor(log2(capacity))` so a later take of that class always fits.
//! * **Bounded**: at most [`MAX_PER_CLASS`] buffers per class are
//!   retained and classes above [`MAX_POOLED_CLASS`] are never pooled,
//!   so the pool cannot hoard unbounded memory during training.
//! * **Observable**: process-global hit/miss/byte counters (same pattern
//!   as `par::ParStats`) are bridged into run reports by
//!   `obs::record_scratch_delta`.
//!
//! [`set_enabled`] turns recycling off globally (takes allocate, gives
//! drop) so benchmarks can A/B the pool without rebuilding.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Buffers with capacity `2^c` for `c` in `0..NUM_CLASSES` are pooled.
const NUM_CLASSES: usize = MAX_POOLED_CLASS + 1;

/// Largest pooled class: `2^24` elements (64 MiB as `f32`). Larger
/// buffers are allocated and freed normally.
const MAX_POOLED_CLASS: usize = 24;

/// Retention cap per size class, per thread.
const MAX_PER_CLASS: usize = 8;

static ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-global scratch counters.
///
/// Counters are monotonic; use [`ScratchStats::since`] to express the
/// work of one region, exactly like `par::ParStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScratchStats {
    /// Takes served by recycling a pooled buffer.
    pub hits: u64,
    /// Takes that had to allocate a fresh buffer.
    pub misses: u64,
    /// Bytes newly allocated through the pool (misses only).
    pub bytes_allocated: u64,
}

impl ScratchStats {
    /// Counter deltas accumulated since `earlier`.
    pub fn since(self, earlier: ScratchStats) -> ScratchStats {
        ScratchStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
        }
    }
}

/// Reads the current global counters.
pub fn stats() -> ScratchStats {
    ScratchStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
    }
}

/// Globally enables or disables recycling (enabled by default). With the
/// pool disabled every take allocates and every give drops, which gives
/// benchmarks a clean on/off A-B switch. Values computed are identical
/// either way.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// `true` when recycling is active.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Size class that can satisfy a request for `len` elements:
/// the smallest `c` with `2^c >= len`.
fn class_for_len(len: usize) -> usize {
    if len <= 1 {
        0
    } else {
        (usize::BITS - (len - 1).leading_zeros()) as usize
    }
}

/// Size class a returned buffer files under: the largest `c` with
/// `2^c <= capacity`, so any take of class `c` fits in it.
fn class_for_capacity(cap: usize) -> usize {
    debug_assert!(cap > 0);
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

struct Pool<T> {
    classes: Vec<Vec<Vec<T>>>,
}

impl<T: Copy + Default> Pool<T> {
    fn new() -> Self {
        let mut classes = Vec::with_capacity(NUM_CLASSES);
        classes.resize_with(NUM_CLASSES, Vec::new);
        Pool { classes }
    }

    fn take(&mut self, len: usize) -> Vec<T> {
        let class = class_for_len(len);
        if enabled() && class <= MAX_POOLED_CLASS {
            if let Some(mut buf) = self.classes[class].pop() {
                buf.clear();
                HITS.fetch_add(1, Ordering::Relaxed);
                return buf;
            }
        }
        let cap = if class <= MAX_POOLED_CLASS {
            1usize << class
        } else {
            len
        };
        MISSES.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add((cap * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
        Vec::with_capacity(cap)
    }

    fn give(&mut self, buf: Vec<T>) {
        // Capacity 0 marks buffers already donated elsewhere (or never
        // backed by storage); nothing to recycle.
        if buf.capacity() == 0 || !enabled() {
            return;
        }
        let class = class_for_capacity(buf.capacity());
        if class <= MAX_POOLED_CLASS && self.classes[class].len() < MAX_PER_CLASS {
            self.classes[class].push(buf);
        }
    }
}

thread_local! {
    static F32_POOL: RefCell<Pool<f32>> = RefCell::new(Pool::new());
    static F64_POOL: RefCell<Pool<f64>> = RefCell::new(Pool::new());
}

/// Takes an empty `f32` buffer with `capacity >= len` from this thread's
/// pool (allocating on miss).
pub fn take(len: usize) -> Vec<f32> {
    F32_POOL.with(|p| p.borrow_mut().take(len))
}

/// Takes a zero-filled `f32` buffer of exactly `len` elements.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut buf = take(len);
    buf.resize(len, 0.0);
    buf
}

/// Returns an `f32` buffer to this thread's pool for reuse.
pub fn give(buf: Vec<f32>) {
    F32_POOL.with(|p| p.borrow_mut().give(buf));
}

/// Takes an empty `f64` buffer with `capacity >= len` (SSIM integral
/// images are the hot `f64` consumer).
pub fn take_f64(len: usize) -> Vec<f64> {
    F64_POOL.with(|p| p.borrow_mut().take(len))
}

/// Takes a zero-filled `f64` buffer of exactly `len` elements.
pub fn take_zeroed_f64(len: usize) -> Vec<f64> {
    let mut buf = take_f64(len);
    buf.resize(len, 0.0);
    buf
}

/// Returns an `f64` buffer to this thread's pool.
pub fn give_f64(buf: Vec<f64>) {
    F64_POOL.with(|p| p.borrow_mut().give(buf));
}

/// An explicit bag of reusable buffers for workspace-taking kernels.
///
/// A `Workspace` checks buffers out of the thread-local pool and keeps
/// them for its own lifetime, so a caller that loops over many kernel
/// invocations (e.g. `conv2d` over a batch) reuses identical storage
/// without even touching the pool per iteration. Dropping the workspace
/// files everything back into the pool.
///
/// Ownership rule: a buffer obtained from [`Workspace::take`] is either
/// returned via [`Workspace::give`] (for reuse) or simply dropped (it is
/// then lost to the pool) — never both.
#[derive(Debug, Default)]
pub struct Workspace {
    slots: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Takes an empty buffer with `capacity >= len`, preferring buffers
    /// previously [`given`](Workspace::give) back to this workspace.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let class = class_for_len(len);
        if let Some(i) = self
            .slots
            .iter()
            .position(|b| b.capacity() > 0 && class_for_capacity(b.capacity()) >= class)
        {
            let mut buf = self.slots.swap_remove(i);
            buf.clear();
            HITS.fetch_add(1, Ordering::Relaxed);
            return buf;
        }
        take(len)
    }

    /// Takes a zero-filled buffer of exactly `len` elements.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to this workspace for later reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.slots.push(buf);
        }
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        for buf in self.slots.drain(..) {
            give(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_math() {
        assert_eq!(class_for_len(0), 0);
        assert_eq!(class_for_len(1), 0);
        assert_eq!(class_for_len(2), 1);
        assert_eq!(class_for_len(3), 2);
        assert_eq!(class_for_len(4), 2);
        assert_eq!(class_for_len(5), 3);
        assert_eq!(class_for_capacity(1), 0);
        assert_eq!(class_for_capacity(2), 1);
        assert_eq!(class_for_capacity(3), 1);
        assert_eq!(class_for_capacity(4), 2);
        assert_eq!(class_for_capacity(1023), 9);
        assert_eq!(class_for_capacity(1024), 10);
    }

    #[test]
    fn take_give_recycles_storage() {
        let before = stats();
        let buf = take(100);
        assert!(buf.capacity() >= 100);
        let ptr = buf.as_ptr();
        give(buf);
        let buf2 = take(100);
        // Same thread, same class: storage is recycled.
        assert_eq!(buf2.as_ptr(), ptr);
        assert!(buf2.is_empty());
        let delta = stats().since(before);
        assert!(delta.hits >= 1);
        give(buf2);
    }

    #[test]
    fn take_zeroed_is_zeroed_after_reuse() {
        let mut buf = take(64);
        buf.resize(64, 7.0);
        give(buf);
        let buf = take_zeroed(64);
        assert_eq!(buf.len(), 64);
        assert!(buf.iter().all(|&v| v == 0.0));
        give(buf);
    }

    #[test]
    fn f64_pool_round_trips() {
        let buf = take_zeroed_f64(33);
        assert_eq!(buf.len(), 33);
        let ptr = buf.as_ptr();
        give_f64(buf);
        let buf2 = take_f64(20);
        // Class 5 request fits in the recycled class-6 buffer only if
        // classes match; a 33-length take files under class 6 and a
        // 20-length take asks class 5, so recycling is not guaranteed —
        // just check the buffer is usable.
        assert!(buf2.capacity() >= 20);
        let _ = ptr;
        give_f64(buf2);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        give(Vec::new()); // must not panic or pollute class 0
        let buf = take(1);
        assert!(buf.capacity() >= 1);
        give(buf);
    }

    #[test]
    fn workspace_reuses_given_buffers() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(128);
        buf.push(1.0);
        let ptr = buf.as_ptr();
        ws.give(buf);
        let buf2 = ws.take(100);
        assert_eq!(buf2.as_ptr(), ptr);
        assert!(buf2.is_empty());
        ws.give(buf2);
    }

    #[test]
    fn disabled_pool_still_serves_buffers() {
        set_enabled(false);
        let buf = take(10);
        assert!(buf.capacity() >= 10);
        give(buf);
        let buf = take_zeroed(10);
        assert_eq!(buf.len(), 10);
        give(buf);
        set_enabled(true);
    }

    #[test]
    fn oversized_requests_fall_through() {
        // A request above the largest pooled class allocates exactly and
        // is dropped on give without being retained.
        let len = (1usize << MAX_POOLED_CLASS) + 1;
        let buf = take(len);
        assert!(buf.capacity() >= len);
        give(buf);
    }
}
