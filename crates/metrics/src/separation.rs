//! Distribution-separation statistics.
//!
//! The paper argues visually (histograms) that VBP+SSIM separates target
//! from novel scores better than the alternatives. These summaries put
//! numbers behind the same comparison: AUROC, histogram overlap, and the
//! detection rate at the calibrated threshold.

use crate::{MetricsError, Result};

/// Whether larger scores indicate *more* novel or *less* novel inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreOrientation {
    /// Larger score = more anomalous (e.g. reconstruction MSE).
    HigherIsNovel,
    /// Larger score = more normal (e.g. SSIM similarity).
    LowerIsNovel,
}

fn validate(name: &'static str, v: &[f32]) -> Result<()> {
    if v.is_empty() {
        return Err(MetricsError::invalid(name, "sample must be non-empty"));
    }
    if v.iter().any(|x| !x.is_finite()) {
        return Err(MetricsError::invalid(
            name,
            "sample contains non-finite values",
        ));
    }
    Ok(())
}

/// Area under the ROC curve for separating `novel` from `target` scores.
///
/// 1.0 = perfect separation, 0.5 = chance. Computed exactly as the
/// Mann–Whitney U statistic with tie correction.
///
/// # Errors
///
/// Fails when either sample is empty or contains non-finite values.
pub fn auroc(target: &[f32], novel: &[f32], orientation: ScoreOrientation) -> Result<f32> {
    validate("auroc", target)?;
    validate("auroc", novel)?;
    // Rank all scores; AUROC = (R_novel − n(n+1)/2) / (n·m) where R_novel
    // is the rank sum of novel scores under "higher = more novel".
    let mut all: Vec<(f32, bool)> = target
        .iter()
        .map(|&v| (v, false))
        .chain(novel.iter().map(|&v| (v, true)))
        .collect();
    match orientation {
        ScoreOrientation::HigherIsNovel => {}
        ScoreOrientation::LowerIsNovel => {
            for (v, _) in &mut all {
                *v = -*v;
            }
        }
    }
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Assign average ranks to ties.
    let mut rank_sum_novel = 0.0f64;
    let mut i = 0usize;
    while i < all.len() {
        let mut j = i;
        while j + 1 < all.len() && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in &all[i..=j] {
            if item.1 {
                rank_sum_novel += avg_rank;
            }
        }
        i = j + 1;
    }
    let n = novel.len() as f64;
    let m = target.len() as f64;
    let u = rank_sum_novel - n * (n + 1.0) / 2.0;
    Ok((u / (n * m)) as f32)
}

/// Histogram-overlap coefficient of two score samples in `[0, 1]`:
/// 0.0 = fully separated, 1.0 = identical distributions. Uses `bins`
/// equal-width bins over the pooled range.
///
/// # Errors
///
/// Fails when either sample is empty/non-finite or `bins == 0`.
pub fn overlap_coefficient(a: &[f32], b: &[f32], bins: usize) -> Result<f32> {
    validate("overlap", a)?;
    validate("overlap", b)?;
    if bins == 0 {
        return Err(MetricsError::invalid("overlap", "bins must be non-zero"));
    }
    let lo = a.iter().chain(b).copied().fold(f32::INFINITY, f32::min);
    let hi = a.iter().chain(b).copied().fold(f32::NEG_INFINITY, f32::max);
    if lo == hi {
        return Ok(1.0);
    }
    let hist = |v: &[f32]| -> Vec<f32> {
        let mut counts = vec![0u64; bins]; // sncheck:allow(hot-path-transitive-alloc): histogram scratch sized by bin count; separation metrics run once per evaluation sweep, not per frame
        for &x in v {
            let t = ((x - lo) / (hi - lo) * bins as f32).floor() as i64;
            counts[t.clamp(0, bins as i64 - 1) as usize] += 1;
        }
        counts.iter().map(|&c| c as f32 / v.len() as f32).collect()
    };
    let ha = hist(a);
    let hb = hist(b);
    Ok(ha.iter().zip(&hb).map(|(&x, &y)| x.min(y)).sum())
}

/// Fraction of `scores` classified as novel at `threshold` under the given
/// orientation (ties count as not novel, matching a strict comparison).
///
/// # Errors
///
/// Fails when the sample is empty or contains non-finite values.
pub fn detection_rate(
    scores: &[f32],
    threshold: f32,
    orientation: ScoreOrientation,
) -> Result<f32> {
    validate("detection_rate", scores)?;
    let detected = scores
        .iter()
        .filter(|&&s| match orientation {
            ScoreOrientation::HigherIsNovel => s > threshold,
            ScoreOrientation::LowerIsNovel => s < threshold,
        })
        .count();
    Ok(detected as f32 / scores.len() as f32)
}

/// One point of an ROC curve: false-positive rate vs true-positive rate
/// at a particular threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold the rates were computed at.
    pub threshold: f32,
    /// Fraction of target scores incorrectly classified novel.
    pub fpr: f32,
    /// Fraction of novel scores correctly classified novel.
    pub tpr: f32,
}

/// Computes the full ROC curve for separating `novel` from `target`
/// scores, one point per distinct score value (plus the two trivial
/// endpoints), ordered by increasing FPR.
///
/// The trapezoidal area under the returned curve equals [`auroc`] up to
/// floating-point error — asserted by this module's tests.
///
/// # Errors
///
/// Fails when either sample is empty or contains non-finite values.
pub fn roc_points(
    target: &[f32],
    novel: &[f32],
    orientation: ScoreOrientation,
) -> Result<Vec<RocPoint>> {
    validate("roc_points", target)?;
    validate("roc_points", novel)?;
    let flip = |v: f32| match orientation {
        ScoreOrientation::HigherIsNovel => v,
        ScoreOrientation::LowerIsNovel => -v,
    };
    // Candidate thresholds: every distinct score.
    let mut thresholds: Vec<f32> = target.iter().chain(novel).map(|&v| flip(v)).collect();
    thresholds.sort_by(f32::total_cmp);
    thresholds.dedup();
    let mut points = Vec::with_capacity(thresholds.len() + 2);
    // "Everything novel" endpoint: the threshold every score clears,
    // which depends on the orientation.
    points.push(RocPoint {
        threshold: match orientation {
            ScoreOrientation::HigherIsNovel => f32::NEG_INFINITY,
            ScoreOrientation::LowerIsNovel => f32::INFINITY,
        },
        fpr: 1.0,
        tpr: 1.0,
    });
    for &t in &thresholds {
        let fpr = target.iter().filter(|&&s| flip(s) > t).count() as f32 / target.len() as f32;
        let tpr = novel.iter().filter(|&&s| flip(s) > t).count() as f32 / novel.len() as f32;
        points.push(RocPoint {
            threshold: match orientation {
                ScoreOrientation::HigherIsNovel => t,
                ScoreOrientation::LowerIsNovel => -t,
            },
            fpr,
            tpr,
        });
    }
    points.sort_by(|a, b| a.fpr.total_cmp(&b.fpr).then(a.tpr.total_cmp(&b.tpr)));
    Ok(points)
}

/// A compact separation report between a target and a novel score sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SeparationReport {
    /// AUROC of novel-vs-target.
    pub auroc: f32,
    /// Histogram overlap coefficient (32 bins).
    pub overlap: f32,
    /// Mean of the target scores.
    pub target_mean: f32,
    /// Mean of the novel scores.
    pub novel_mean: f32,
}

impl SeparationReport {
    /// Computes the report.
    ///
    /// # Errors
    ///
    /// Fails when either sample is empty or contains non-finite values.
    pub fn compute(target: &[f32], novel: &[f32], orientation: ScoreOrientation) -> Result<Self> {
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        Ok(SeparationReport {
            auroc: auroc(target, novel, orientation)?,
            overlap: overlap_coefficient(target, novel, 32)?,
            target_mean: mean(target),
            novel_mean: mean(novel),
        })
    }
}

impl std::fmt::Display for SeparationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AUROC {:.3} | overlap {:.3} | target mean {:.4} | novel mean {:.4}",
            self.auroc, self.overlap, self.target_mean, self.novel_mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auroc_one() {
        let target = vec![0.1, 0.2, 0.3];
        let novel = vec![0.9, 0.8, 0.7];
        assert_eq!(
            auroc(&target, &novel, ScoreOrientation::HigherIsNovel).unwrap(),
            1.0
        );
        // Flipped orientation: 0.0.
        assert_eq!(
            auroc(&target, &novel, ScoreOrientation::LowerIsNovel).unwrap(),
            0.0
        );
    }

    #[test]
    fn identical_distributions_have_auroc_half() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let a = auroc(&v, &v, ScoreOrientation::HigherIsNovel).unwrap();
        assert!((a - 0.5).abs() < 1e-6, "auroc {a}");
    }

    #[test]
    fn auroc_handles_partial_overlap() {
        let target = vec![1.0, 2.0, 3.0, 4.0];
        let novel = vec![3.0, 4.0, 5.0, 6.0];
        let a = auroc(&target, &novel, ScoreOrientation::HigherIsNovel).unwrap();
        assert!(a > 0.5 && a < 1.0, "auroc {a}");
    }

    #[test]
    fn auroc_validates_inputs() {
        assert!(auroc(&[], &[1.0], ScoreOrientation::HigherIsNovel).is_err());
        assert!(auroc(&[1.0], &[f32::NAN], ScoreOrientation::HigherIsNovel).is_err());
    }

    #[test]
    fn overlap_extremes() {
        let a = vec![0.0, 0.1, 0.2];
        let b = vec![10.0, 10.1, 10.2];
        assert!(overlap_coefficient(&a, &b, 16).unwrap() < 0.01);
        let c = vec![1.0, 2.0, 3.0, 4.0];
        assert!((overlap_coefficient(&c, &c, 16).unwrap() - 1.0).abs() < 1e-6);
        // Degenerate: all values equal.
        assert_eq!(overlap_coefficient(&[5.0], &[5.0], 8).unwrap(), 1.0);
        assert!(overlap_coefficient(&a, &b, 0).is_err());
    }

    #[test]
    fn detection_rate_directions() {
        let scores = vec![0.1, 0.5, 0.9];
        assert_eq!(
            detection_rate(&scores, 0.4, ScoreOrientation::HigherIsNovel).unwrap(),
            2.0 / 3.0
        );
        assert_eq!(
            detection_rate(&scores, 0.4, ScoreOrientation::LowerIsNovel).unwrap(),
            1.0 / 3.0
        );
        // Strict comparison: exact threshold is not novel.
        assert_eq!(
            detection_rate(&[0.4], 0.4, ScoreOrientation::HigherIsNovel).unwrap(),
            0.0
        );
    }

    #[test]
    fn roc_curve_endpoints_and_monotonicity() {
        let target = vec![0.1, 0.2, 0.35, 0.4];
        let novel = vec![0.3, 0.5, 0.6];
        let pts = roc_points(&target, &novel, ScoreOrientation::HigherIsNovel).unwrap();
        assert!(
            pts.first()
                .map(|p| p.fpr == 0.0 && p.tpr >= 0.0)
                .unwrap_or(false)
                || pts.iter().any(|p| p.fpr == 0.0)
        );
        assert!(pts.iter().any(|p| p.fpr == 1.0 && p.tpr == 1.0));
        for w in pts.windows(2) {
            assert!(w[0].fpr <= w[1].fpr + 1e-6);
            assert!(w[0].tpr <= w[1].tpr + 1e-6);
        }
    }

    #[test]
    fn roc_trapezoid_area_matches_auroc() {
        let target = vec![0.12, 0.2, 0.33, 0.4, 0.18, 0.27];
        let novel = vec![0.31, 0.5, 0.61, 0.25, 0.44];
        for orientation in [
            ScoreOrientation::HigherIsNovel,
            ScoreOrientation::LowerIsNovel,
        ] {
            let pts = roc_points(&target, &novel, orientation).unwrap();
            let mut area = 0.0f64;
            for w in pts.windows(2) {
                area += 0.5 * ((w[1].fpr - w[0].fpr) as f64) * ((w[0].tpr + w[1].tpr) as f64);
            }
            let direct = auroc(&target, &novel, orientation).unwrap() as f64;
            assert!(
                (area - direct).abs() < 1e-5,
                "{orientation:?}: trapezoid {area} vs auroc {direct}"
            );
        }
    }

    #[test]
    fn roc_endpoint_threshold_matches_orientation() {
        let target = vec![0.2, 0.4];
        let novel = vec![0.6, 0.8];
        let all_novel = |pts: &[RocPoint]| {
            *pts.iter()
                .find(|p| p.fpr == 1.0 && p.tpr == 1.0)
                .expect("endpoint present")
        };
        let hi = roc_points(&target, &novel, ScoreOrientation::HigherIsNovel).unwrap();
        assert_eq!(all_novel(&hi).threshold, f32::NEG_INFINITY);
        let lo = roc_points(&target, &novel, ScoreOrientation::LowerIsNovel).unwrap();
        assert_eq!(all_novel(&lo).threshold, f32::INFINITY);
    }

    #[test]
    fn roc_validates_inputs() {
        assert!(roc_points(&[], &[1.0], ScoreOrientation::HigherIsNovel).is_err());
        assert!(roc_points(&[1.0], &[f32::NAN], ScoreOrientation::HigherIsNovel).is_err());
    }

    /// Brute-force O(n·m) AUROC: the probability a random novel score
    /// outranks a random target score, ties counting half — the textbook
    /// definition the rank-sum implementation must agree with.
    fn auroc_brute_force(target: &[f32], novel: &[f32], orientation: ScoreOrientation) -> f32 {
        let flip = |v: f32| match orientation {
            ScoreOrientation::HigherIsNovel => v,
            ScoreOrientation::LowerIsNovel => -v,
        };
        let mut wins = 0.0f64;
        for &n in novel {
            for &t in target {
                match flip(n).total_cmp(&flip(t)) {
                    std::cmp::Ordering::Greater => wins += 1.0,
                    std::cmp::Ordering::Equal => wins += 0.5,
                    std::cmp::Ordering::Less => {}
                }
            }
        }
        (wins / (novel.len() as f64 * target.len() as f64)) as f32
    }

    #[test]
    fn auroc_matches_brute_force_on_tie_heavy_samples() {
        // Quantized scores force many ties — the tie-correction path.
        let target = vec![0.1, 0.2, 0.2, 0.2, 0.3, 0.3];
        let novel = vec![0.2, 0.3, 0.3, 0.4, 0.4, 0.1];
        for orientation in [
            ScoreOrientation::HigherIsNovel,
            ScoreOrientation::LowerIsNovel,
        ] {
            let fast = auroc(&target, &novel, orientation).unwrap();
            let slow = auroc_brute_force(&target, &novel, orientation);
            assert!(
                (fast - slow).abs() < 1e-6,
                "{orientation:?}: rank-sum {fast} vs brute force {slow}"
            );
        }
    }

    #[test]
    fn degenerate_one_class_samples_give_defined_results() {
        // All scores identical across both classes: exactly chance, not
        // NaN — the tie correction must keep the denominator honest.
        let constant = vec![0.5; 7];
        let a = auroc(&constant, &constant, ScoreOrientation::HigherIsNovel).unwrap();
        assert!((a - 0.5).abs() < 1e-6, "constant samples: auroc {a}");
        // Empty classes are a defined error, not a NaN.
        assert!(auroc(&[], &[], ScoreOrientation::HigherIsNovel).is_err());
        assert!(detection_rate(&[], 0.5, ScoreOrientation::HigherIsNovel).is_err());
        assert!(SeparationReport::compute(&[], &[1.0], ScoreOrientation::HigherIsNovel).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The rank-sum AUROC equals the brute-force pair count for
        /// arbitrary samples, both orientations.
        #[test]
        fn auroc_equals_brute_force(
            target in proptest::collection::vec(-10.0f32..10.0, 1..40),
            novel in proptest::collection::vec(-10.0f32..10.0, 1..40),
        ) {
            for orientation in [
                ScoreOrientation::HigherIsNovel,
                ScoreOrientation::LowerIsNovel,
            ] {
                let fast = auroc(&target, &novel, orientation).unwrap();
                let slow = auroc_brute_force(&target, &novel, orientation);
                proptest::prop_assert!(
                    (fast - slow).abs() < 1e-5,
                    "{:?}: rank-sum {} vs brute force {}", orientation, fast, slow
                );
            }
        }

        /// Quantizing to a coarse grid forces tie-heavy samples; the
        /// tie-corrected rank sum must still match, and flipping the
        /// orientation must reflect the value around 0.5.
        #[test]
        fn auroc_ties_and_orientation_antisymmetry(
            target in proptest::collection::vec(0i32..5, 1..30),
            novel in proptest::collection::vec(0i32..5, 1..30),
        ) {
            let target: Vec<f32> = target.iter().map(|&v| v as f32 / 4.0).collect();
            let novel: Vec<f32> = novel.iter().map(|&v| v as f32 / 4.0).collect();
            let hi = auroc(&target, &novel, ScoreOrientation::HigherIsNovel).unwrap();
            let slow = auroc_brute_force(&target, &novel, ScoreOrientation::HigherIsNovel);
            proptest::prop_assert!((hi - slow).abs() < 1e-5, "rank-sum {} vs brute {}", hi, slow);
            let lo = auroc(&target, &novel, ScoreOrientation::LowerIsNovel).unwrap();
            proptest::prop_assert!(
                (hi + lo - 1.0).abs() < 1e-5,
                "orientations must mirror around 0.5: {} + {}", hi, lo
            );
            proptest::prop_assert!((0.0..=1.0).contains(&hi) && hi.is_finite());
        }
    }

    #[test]
    fn report_aggregates_and_displays() {
        let target = vec![0.7, 0.72, 0.68];
        let novel = vec![0.05, 0.02, 0.1];
        let r = SeparationReport::compute(&target, &novel, ScoreOrientation::LowerIsNovel).unwrap();
        assert_eq!(r.auroc, 1.0);
        assert!(r.overlap < 0.01);
        assert!(r.target_mean > r.novel_mean);
        let s = r.to_string();
        assert!(s.contains("AUROC"));
    }
}
