#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

//! Image-similarity metrics and distribution statistics.
//!
//! The paper's central argument is a *metric* argument: pixel-wise MSE
//! cannot separate in-distribution reconstructions from novel ones once
//! images carry real-world variation, while SSIM (Wang & Bovik's
//! Structural Similarity index) can. This crate implements:
//!
//! * [`mse`] / [`psnr`] — the baseline fidelity measures,
//! * [`ssim`] / [`ssim_map`] / [`ssim_with_grad`] — windowed SSIM with the
//!   analytic gradient needed to *train* an autoencoder against an SSIM
//!   objective (Fig. 5/6/7), computed in `O(H·W)` with integral images,
//! * [`histogram::Histogram`] — the histogram series of Figs. 5 and 7,
//! * [`ecdf::Ecdf`] — empirical CDFs and the 99th-percentile threshold rule
//!   of Richter & Roy that the paper reuses,
//! * [`separation`] — AUROC, overlap and detection-rate summaries used to
//!   compare the three pipeline variants quantitatively.

pub mod ecdf;
pub mod histogram;
pub mod separation;

mod error;
mod fidelity;
mod msssim;
mod ssim;

pub use error::MetricsError;
pub use fidelity::{mse, psnr};
pub use msssim::{ms_ssim, MsSsimConfig};
pub use ssim::{ssim, ssim_map, ssim_with_grad, SsimConfig};

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, MetricsError>;
