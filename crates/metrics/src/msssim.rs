//! Multi-scale SSIM (Wang, Simoncelli & Bovik, 2003).
//!
//! MS-SSIM evaluates contrast/structure at several dyadic scales and
//! luminance only at the coarsest, making it less sensitive to the exact
//! viewing resolution than single-scale SSIM. Included as an extension so
//! the ablation benches can ask whether the paper's single-scale choice
//! costs anything.
//!
//! This implementation uses the simplified uniform-window machinery of
//! [`crate::ssim`] per scale and combines mean per-scale scores with the
//! standard exponents, truncated and re-normalised to however many scales
//! fit the image.

use vision::Image;

use crate::{MetricsError, Result, SsimConfig};

/// Standard five-scale MS-SSIM weights.
const STANDARD_WEIGHTS: [f32; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// Configuration for [`ms_ssim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsSsimConfig {
    /// Per-scale SSIM settings (window, stabilisers).
    pub base: SsimConfig,
    /// Number of dyadic scales (1–5). Scales that would shrink the image
    /// below the window are dropped automatically.
    pub scales: usize,
}

impl Default for MsSsimConfig {
    fn default() -> Self {
        MsSsimConfig {
            base: SsimConfig::default(),
            scales: 3,
        }
    }
}

/// Mean multi-scale SSIM between two same-size images.
///
/// Each scale halves the resolution (bilinear); per-scale mean SSIM
/// values `s_i` combine as `Π s_i^{w_i}` with the standard weights
/// re-normalised over the scales actually used. Negative per-scale means
/// are clamped to 0 (the geometric combination is undefined below zero),
/// so the result lies in `[0, 1]`.
///
/// # Errors
///
/// Fails when the images differ in size, `scales` is 0 or exceeds 5, or
/// the window does not fit even the first scale.
pub fn ms_ssim(x: &Image, y: &Image, cfg: &MsSsimConfig) -> Result<f32> {
    if cfg.scales == 0 || cfg.scales > STANDARD_WEIGHTS.len() {
        return Err(MetricsError::invalid(
            "ms_ssim",
            format!("scales must be in 1..=5, got {}", cfg.scales),
        ));
    }
    let mut xs = x.clone();
    let mut ys = y.clone();
    let mut scores = Vec::with_capacity(cfg.scales);
    for level in 0..cfg.scales {
        if xs.height() < cfg.base.window || xs.width() < cfg.base.window {
            break;
        }
        scores.push(crate::ssim(&xs, &ys, &cfg.base)?);
        if level + 1 < cfg.scales {
            let (nh, nw) = (xs.height() / 2, xs.width() / 2);
            if nh == 0 || nw == 0 {
                break;
            }
            xs = xs
                .resize_bilinear(nh, nw)
                .map_err(|e| MetricsError::invalid("ms_ssim", e.to_string()))?;
            ys = ys
                .resize_bilinear(nh, nw)
                .map_err(|e| MetricsError::invalid("ms_ssim", e.to_string()))?;
        }
    }
    if scores.is_empty() {
        return Err(MetricsError::invalid(
            "ms_ssim",
            format!(
                "window {} does not fit image {}x{}",
                cfg.base.window,
                x.height(),
                x.width()
            ),
        ));
    }
    let weights = &STANDARD_WEIGHTS[..scores.len()];
    let total: f32 = weights.iter().sum();
    let mut acc = 1.0f64;
    for (s, w) in scores.iter().zip(weights) {
        acc *= (s.max(0.0) as f64).powf((w / total) as f64);
    }
    Ok(acc as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(h: usize, w: usize, seed: u64) -> Image {
        Image::from_fn(h, w, |y, x| {
            0.3 + 0.4 * ((y as f32 * 0.7 + x as f32 * 0.4 + seed as f32).sin() * 0.5 + 0.5)
        })
        .unwrap()
    }

    #[test]
    fn identical_images_score_one() {
        let img = textured(48, 64, 1);
        let s = ms_ssim(&img, &img, &MsSsimConfig::default()).unwrap();
        assert!((s - 1.0).abs() < 1e-5, "MS-SSIM(x,x) = {s}");
    }

    #[test]
    fn score_is_bounded_and_orders_corruption() {
        let x = textured(48, 64, 2);
        let mild = x.map(|v| (v + 0.02).min(1.0));
        let heavy = x.map(|v| 1.0 - v);
        let cfg = MsSsimConfig::default();
        let s_mild = ms_ssim(&x, &mild, &cfg).unwrap();
        let s_heavy = ms_ssim(&x, &heavy, &cfg).unwrap();
        assert!((0.0..=1.0).contains(&s_mild));
        assert!((0.0..=1.0).contains(&s_heavy));
        assert!(s_mild > s_heavy);
    }

    #[test]
    fn single_scale_matches_plain_ssim_when_positive() {
        let x = textured(32, 40, 3);
        let y = textured(32, 40, 5);
        let cfg = MsSsimConfig {
            base: SsimConfig::with_window(7),
            scales: 1,
        };
        let ms = ms_ssim(&x, &y, &cfg).unwrap();
        let ss = crate::ssim(&x, &y, &SsimConfig::with_window(7)).unwrap();
        if ss >= 0.0 {
            assert!((ms - ss).abs() < 1e-5, "{ms} vs {ss}");
        }
    }

    #[test]
    fn small_images_drop_unusable_scales() {
        // 20×24 with window 11: second scale (10×12) no longer fits, so
        // only one scale contributes — still a valid score.
        let x = textured(20, 24, 6);
        let y = textured(20, 24, 7);
        let cfg = MsSsimConfig {
            base: SsimConfig::default(),
            scales: 5,
        };
        let s = ms_ssim(&x, &y, &cfg).unwrap();
        assert!(s.is_finite());
    }

    #[test]
    fn validates_config() {
        let img = textured(32, 32, 0);
        let bad = MsSsimConfig {
            scales: 0,
            ..Default::default()
        };
        assert!(ms_ssim(&img, &img, &bad).is_err());
        let too_many = MsSsimConfig {
            scales: 6,
            ..Default::default()
        };
        assert!(ms_ssim(&img, &img, &too_many).is_err());
        let tiny = textured(4, 4, 0);
        assert!(ms_ssim(&tiny, &tiny, &MsSsimConfig::default()).is_err());
        let other = textured(32, 30, 0);
        assert!(ms_ssim(&img, &other, &MsSsimConfig::default()).is_err());
    }
}
