//! Structural Similarity (SSIM) with an analytic gradient.
//!
//! SSIM compares two images through local luminance, contrast and structure
//! statistics over sliding windows (the paper uses 11×11 patches with
//! α = β = γ = 1, reducing to the familiar two-factor form):
//!
//! ```text
//! SSIM_w(x, y) = (2 μx μy + C1)(2 σxy + C2)
//!                ───────────────────────────
//!                (μx² + μy² + C1)(σx² + σy² + C2)
//! ```
//!
//! The image-level score is the mean over all window positions. Because
//! the paper *trains* its autoencoder against SSIM, we also need
//! `∂SSIM/∂y` — derived in closed form below and evaluated in `O(H·W)`
//! using integral images, so SSIM-loss training costs the same order as
//! MSE-loss training.
//!
//! # Gradient derivation
//!
//! With `n` pixels per window, per-window statistics `μx, μy, σx², σy²,
//! σxy` (population normalisation), `A1 = 2μxμy + C1`, `A2 = 2σxy + C2`,
//! `B1 = μx² + μy² + C1`, `B2 = σx² + σy² + C2`, and `S = A1·A2/(B1·B2)`:
//!
//! ```text
//! ∂S/∂y_j = (2 / (n·B1·B2)) ·
//!           [ μx·A2 + (x_j − μx)·A1 − S·(μy·B2 + (y_j − μy)·B1) ]
//! ```
//!
//! Grouping terms that multiply `x_j`, `y_j` and `1` lets the sum over all
//! windows containing a pixel be evaluated with three box filters — the
//! same trick used by Zhao et al., *Loss Functions for Image Restoration
//! with Neural Networks* (2016).

use vision::Image;

use crate::{MetricsError, Result};

/// Configuration for SSIM computation.
///
/// # Example
///
/// ```
/// use metrics::SsimConfig;
///
/// let cfg = SsimConfig::default();
/// assert_eq!(cfg.window, 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConfig {
    /// Side length of the square sliding window (paper: 11).
    pub window: usize,
    /// Luminance stabiliser; `(0.01)²` for unit-range images.
    pub c1: f32,
    /// Contrast stabiliser; `(0.03)²` for unit-range images.
    pub c2: f32,
}

impl Default for SsimConfig {
    fn default() -> Self {
        SsimConfig {
            window: 11,
            c1: 0.01 * 0.01,
            c2: 0.03 * 0.03,
        }
    }
}

impl SsimConfig {
    /// A config with a custom window size and the standard stabilisers.
    pub fn with_window(window: usize) -> Self {
        SsimConfig {
            window,
            ..Self::default()
        }
    }

    fn validate(&self, h: usize, w: usize) -> Result<()> {
        if self.window == 0 {
            return Err(MetricsError::invalid("ssim", "window must be non-zero"));
        }
        if self.window > h || self.window > w {
            return Err(MetricsError::invalid(
                "ssim",
                format!("window {} larger than image {h}x{w}", self.window),
            ));
        }
        if !self.c1.is_finite() || !self.c2.is_finite() || self.c1 <= 0.0 || self.c2 <= 0.0 {
            return Err(MetricsError::invalid(
                "ssim",
                "stabilisers c1 and c2 must be positive and finite",
            ));
        }
        Ok(())
    }
}

/// Summed-area table over an `h × w` buffer, `(h+1) × (w+1)` entries in f64.
///
/// The table borrows its storage from the [`ndtensor::scratch`] pool and
/// returns it on drop, so repeated SSIM evaluation (the per-frame scoring
/// hot path) allocates nothing once warmed.
struct Integral {
    sums: Vec<f64>,
    w1: usize,
}

impl Drop for Integral {
    fn drop(&mut self) {
        ndtensor::scratch::give_f64(std::mem::take(&mut self.sums));
    }
}

impl Integral {
    fn build(data: impl Iterator<Item = f64>, h: usize, w: usize) -> Self {
        let w1 = w + 1;
        let mut sums = ndtensor::scratch::take_zeroed_f64((h + 1) * w1);
        let mut it = data;
        for y in 0..h {
            let mut row = 0.0f64;
            for x in 0..w {
                row += it.next().expect("iterator length matches h*w"); // sncheck:allow(no-panic-in-lib, hot-path-transitive-panic): all callers pass h*w-length iterators built in this module
                sums[(y + 1) * w1 + (x + 1)] = sums[y * w1 + (x + 1)] + row;
            }
        }
        Integral { sums, w1 }
    }

    /// Sum over the rectangle with top-left `(y, x)` and size `k × k`.
    #[inline]
    fn window(&self, y: usize, x: usize, kh: usize, kw: usize) -> f64 {
        let w1 = self.w1;
        self.sums[(y + kh) * w1 + (x + kw)] + self.sums[y * w1 + x]
            - self.sums[y * w1 + (x + kw)]
            - self.sums[(y + kh) * w1 + x]
    }
}

fn check_sizes(x: &Image, y: &Image, cfg: &SsimConfig) -> Result<(usize, usize)> {
    if x.height() != y.height() || x.width() != y.width() {
        return Err(MetricsError::invalid(
            "ssim",
            format!(
                "image sizes differ: {}x{} vs {}x{}",
                x.height(),
                x.width(),
                y.height(),
                y.width()
            ),
        ));
    }
    cfg.validate(x.height(), x.width())?;
    Ok((x.height(), x.width()))
}

struct WindowStats {
    mx: f64,
    my: f64,
    vx: f64,
    vy: f64,
    cxy: f64,
}

fn per_window<F: FnMut(usize, usize, WindowStats)>(
    x: &Image,
    y: &Image,
    cfg: &SsimConfig,
    mut visit: F,
) -> Result<()> {
    let (h, w) = check_sizes(x, y, cfg)?;
    let k = cfg.window;
    let n = (k * k) as f64;
    let xs = x.as_slice();
    let ys = y.as_slice();
    let ix = Integral::build(xs.iter().map(|&v| v as f64), h, w);
    let iy = Integral::build(ys.iter().map(|&v| v as f64), h, w);
    let ixx = Integral::build(xs.iter().map(|&v| (v as f64) * (v as f64)), h, w);
    let iyy = Integral::build(ys.iter().map(|&v| (v as f64) * (v as f64)), h, w);
    let ixy = Integral::build(
        xs.iter().zip(ys).map(|(&a, &b)| (a as f64) * (b as f64)),
        h,
        w,
    );
    for wy in 0..=(h - k) {
        for wx in 0..=(w - k) {
            let sx = ix.window(wy, wx, k, k);
            let sy = iy.window(wy, wx, k, k);
            let sxx = ixx.window(wy, wx, k, k);
            let syy = iyy.window(wy, wx, k, k);
            let sxy = ixy.window(wy, wx, k, k);
            let mx = sx / n;
            let my = sy / n;
            // Population variance/covariance; max(0) guards tiny negative
            // values from floating-point cancellation.
            let vx = (sxx / n - mx * mx).max(0.0);
            let vy = (syy / n - my * my).max(0.0);
            let cxy = sxy / n - mx * my;
            visit(
                wy,
                wx,
                WindowStats {
                    mx,
                    my,
                    vx,
                    vy,
                    cxy,
                },
            );
        }
    }
    Ok(())
}

fn window_score(s: &WindowStats, cfg: &SsimConfig) -> (f64, f64, f64, f64, f64) {
    let c1 = cfg.c1 as f64;
    let c2 = cfg.c2 as f64;
    let a1 = 2.0 * s.mx * s.my + c1;
    let a2 = 2.0 * s.cxy + c2;
    let b1 = s.mx * s.mx + s.my * s.my + c1;
    let b2 = s.vx + s.vy + c2;
    (a1 * a2 / (b1 * b2), a1, a2, b1, b2)
}

/// Mean SSIM between two same-size images.
///
/// Returns a value in `[-1, 1]`: 1.0 = identical structure, 0.0 = no
/// correspondence, −1.0 = perfect anti-correlation (paper §III.C).
///
/// # Errors
///
/// Fails when the images differ in size, the window exceeds the image, or
/// the config is invalid.
///
/// # Example
///
/// ```
/// use metrics::{ssim, SsimConfig};
/// use vision::Image;
///
/// # fn main() -> Result<(), metrics::MetricsError> {
/// let img = Image::from_fn(16, 16, |y, x| ((y + x) % 7) as f32 / 6.0).unwrap();
/// let score = ssim(&img, &img, &SsimConfig::default())?;
/// assert!((score - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn ssim(x: &Image, y: &Image, cfg: &SsimConfig) -> Result<f32> {
    let mut total = 0.0f64;
    let mut count = 0usize;
    per_window(x, y, cfg, |_, _, s| {
        total += window_score(&s, cfg).0;
        count += 1;
    })?;
    Ok((total / count as f64) as f32)
}

/// Per-window SSIM map: entry `(wy, wx)` is the SSIM of the window with
/// that top-left corner. The map has size `(H−k+1) × (W−k+1)`.
///
/// # Errors
///
/// Same conditions as [`ssim`].
pub fn ssim_map(x: &Image, y: &Image, cfg: &SsimConfig) -> Result<Image> {
    let (h, w) = check_sizes(x, y, cfg)?;
    let k = cfg.window;
    let mut out = Image::new(h - k + 1, w - k + 1)
        .map_err(|e| MetricsError::invalid("ssim_map", e.to_string()))?;
    per_window(x, y, cfg, |wy, wx, s| {
        out.put(wy, wx, window_score(&s, cfg).0 as f32);
    })?;
    Ok(out)
}

/// Mean SSIM together with its gradient with respect to the second image
/// (`∂ mean-SSIM / ∂y`), as needed to train a reconstruction model that
/// *maximises* SSIM.
///
/// The returned gradient has the same dimensions as the inputs.
///
/// # Errors
///
/// Same conditions as [`ssim`].
pub fn ssim_with_grad(x: &Image, y: &Image, cfg: &SsimConfig) -> Result<(f32, Image)> {
    let (h, w) = check_sizes(x, y, cfg)?;
    let k = cfg.window;
    let n = (k * k) as f64;
    let mh = h - k + 1;
    let mw = w - k + 1;
    let windows = (mh * mw) as f64;

    // Per-window coefficient maps such that, for pixel j inside window w:
    //   ∂S_w/∂y_j = x_j·coef_x[w] + y_j·coef_y[w] + coef_c[w].
    let mut coef_x = ndtensor::scratch::take_zeroed_f64(mh * mw);
    let mut coef_y = ndtensor::scratch::take_zeroed_f64(mh * mw);
    let mut coef_c = ndtensor::scratch::take_zeroed_f64(mh * mw);
    let mut total = 0.0f64;
    per_window(x, y, cfg, |wy, wx, s| {
        let (score, a1, a2, b1, b2) = window_score(&s, cfg);
        total += score;
        let scale = 2.0 / (n * b1 * b2);
        // ∂S/∂y_j = scale·[ μx·A2 + (x_j−μx)·A1 − S·(μy·B2 + (y_j−μy)·B1) ]
        //         = x_j·(scale·A1) + y_j·(−scale·S·B1)
        //           + scale·(μx·A2 − μx·A1 − S·μy·B2 + S·μy·B1)
        let idx = wy * mw + wx;
        coef_x[idx] = scale * a1;
        coef_y[idx] = -scale * score * b1;
        coef_c[idx] = scale * (s.mx * a2 - s.mx * a1 - score * s.my * b2 + score * s.my * b1);
    })?;

    // Sum each coefficient over all windows covering a pixel with a second
    // round of integral images over the window-index grid.
    let icx = Integral::build(coef_x.iter().copied(), mh, mw);
    let icy = Integral::build(coef_y.iter().copied(), mh, mw);
    let icc = Integral::build(coef_c.iter().copied(), mh, mw);
    ndtensor::scratch::give_f64(coef_x);
    ndtensor::scratch::give_f64(coef_y);
    ndtensor::scratch::give_f64(coef_c);

    let xs = x.as_slice();
    let ys = y.as_slice();
    let mut grad = Image::new(h, w).map_err(|e| MetricsError::invalid("ssim", e.to_string()))?;
    for py in 0..h {
        // Windows covering row py have top row wy in [py−k+1, py] ∩ [0, mh).
        let wy0 = py.saturating_sub(k - 1).min(mh - 1);
        let wy1 = py.min(mh - 1);
        for px in 0..w {
            let wx0 = px.saturating_sub(k - 1).min(mw - 1);
            let wx1 = px.min(mw - 1);
            let (rh, rw) = (wy1 - wy0 + 1, wx1 - wx0 + 1);
            let sx = icx.window(wy0, wx0, rh, rw);
            let sy = icy.window(wy0, wx0, rh, rw);
            let sc = icc.window(wy0, wx0, rh, rw);
            let j = py * w + px;
            let g = (xs[j] as f64) * sx + (ys[j] as f64) * sy + sc;
            grad.put(py, px, (g / windows) as f32);
        }
    }
    Ok(((total / windows) as f32, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vision::perturb;

    fn textured(h: usize, w: usize, seed: u64) -> Image {
        Image::from_fn(h, w, |y, x| {
            let v = (y as u64 * 31 + x as u64 * 17 + seed * 101) % 97;
            0.2 + 0.6 * (v as f32 / 96.0)
        })
        .unwrap()
    }

    /// Naive direct SSIM used as the oracle.
    fn naive_ssim(x: &Image, y: &Image, cfg: &SsimConfig) -> f32 {
        let k = cfg.window;
        let n = (k * k) as f64;
        let mut total = 0.0f64;
        let mut count = 0usize;
        for wy in 0..=(x.height() - k) {
            for wx in 0..=(x.width() - k) {
                let mut sx = 0.0f64;
                let mut sy = 0.0f64;
                let mut sxx = 0.0f64;
                let mut syy = 0.0f64;
                let mut sxy = 0.0f64;
                for dy in 0..k {
                    for dx in 0..k {
                        let a = x.get(wy + dy, wx + dx) as f64;
                        let b = y.get(wy + dy, wx + dx) as f64;
                        sx += a;
                        sy += b;
                        sxx += a * a;
                        syy += b * b;
                        sxy += a * b;
                    }
                }
                let mx = sx / n;
                let my = sy / n;
                let vx = sxx / n - mx * mx;
                let vy = syy / n - my * my;
                let cxy = sxy / n - mx * my;
                let c1 = cfg.c1 as f64;
                let c2 = cfg.c2 as f64;
                total += (2.0 * mx * my + c1) * (2.0 * cxy + c2)
                    / ((mx * mx + my * my + c1) * (vx + vy + c2));
                count += 1;
            }
        }
        (total / count as f64) as f32
    }

    #[test]
    fn identical_images_score_one() {
        let img = textured(20, 30, 1);
        let s = ssim(&img, &img, &SsimConfig::default()).unwrap();
        assert!((s - 1.0).abs() < 1e-6, "SSIM(x,x) = {s}");
    }

    #[test]
    fn inverted_image_scores_negative() {
        // Zero-mean anticorrelated structure → strongly negative SSIM.
        let x = Image::from_fn(16, 16, |y, x| 0.5 + 0.4 * (((y + x) % 2) as f32 - 0.5)).unwrap();
        let y = x.map(|v| 1.0 - v);
        let s = ssim(&x, &y, &SsimConfig::default()).unwrap();
        assert!(s < -0.5, "anticorrelated SSIM = {s}");
    }

    #[test]
    fn matches_naive_reference() {
        for seed in 0..3 {
            let x = textured(18, 24, seed);
            let y = textured(18, 24, seed + 10);
            for k in [3usize, 7, 11] {
                let cfg = SsimConfig::with_window(k);
                let fast = ssim(&x, &y, &cfg).unwrap();
                let slow = naive_ssim(&x, &y, &cfg);
                assert!(
                    (fast - slow).abs() < 1e-5,
                    "k={k} seed={seed}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn score_is_symmetric() {
        let x = textured(16, 20, 4);
        let y = textured(16, 20, 9);
        let cfg = SsimConfig::default();
        let a = ssim(&x, &y, &cfg).unwrap();
        let b = ssim(&y, &x, &cfg).unwrap();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn validates_inputs() {
        let x = Image::new(8, 8).unwrap();
        let cfg = SsimConfig::default(); // window 11 > 8
        assert!(ssim(&x, &x, &cfg).is_err());
        let y = Image::new(8, 9).unwrap();
        assert!(ssim(&x, &y, &SsimConfig::with_window(3)).is_err());
        assert!(ssim(&x, &x, &SsimConfig::with_window(0)).is_err());
        let mut bad = SsimConfig::with_window(3);
        bad.c1 = 0.0;
        assert!(ssim(&x, &x, &bad).is_err());
    }

    #[test]
    fn map_dimensions_and_values() {
        let x = textured(14, 18, 2);
        let y = perturb::adjust_brightness(&x, 0.05);
        let cfg = SsimConfig::with_window(5);
        let map = ssim_map(&x, &y, &cfg).unwrap();
        assert_eq!((map.height(), map.width()), (10, 14));
        let mean_of_map = map.mean();
        let s = ssim(&x, &y, &cfg).unwrap();
        assert!((mean_of_map - s).abs() < 1e-5);
    }

    #[test]
    fn constant_images_with_equal_mean_score_one() {
        let a = Image::filled(12, 12, 0.3).unwrap();
        let s = ssim(&a, &a.clone(), &SsimConfig::default()).unwrap();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn figure3_property_noise_hurts_more_than_brightness_at_equal_mse() {
        // The paper's Fig. 3: calibrate Gaussian noise and a brightness
        // shift to (approximately) the same MSE; SSIM must judge the noisy
        // image far less similar than the brightened one. Natural road
        // images are locally smooth, so the base image here is too.
        let base = Image::from_fn(40, 60, |y, x| {
            0.5 + 0.25 * (y as f32 / 6.0).sin() * (x as f32 / 9.0).cos()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let sigma = 0.12;
        let noisy = perturb::add_gaussian_noise(&base, &mut rng, sigma).unwrap();
        let noise_mse = crate::mse(&base, &noisy).unwrap();
        // Brightness delta with the same MSE: delta = sqrt(mse).
        let bright = perturb::adjust_brightness(&base, noise_mse.sqrt());
        let bright_mse = crate::mse(&base, &bright).unwrap();
        assert!(
            (noise_mse - bright_mse).abs() / noise_mse < 0.2,
            "MSEs not comparable: {noise_mse} vs {bright_mse}"
        );
        let cfg = SsimConfig::default();
        let s_noise = ssim(&base, &noisy, &cfg).unwrap();
        let s_bright = ssim(&base, &bright, &cfg).unwrap();
        assert!(
            s_bright > s_noise + 0.2,
            "SSIM noise {s_noise} vs brightness {s_bright}"
        );
        assert!(
            s_bright > 0.8,
            "brightness SSIM unexpectedly low: {s_bright}"
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let x = textured(12, 14, 3);
        let mut y = textured(12, 14, 8);
        let cfg = SsimConfig::with_window(5);
        let (_, grad) = ssim_with_grad(&x, &y, &cfg).unwrap();
        let eps = 1e-3f32;
        for &(py, px) in &[(0usize, 0usize), (5, 7), (11, 13), (3, 12), (6, 0)] {
            let orig = y.get(py, px);
            y.put(py, px, orig + eps);
            let plus = ssim(&x, &y, &cfg).unwrap();
            y.put(py, px, orig - eps);
            let minus = ssim(&x, &y, &cfg).unwrap();
            y.put(py, px, orig);
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grad.get(py, px);
            assert!(
                (numeric - analytic).abs() < 2e-3 + 0.05 * numeric.abs(),
                "grad at ({py},{px}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_at_identity_is_tiny() {
        // SSIM is maximised at y = x, so the gradient there is ~0.
        let x = textured(16, 16, 5);
        let (s, grad) = ssim_with_grad(&x, &x.clone(), &SsimConfig::with_window(7)).unwrap();
        assert!((s - 1.0).abs() < 1e-6);
        for &g in grad.as_slice() {
            assert!(g.abs() < 1e-4, "gradient at optimum: {g}");
        }
    }

    #[test]
    fn gradient_ascent_improves_ssim() {
        // A few gradient steps on y must increase SSIM(x, y).
        let x = textured(16, 16, 6);
        let mut y = Image::filled(16, 16, 0.5).unwrap();
        let cfg = SsimConfig::with_window(5);
        let (mut prev, _) = ssim_with_grad(&x, &y, &cfg).unwrap();
        for _ in 0..20 {
            let (_, grad) = ssim_with_grad(&x, &y, &cfg).unwrap();
            for (p, g) in y.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *p += 5.0 * g;
            }
        }
        let (after, _) = ssim_with_grad(&x, &y, &cfg).unwrap();
        assert!(
            after > prev + 0.05,
            "gradient ascent did not improve: {prev} → {after}"
        );
        prev = after;
        let _ = prev;
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn score_is_bounded(seed_a in 0u64..50, seed_b in 0u64..50) {
            let x = textured(13, 15, seed_a);
            let y = textured(13, 15, seed_b);
            let s = ssim(&x, &y, &SsimConfig::with_window(5)).unwrap();
            prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&s));
        }

        #[test]
        fn more_noise_means_lower_ssim(seed in 0u64..30) {
            let x = textured(20, 20, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let mild = perturb::add_gaussian_noise(&x, &mut rng, 0.03).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let heavy = perturb::add_gaussian_noise(&x, &mut rng, 0.25).unwrap();
            let cfg = SsimConfig::with_window(7);
            let s_mild = ssim(&x, &mild, &cfg).unwrap();
            let s_heavy = ssim(&x, &heavy, &cfg).unwrap();
            prop_assert!(s_mild > s_heavy);
        }
    }
}
