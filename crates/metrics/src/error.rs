use std::fmt;

use ndtensor::TensorError;

/// Error type for metric computation.
#[derive(Debug)]
pub enum MetricsError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A metric-level invariant was violated.
    Invalid {
        /// Short name of the metric or operation that failed.
        op: &'static str,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl MetricsError {
    /// Builds an [`MetricsError::Invalid`].
    pub fn invalid(op: &'static str, reason: impl Into<String>) -> Self {
        MetricsError::Invalid {
            op,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::Tensor(e) => write!(f, "tensor error: {e}"),
            MetricsError::Invalid { op, reason } => write!(f, "{op}: {reason}"),
        }
    }
}

impl std::error::Error for MetricsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MetricsError::Tensor(e) => Some(e),
            MetricsError::Invalid { .. } => None,
        }
    }
}

impl From<TensorError> for MetricsError {
    fn from(e: TensorError) -> Self {
        MetricsError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = MetricsError::invalid("ssim", "window larger than image");
        assert!(e.to_string().contains("ssim"));
        assert!(e.source().is_none());
        let e = MetricsError::from(TensorError::invalid("x", "y"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsError>();
    }
}
