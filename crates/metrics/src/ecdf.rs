//! Empirical cumulative distribution functions and percentile thresholds.
//!
//! Richter & Roy (paper reference 9) classify an input as novel when its
//! reconstruction loss falls outside the 99th percentile of the training
//! losses' empirical CDF; the paper reuses the same rule for SSIM (where
//! *low* similarity is suspicious). [`Ecdf`] provides both directions.

use crate::{MetricsError, Result};

/// An empirical CDF over a finite sample.
///
/// # Example
///
/// ```
/// use metrics::ecdf::Ecdf;
///
/// # fn main() -> Result<(), metrics::MetricsError> {
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(e.cdf(2.5), 0.5);
/// assert_eq!(e.quantile(0.5)?, 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f32>,
}

impl Ecdf {
    /// Builds an ECDF from samples (takes ownership; sorts internally).
    ///
    /// # Errors
    ///
    /// Fails when the sample is empty or contains non-finite values.
    pub fn new(mut values: Vec<f32>) -> Result<Self> {
        if values.is_empty() {
            return Err(MetricsError::invalid("ecdf", "sample must be non-empty"));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(MetricsError::invalid(
                "ecdf",
                "sample contains non-finite values",
            ));
        }
        values.sort_by(f32::total_cmp);
        Ok(Ecdf { sorted: values })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` (construction rejects empty samples).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted sample.
    pub fn values(&self) -> &[f32] {
        &self.sorted
    }

    /// `F(x)`: the fraction of samples `<= x`.
    pub fn cdf(&self, x: f32) -> f32 {
        // partition_point returns the count of elements <= x on a sorted
        // slice when probing with `v <= x`.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f32 / self.sorted.len() as f32
    }

    /// The `q`-quantile for `q ∈ [0, 1]` using the nearest-rank method
    /// (`q = 0` gives the minimum, `q = 1` the maximum).
    ///
    /// # Errors
    ///
    /// Fails when `q` is outside `[0, 1]` or not finite.
    pub fn quantile(&self, q: f32) -> Result<f32> {
        if !q.is_finite() || !(0.0..=1.0).contains(&q) {
            return Err(MetricsError::invalid(
                "ecdf",
                format!("quantile must be in [0, 1], got {q}"),
            ));
        }
        // q = 0 needs no special case: ceil(0) = 0 clamps to rank 1, the
        // minimum — the same value an explicit branch would return.
        let n = self.sorted.len();
        let rank = (q * n as f32).ceil() as usize;
        Ok(self.sorted[rank.clamp(1, n) - 1])
    }

    /// The Richter & Roy novelty threshold for a *loss-like* score
    /// (bigger = worse): the `percentile`-th percentile of the training
    /// scores. A test score **above** this value is classified novel.
    ///
    /// # Errors
    ///
    /// Fails when `percentile` is outside `[0, 100]`.
    pub fn upper_threshold(&self, percentile: f32) -> Result<f32> {
        self.quantile(percentile / 100.0)
    }

    /// The symmetric threshold for a *similarity-like* score (bigger =
    /// better, e.g. SSIM): the `(100 − percentile)`-th percentile. A test
    /// score **below** this value is classified novel.
    ///
    /// # Errors
    ///
    /// Fails when `percentile` is outside `[0, 100]`.
    pub fn lower_threshold(&self, percentile: f32) -> Result<f32> {
        self.quantile((100.0 - percentile) / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Ecdf::new(vec![]).is_err());
        assert!(Ecdf::new(vec![1.0, f32::NAN]).is_err());
        assert!(Ecdf::new(vec![0.0]).is_ok());
    }

    #[test]
    fn cdf_step_values() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let e = Ecdf::new((1..=100).map(|i| i as f32).collect()).unwrap();
        assert_eq!(e.quantile(0.0).unwrap(), 1.0);
        assert_eq!(e.quantile(0.5).unwrap(), 50.0);
        assert_eq!(e.quantile(0.99).unwrap(), 99.0);
        assert_eq!(e.quantile(1.0).unwrap(), 100.0);
        assert!(e.quantile(1.5).is_err());
        assert!(e.quantile(-0.1).is_err());
    }

    #[test]
    fn thresholds_for_both_directions() {
        let e = Ecdf::new((1..=100).map(|i| i as f32).collect()).unwrap();
        // Loss-like: 99th percentile.
        assert_eq!(e.upper_threshold(99.0).unwrap(), 99.0);
        // Similarity-like: 1st percentile.
        assert_eq!(e.lower_threshold(99.0).unwrap(), 1.0);
    }

    #[test]
    fn single_sample_ecdf() {
        let e = Ecdf::new(vec![5.0]).unwrap();
        assert_eq!(e.quantile(0.5).unwrap(), 5.0);
        assert_eq!(e.cdf(4.9), 0.0);
        assert_eq!(e.cdf(5.0), 1.0);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(mut v in proptest::collection::vec(-100.0f32..100.0, 1..50)) {
            v.retain(|x| x.is_finite());
            prop_assume!(!v.is_empty());
            let e = Ecdf::new(v).unwrap();
            let probes: Vec<f32> = (-10..=10).map(|i| i as f32 * 12.0).collect();
            for w in probes.windows(2) {
                prop_assert!(e.cdf(w[0]) <= e.cdf(w[1]));
            }
        }

        #[test]
        fn quantile_of_cdf_roundtrip(v in proptest::collection::vec(-50.0f32..50.0, 1..40), q in 0.01f32..1.0) {
            let e = Ecdf::new(v).unwrap();
            let x = e.quantile(q).unwrap();
            // At least a q-fraction of samples are <= quantile(q).
            prop_assert!(e.cdf(x) + 1e-6 >= q);
        }
    }
}
