//! Fixed-range histograms for score distributions (Figs. 5 and 7).

use crate::{MetricsError, Result};

/// A fixed-range, equal-width histogram over `f32` samples.
///
/// Out-of-range samples are clamped into the first/last bin so that no
/// score silently disappears from a figure.
///
/// # Example
///
/// ```
/// use metrics::histogram::Histogram;
///
/// # fn main() -> Result<(), metrics::MetricsError> {
/// let h = Histogram::from_values(&[0.1, 0.2, 0.9], 0.0, 1.0, 10)?;
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.counts()[1], 1); // 0.1 lands in bin [0.1, 0.2)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi]` with `bins` bins.
    ///
    /// # Errors
    ///
    /// Fails when `bins == 0`, the bounds are not finite, or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(MetricsError::invalid("histogram", "bins must be non-zero"));
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(MetricsError::invalid(
                "histogram",
                format!("invalid range [{lo}, {hi}]"),
            ));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        })
    }

    /// Builds a histogram from samples.
    ///
    /// Non-finite samples are rejected with an error (they indicate an
    /// upstream bug worth surfacing, not a plotting concern).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Histogram::new`], plus non-finite samples.
    pub fn from_values(values: &[f32], lo: f32, hi: f32, bins: usize) -> Result<Self> {
        let mut h = Self::new(lo, hi, bins)?;
        for &v in values {
            h.add(v)?;
        }
        Ok(h)
    }

    /// Adds one sample (clamped into range).
    ///
    /// # Errors
    ///
    /// Fails when the sample is not finite.
    pub fn add(&mut self, value: f32) -> Result<()> {
        if !value.is_finite() {
            return Err(MetricsError::invalid(
                "histogram",
                format!("sample is not finite: {value}"),
            ));
        }
        let bins = self.counts.len();
        let t = (value - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f32).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        Ok(())
    }

    /// The lower bound of the range.
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// The upper bound of the range.
    pub fn hi(&self) -> f32 {
        self.hi
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Centre value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= bins()`.
    pub fn bin_center(&self, i: usize) -> f32 {
        assert!(i < self.bins(), "bin index {i} out of range");
        let width = (self.hi - self.lo) / self.bins() as f32;
        self.lo + (i as f32 + 0.5) * width
    }

    /// Relative frequencies (each count divided by the total; all zeros
    /// when empty).
    pub fn frequencies(&self) -> Vec<f32> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.bins()];
        }
        self.counts
            .iter()
            .map(|&c| c as f32 / total as f32)
            .collect()
    }

    /// Renders the histogram as fixed-width text rows
    /// (`center  count  bar`), the format the figure binaries print.
    pub fn render_rows(&self, bar_width: usize) -> Vec<String> {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let bar_len = ((c as f64 / max as f64) * bar_width as f64).round() as usize;
                format!(
                    "{:>9.4} {:>7} {}",
                    self.bin_center(i),
                    c,
                    "#".repeat(bar_len)
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(f32::NAN, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 4).is_ok());
    }

    #[test]
    fn samples_land_in_expected_bins() {
        let h = Histogram::from_values(&[0.05, 0.15, 0.151, 0.95], 0.0, 1.0, 10).unwrap();
        assert_eq!(h.counts(), &[1, 2, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_samples_clamp_to_edge_bins() {
        let h = Histogram::from_values(&[-5.0, 5.0, 1.0], 0.0, 1.0, 4).unwrap();
        assert_eq!(h.counts()[0], 1);
        // 1.0 is exactly hi → last bin; 5.0 clamps to last bin too.
        assert_eq!(h.counts()[3], 2);
    }

    #[test]
    fn non_finite_samples_are_rejected() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert!(h.add(f32::NAN).is_err());
        assert!(h.add(f32::INFINITY).is_err());
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!((h.bin_center(0) - 0.125).abs() < 1e-6);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-6);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let h = Histogram::from_values(&[0.1, 0.2, 0.3, 0.9], 0.0, 1.0, 5).unwrap();
        let sum: f32 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        let empty = Histogram::new(0.0, 1.0, 5).unwrap();
        assert!(empty.frequencies().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn render_rows_shape() {
        let h = Histogram::from_values(&[0.1, 0.1, 0.8], 0.0, 1.0, 4).unwrap();
        let rows = h.render_rows(10);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].contains("##"));
        // Largest bin gets the full bar.
        assert!(rows[0].ends_with(&"#".repeat(10)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_center_bounds() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.bin_center(2);
    }
}
