//! Pixel-wise fidelity measures: MSE and PSNR.

use vision::Image;

use crate::{MetricsError, Result};

/// Mean squared error between two same-size images,
/// `MSE(x, y) = (1/K) Σ (x[k] − y[k])²` — the loss used by the Richter &
/// Roy baseline (paper §III.C).
///
/// Note: following the paper's Fig. 3, callers that want the "pixel
/// intensities in 0–255" convention should scale by `255²`; this function
/// works in the native `[0, 1]` range.
///
/// # Errors
///
/// Fails when the images have different dimensions.
pub fn mse(x: &Image, y: &Image) -> Result<f32> {
    if x.height() != y.height() || x.width() != y.width() {
        return Err(MetricsError::invalid(
            "mse",
            format!(
                "image sizes differ: {}x{} vs {}x{}",
                x.height(),
                x.width(),
                y.height(),
                y.width()
            ),
        ));
    }
    let mut acc = 0.0f64;
    for (&a, &b) in x.as_slice().iter().zip(y.as_slice()) {
        let d = (a - b) as f64;
        acc += d * d;
    }
    Ok((acc / x.len() as f64) as f32)
}

/// Peak signal-to-noise ratio in dB for unit-range images:
/// `PSNR = 10 · log10(1 / MSE)`. Identical images give `+inf`.
///
/// # Errors
///
/// Fails when the images have different dimensions.
pub fn psnr(x: &Image, y: &Image) -> Result<f32> {
    let m = mse(x, y)?;
    // sncheck:allow(no-float-eq): exact zero MSE means bit-identical
    // images — a sentinel, not a tolerance check.
    if m == 0.0 {
        return Ok(f32::INFINITY);
    }
    Ok(10.0 * (1.0 / m).log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_zero_mse() {
        let img = Image::from_fn(4, 4, |y, x| (y + x) as f32 / 6.0).unwrap();
        assert_eq!(mse(&img, &img).unwrap(), 0.0);
        assert_eq!(psnr(&img, &img).unwrap(), f32::INFINITY);
    }

    #[test]
    fn known_mse_value() {
        let a = Image::filled(2, 2, 0.0).unwrap();
        let b = Image::filled(2, 2, 0.5).unwrap();
        assert!((mse(&a, &b).unwrap() - 0.25).abs() < 1e-7);
        // PSNR of MSE 0.25 = 10·log10(4) ≈ 6.02 dB.
        assert!((psnr(&a, &b).unwrap() - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn mse_is_symmetric() {
        let a = Image::from_fn(3, 5, |y, x| (y * 5 + x) as f32 / 14.0).unwrap();
        let b = Image::from_fn(3, 5, |y, x| ((y * 5 + x) % 4) as f32 / 3.0).unwrap();
        assert_eq!(mse(&a, &b).unwrap(), mse(&b, &a).unwrap());
    }

    #[test]
    fn size_mismatch_is_an_error() {
        let a = Image::new(2, 2).unwrap();
        let b = Image::new(2, 3).unwrap();
        assert!(mse(&a, &b).is_err());
        assert!(psnr(&a, &b).is_err());
    }
}
