//! Cross-dataset novelty detection — a reduced interactive version of the
//! paper's central experiment (Fig. 5).
//!
//! ```text
//! cargo run --release --example cross_dataset
//! ```
//!
//! Trains all three pipeline variants (raw+MSE baseline, VBP+MSE
//! ablation, VBP+SSIM method) on the clear outdoor world and scores
//! held-out clear frames against a *composed scenario shift*: the same
//! world re-rendered through the seeded fog+night modifier stack (the
//! scenario-generator analogue of the paper's dataset switch — same
//! geometry, different visual domain). The full-scale version lives in
//! `crates/bench/src/bin/fig5_dataset_comparison.rs`; the full scenario
//! matrix in `crates/bench/src/bin/evalgrid.rs`.

use metrics::histogram::Histogram;
use novelty::eval::evaluate;
use novelty::{BackendKind, NoveltyDetectorBuilder};
use saliency_novelty::prelude::*;
use simdrive::ModifierStack;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outdoor = DatasetConfig::outdoor().with_len(150).generate(10);
    let scenario = ModifierStack::parse("fog@0.8+night@0.6")?;
    let (train, held_out) = outdoor.split(0.8);
    let shifted = held_out.modified(&scenario, 11);
    let target: Vec<Image> = held_out.frames().iter().map(|f| f.image.clone()).collect();
    let novel: Vec<Image> = shifted.frames().iter().map(|f| f.image.clone()).collect();
    println!(
        "train: {} clear outdoor | test: {} clear (target) vs {} {} (novel)\n",
        train.len(),
        target.len(),
        novel.len(),
        scenario.spec()
    );

    for kind in BackendKind::all() {
        println!("=== {} ===", kind.name());
        let detector = NoveltyDetectorBuilder::for_kind(kind)
            .cnn_epochs(3)
            .ae_epochs(12)
            .seed(5)
            .train(&train)?;
        let report = evaluate(&detector, &target, &novel)?;

        let all: Vec<f32> = report
            .target_scores
            .iter()
            .chain(&report.novel_scores)
            .copied()
            .collect();
        let lo = all.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = all.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for (name, scores) in [
            ("target", &report.target_scores),
            ("novel ", &report.novel_scores),
        ] {
            let hist = Histogram::from_values(scores, lo, hi.max(lo + 1e-6), 12)?;
            println!("{name} scores:");
            for row in hist.render_rows(40) {
                println!("  {row}");
            }
        }
        println!("{report}\n");
    }
    println!("expected shape (paper): separation improves raw+mse → vbp+mse → vbp+ssim");
    Ok(())
}
