//! Perturbation detection — the paper's noise experiment (Fig. 7) plus
//! the simple spatial attacks of its ref. [6] (rotation / translation)
//! and sensor occlusion.
//!
//! ```text
//! cargo run --release --example noise_attack
//! ```
//!
//! Trains the paper's detector on clean outdoor frames, then feeds it
//! perturbed versions of *in-distribution* frames and reports how often
//! each perturbation is flagged as novel.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saliency_novelty::prelude::*;
use vision::perturb;

/// A named image perturbation under test.
type Perturbation<'a> = (&'a str, Box<dyn FnMut(&Image) -> Image>);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetConfig::outdoor().with_len(140).generate(33);
    let (train, test) = dataset.split(0.8);
    println!(
        "training the paper's detector on {} clean frames…\n",
        train.len()
    );
    let detector = NoveltyDetectorBuilder::paper()
        .cnn_epochs(3)
        .ae_epochs(12)
        .seed(3)
        .train(&train)?;

    let frames: Vec<Image> = test.frames().iter().map(|f| f.image.clone()).collect();
    let mut rng = StdRng::seed_from_u64(99);

    let perturbations: Vec<Perturbation> = vec![
        ("clean (control)", Box::new(|img: &Image| img.clone())),
        (
            "gaussian noise σ=0.10",
            Box::new(move |img: &Image| {
                perturb::add_gaussian_noise(img, &mut rng, 0.10).expect("valid sigma")
            }),
        ),
        (
            "brightness +0.10",
            Box::new(|img: &Image| perturb::adjust_brightness(img, 0.10)),
        ),
        (
            "rotation 10°",
            Box::new(|img: &Image| perturb::rotate(img, 10.0, 0.5)),
        ),
        (
            "translation 12px right",
            Box::new(|img: &Image| perturb::translate(img, 0.0, 12.0, 0.5)),
        ),
        (
            "occlusion 20×50 patch",
            Box::new(|img: &Image| perturb::occlude_rect(img, 30, 50, 20, 50, 0.0)),
        ),
    ];

    println!("perturbation              flagged novel    mean SSIM score");
    println!("---------------------     -------------    ---------------");
    for (name, mut f) in perturbations {
        let mut flagged = 0usize;
        let mut score_sum = 0.0f32;
        for img in &frames {
            let verdict = detector.classify(&f(img))?;
            flagged += verdict.is_novel as usize;
            score_sum += verdict.score;
        }
        println!(
            "{name:<25} {:>6.1}%          {:>8.3}",
            flagged as f32 / frames.len() as f32 * 100.0,
            score_sum / frames.len() as f32
        );
    }
    println!();
    println!("expected shape (paper + refs [6], [15]): noise is flagged far more often than");
    println!("brightness (CNNs — and SSIM — are robust to photometric change), and spatial");
    println!("attacks land between the two.");
    Ok(())
}
