//! Saliency-method comparison: compute VBP, ε-LRP, input-gradient and
//! occlusion masks for the same frame, time them, and dump every mask as
//! a PGM (plus overlays as PPM) for visual inspection.
//!
//! ```text
//! cargo run --release --example saliency_viewer
//! ```

use std::time::Instant;

use metrics::{ssim, SsimConfig};
use saliency::{mask, SaliencyMethod};
use saliency_novelty::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetConfig::outdoor().with_len(100).generate(17);
    println!("training a steering CNN on {} frames…", dataset.len());
    let mut cnn = NoveltyDetectorBuilder::paper()
        .cnn_epochs(4)
        .seed(2)
        .train_steering_cnn(&dataset)?;

    let frame = &dataset.frames()[0].image;
    let out_dir = std::path::Path::new("out");
    std::fs::create_dir_all(out_dir)?;
    vision::io::save_pgm(frame, out_dir.join("saliency_input.pgm"))?;

    let methods = [
        SaliencyMethod::Vbp,
        SaliencyMethod::Lrp { epsilon: 0.01 },
        SaliencyMethod::Gradient,
        SaliencyMethod::Occlusion {
            window: 12,
            stride: 6,
        },
    ];

    let mut masks: Vec<(&'static str, Image)> = Vec::new();
    println!("\nmethod       latency      mask mean");
    println!("---------    ---------    ---------");
    for method in methods {
        let start = Instant::now();
        let m = method.compute(&mut cnn, frame)?;
        let elapsed = start.elapsed();
        println!(
            "{:<12} {:>9.2?}    {:>8.3}",
            method.name(),
            elapsed,
            m.mean()
        );
        vision::io::save_pgm(&m, out_dir.join(format!("saliency_{}.pgm", method.name())))?;
        let over = mask::overlay(frame, &m)?;
        vision::io::save_ppm(
            &over,
            out_dir.join(format!("saliency_{}_overlay.ppm", method.name())),
        )?;
        masks.push((method.name(), m));
    }

    println!("\npairwise mask agreement (SSIM, 11x11):");
    for i in 0..masks.len() {
        for j in (i + 1)..masks.len() {
            let s = ssim(&masks[i].1, &masks[j].1, &SsimConfig::default())?;
            println!("  {:<9} vs {:<9}: {s:+.3}", masks[i].0, masks[j].0);
        }
    }
    println!("\nwrote masks and overlays to {}", out_dir.display());
    println!("(paper §III.B: VBP is the fastest of the model-inspection methods by a wide margin)");
    Ok(())
}
