//! Streaming safety monitor over a simulated drive.
//!
//! ```text
//! cargo run --release --example drive_monitor
//! ```
//!
//! The paper's motivating scenario end-to-end: a detector trained on
//! clear outdoor driving watches a continuous frame stream. Halfway
//! through, the weather turns on the vehicle — the same road rendered
//! through the seeded fog+night modifier stack, a visual domain the
//! detector was never trained on; an `m`-of-`k` [`StreamMonitor`]
//! debounces the per-frame verdicts into a single alarm. The output is a
//! frame-by-frame trace plus the alarm latency.

use novelty::monitor::{AlarmState, StreamMonitor};
use saliency_novelty::prelude::*;
use simdrive::{DriveConfig, ModifierStack};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on i.i.d. clear outdoor frames (the paper's protocol).
    let train = DatasetConfig::outdoor().with_len(300).generate(21);
    println!(
        "training detector on {} clear outdoor frames (≈2 min)…",
        train.len()
    );
    // The paper's 99th-percentile threshold is calibrated for *world*
    // switches; scenario-level shifts (same road, different weather)
    // move the score distribution far less (EXPERIMENTS.md E10), so a
    // deployed monitor trades a tighter threshold for per-frame false
    // positives and lets the m-of-k debounce absorb them.
    let detector = NoveltyDetectorBuilder::paper()
        .cnn_epochs(8)
        .ae_epochs(60)
        .train_fraction(1.0)
        .percentile(85.0)
        .seed(9)
        .train(&train)?;
    println!(
        "calibrated threshold: SSIM < {:.3} ⇒ novel",
        detector.threshold().value()
    );

    // Simulate the stream: 40 in-distribution clear frames, then the
    // drive continues into a composed scenario shift (fog + night) the
    // detector never saw — same world, different visual domain.
    let scenario = ModifierStack::parse("fog@1.0+night@0.5")?;
    let familiar_leg = DriveConfig::new(World::Outdoor).with_len(40).simulate(6);
    let novel_leg = DriveConfig::new(World::Outdoor)
        .with_len(40)
        .simulate(7)
        .modified(&scenario, 7);
    let onset = familiar_leg.len();

    let mut monitor = StreamMonitor::new(8, 5)?;
    let mut alarm_frame: Option<usize> = None;
    println!("\nframe  scene           score   novel  window  alarm");
    for (i, frame) in familiar_leg
        .frames()
        .iter()
        .chain(novel_leg.frames())
        .enumerate()
    {
        let verdict = detector.classify(&frame.image)?;
        let state = monitor.observe(&verdict);
        if state == AlarmState::Raised && alarm_frame.is_none() {
            alarm_frame = Some(i);
        }
        if i % 5 == 0 || state == AlarmState::Raised && alarm_frame == Some(i) {
            let scene = if i < onset {
                "clear".to_string()
            } else {
                scenario.spec()
            };
            println!(
                "{i:>5}  {:<14}  {:.3}   {:<5}  {:>3}/8   {:?}",
                scene,
                verdict.score,
                verdict.is_novel,
                monitor.novel_in_window(),
                state
            );
        }
    }

    println!();
    match alarm_frame {
        Some(f) if f >= onset => println!(
            "alarm raised at frame {f}, {} frames after the scenario shift (frame {onset}); \
             lifetime novelty rate {:.0}%",
            f - onset,
            monitor.lifetime_novel_rate() * 100.0
        ),
        Some(f) => {
            println!("alarm raised early at frame {f} (before the scenario shift at {onset}) — false alarm")
        }
        None => println!("alarm never raised — the scenario shift went undetected at this scale"),
    }
    println!(
        "(expected: no alarm in the familiar leg, alarm within ~5 frames of the scenario shift)"
    );
    Ok(())
}
