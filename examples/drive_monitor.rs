//! Streaming safety monitor over a simulated drive.
//!
//! ```text
//! cargo run --release --example drive_monitor
//! ```
//!
//! The paper's motivating scenario end-to-end: a detector trained on
//! outdoor driving watches a continuous frame stream. Halfway through,
//! the vehicle enters an environment it was never trained on (the indoor
//! world — the paper's cross-dataset novelty, streamed); an `m`-of-`k`
//! [`StreamMonitor`] debounces the per-frame verdicts into a single
//! alarm. The output is a frame-by-frame trace plus the alarm latency.

use novelty::monitor::{AlarmState, StreamMonitor};
use saliency_novelty::prelude::*;
use simdrive::DriveConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on i.i.d. clear outdoor frames (the paper's protocol).
    let train = DatasetConfig::outdoor().with_len(300).generate(21);
    println!(
        "training detector on {} clear outdoor frames (≈2 min)…",
        train.len()
    );
    let detector = NoveltyDetectorBuilder::paper()
        .cnn_epochs(8)
        .ae_epochs(60)
        .train_fraction(1.0)
        .seed(9)
        .train(&train)?;
    println!(
        "calibrated threshold: SSIM < {:.3} ⇒ novel",
        detector.threshold().value()
    );

    // Simulate the stream: 40 in-distribution outdoor frames, then the
    // vehicle enters the (untrained) indoor world.
    let familiar_leg = DriveConfig::new(World::Outdoor).with_len(40).simulate(6);
    let novel_leg = DriveConfig::new(World::Indoor).with_len(40).simulate(6);
    let onset = familiar_leg.len();

    let mut monitor = StreamMonitor::new(8, 5)?;
    let mut alarm_frame: Option<usize> = None;
    println!("\nframe  world    score   novel  window  alarm");
    for (i, frame) in familiar_leg
        .frames()
        .iter()
        .chain(novel_leg.frames())
        .enumerate()
    {
        let verdict = detector.classify(&frame.image)?;
        let state = monitor.observe(&verdict);
        if state == AlarmState::Raised && alarm_frame.is_none() {
            alarm_frame = Some(i);
        }
        if i % 5 == 0 || state == AlarmState::Raised && alarm_frame == Some(i) {
            println!(
                "{i:>5}  {:>7}  {:.3}   {:<5}  {:>3}/8   {:?}",
                frame.scene.world.name(),
                verdict.score,
                verdict.is_novel,
                monitor.novel_in_window(),
                state
            );
        }
    }

    println!();
    match alarm_frame {
        Some(f) if f >= onset => println!(
            "alarm raised at frame {f}, {} frames after entering the novel world (frame {onset}); \
             lifetime novelty rate {:.0}%",
            f - onset,
            monitor.lifetime_novel_rate() * 100.0
        ),
        Some(f) => {
            println!("alarm raised early at frame {f} (before the world change at {onset}) — false alarm")
        }
        None => println!("alarm never raised — the novel world went undetected at this scale"),
    }
    println!(
        "(expected: no alarm in the familiar leg, alarm within ~5 frames of the world change)"
    );
    Ok(())
}
