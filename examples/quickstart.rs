//! Quickstart: train the paper's pipeline end-to-end and classify frames.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Trains on a small synthetic outdoor dataset (stand-in for the Udacity
//! data), then classifies one in-distribution frame and one frame from a
//! different driving world, and shows the detector surviving a save/load
//! round-trip.

use saliency_novelty::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: the outdoor world plays the role of the Udacity dataset.
    println!("generating synthetic driving data…");
    let dataset = DatasetConfig::outdoor().with_len(200).generate(42);

    // 2. Train the full pipeline: steering CNN → VBP masks → SSIM
    //    autoencoder → 99th-percentile threshold. (Epoch counts are kept
    //    small so the example runs in about a minute; the figure binaries
    //    in `crates/bench` use the paper-scale settings.)
    println!("training the paper's pipeline (VBP + SSIM autoencoder)…");
    let detector = NoveltyDetectorBuilder::paper()
        .cnn_epochs(6)
        .ae_epochs(40)
        .seed(7)
        .train(&dataset)?;

    // 3. Classify an in-distribution frame…
    let familiar = &dataset.frames()[dataset.len() - 1].image;
    let verdict = detector.classify(familiar)?;
    println!(
        "in-distribution frame: novel = {} (SSIM {:.3}, threshold {:.3})",
        verdict.is_novel, verdict.score, verdict.threshold
    );

    // …and frames from a different world (the indoor RC track).
    let foreign = DatasetConfig::indoor().with_len(8).generate(1);
    let mut flagged = 0;
    let mut mean_score = 0.0;
    for frame in foreign.frames() {
        let verdict = detector.classify(&frame.image)?;
        flagged += verdict.is_novel as usize;
        mean_score += verdict.score / foreign.len() as f32;
    }
    println!(
        "cross-world frames:    {flagged}/{} flagged novel (mean SSIM {mean_score:.3}, threshold {:.3})",
        foreign.len(),
        detector.threshold().value()
    );
    println!("(at this demo scale separation is partial; the paper-scale run in");
    println!(" crates/bench/src/bin/fig5_dataset_comparison.rs flags ~100 %)");

    // 4. The steering model is part of the pipeline — use it too.
    let angle = detector.predict_steering(familiar)?;
    println!("predicted steering angle for the familiar frame: {angle:+.3}");

    // 5. Freeze the detector for deployment and reload it.
    let path = std::env::temp_dir().join("saliency_novelty_quickstart_detector.json");
    novelty::save_detector(&detector, &path)?;
    let reloaded = novelty::load_detector(&path)?;
    assert_eq!(
        reloaded.classify(familiar)?.is_novel,
        detector.classify(familiar)?.is_novel
    );
    println!("detector saved to {} and reloaded intact", path.display());
    std::fs::remove_file(&path).ok();
    Ok(())
}
